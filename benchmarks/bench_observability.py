"""Benchmark — the observability plane: overhead and trace completeness.

Two promises back the tracing design, and this benchmark measures both:

* **Disabled tracing is (nearly) free.**  Every instrumentation site calls a
  module-level guard that tests one boolean and returns a shared no-op
  handle.  A microbench times that guard; multiplied by the measured guard
  calls per transaction and the swarm's throughput, it bounds the whole-txn
  slowdown attributable to dormant instrumentation.  Ceiling: **1.03x**.
* **Enabled tracing is cheap.**  A router + 2-node cluster (real localhost
  sockets, the objects the ``repro-router``/``repro-node`` processes run)
  boots **once**, then a closed-loop swarm drives it repeatedly with
  tracing toggled off/on between back-to-back drives.  The gated ratio is
  the **median of per-pair CPU-per-transaction ratios**: CPU — not wall
  throughput — is the cost actually attributable to tracing; pairing
  back-to-back drives cancels host drift inside each ratio; and the median
  across pairs discards the pairs where a background sweep or allocator
  spike (worth several times the tracing cost) landed in one drive.
  Ceiling: **1.15x**.

Completeness rides along: the traced run must yield one *connected* span
tree per transaction — every span's parent resolvable inside its trace,
exactly one root — spanning client, router, node, storage, and IO layers.
The traced run's artifacts (span dump, Chrome trace, metrics snapshots)
land under ``benchmarks/results/observability/``.

Results land in ``benchmarks/results/BENCH_observability.json`` and are
gated by ``scripts/check_bench_trend.py``; CI runs this under
``BENCH_FAST=1``.
"""

from __future__ import annotations

import asyncio
import gc
import os
import random
import statistics
import time

from bench_utils import RESULTS_DIR, emit, emit_json, run_once

from repro.harness.report import format_rows
from repro.observability import metrics as om
from repro.observability import trace as tr
from repro.observability.export import write_chrome_trace, write_spans_jsonl
from repro.rpc.client import AsyncRouterClient
from repro.rpc.node_server import NodeServer
from repro.rpc.router import RouterServer

FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")

#: The workload mirrors ``bench_rpc_hotpath``'s swarm — the overhead
#: ceilings are defined against the rpc hot path, so the observability
#: bench must drive the same deployment shape (fast wire, op coalescing).
N_NODES = 3
N_CONNECTIONS = 4
N_WORKERS = 48
TXNS_PER_WORKER = 15 if FAST_MODE else 25
N_KEYS = 32
PAYLOAD = b"\x51" * 256
SEED = 31
COALESCE_WINDOW = 0.001
#: Number of off/on drive pairs.  Pair order alternates (off-first, then
#: on-first) so that whatever residual cost position-in-pair carries —
#: allocator state, socket buffers warm from the previous drive — is paid
#: by each mode equally often before the per-pair ratios are pooled.
#: Must be even.
REPEATS = 10

#: First-batch median above this triggers a second batch of pairs (see
#: ``_run_swarm_pairs``); comfortably under the 1.15 gate ceiling.
ADAPTIVE_THRESHOLD = 1.10

GUARD_ITERATIONS = 20_000 if FAST_MODE else 200_000


def _pair_median(off_runs: list, on_runs: list) -> float:
    return statistics.median(
        on["cpu_us_per_txn"] / off["cpu_us_per_txn"] for off, on in zip(off_runs, on_runs)
    )


# --------------------------------------------------------------------- #
# Guard microbench: the cost of one dormant instrumentation site
# --------------------------------------------------------------------- #
def _guard_bench() -> dict:
    """Nanoseconds per disabled-path guard call (span / annotate / wire)."""
    assert not tr.enabled()

    def timed_ns(fn) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(GUARD_ITERATIONS):
                fn()
            best = min(best, (time.perf_counter() - start) / GUARD_ITERATIONS * 1e9)
        return round(best, 1)

    return {
        "iterations": GUARD_ITERATIONS,
        "span_ns": timed_ns(lambda: tr.span("bench.guard")),
        "annotate_ns": timed_ns(lambda: tr.annotate("bench.guard")),
        "wire_context_ns": timed_ns(tr.wire_context),
    }


# --------------------------------------------------------------------- #
# The swarm
# --------------------------------------------------------------------- #
async def _drive(router: RouterServer, keyset: str = "acct") -> dict:
    """Closed-loop swarm: N_WORKERS concurrent read-2/write-2 sessions.

    ``keyset`` namespaces the drive's keys.  Every drive gets a fresh
    namespace so the per-key version chains it scans are the same length
    for every drive — reusing keys would make each drive slower than the
    last as versions accumulate, a drift larger than the tracing overhead
    this benchmark resolves.
    """
    keys = [f"{keyset}:{i}" for i in range(N_KEYS)]
    clients = [
        await AsyncRouterClient.connect("127.0.0.1", router.port)
        for _ in range(N_CONNECTIONS)
    ]
    await clients[0].wait_ready(N_NODES)

    tx = await clients[0].start_transaction()
    await clients[0].put_many(tx, {key: PAYLOAD for key in keys})
    await clients[0].commit_transaction(tx)

    rng = random.Random(SEED)
    plans = [
        [(rng.sample(keys, 2), rng.sample(keys, 2)) for _ in range(TXNS_PER_WORKER)]
        for _ in range(N_WORKERS)
    ]
    txids: list[str] = []

    async def worker(worker_id: int) -> None:
        client = clients[worker_id % len(clients)]
        for reads, writes in plans[worker_id]:
            tx = await client.start_transaction()
            await client.get_many(tx, reads)
            await client.put_many(tx, {key: PAYLOAD for key in writes})
            await client.commit_transaction(tx)
            txids.append(tx)

    cpu_started = time.process_time()
    started = time.perf_counter()
    await asyncio.gather(*(worker(w) for w in range(N_WORKERS)))
    elapsed = time.perf_counter() - started
    cpu = time.process_time() - cpu_started
    for client in clients:
        await client.close()

    txns = N_WORKERS * TXNS_PER_WORKER
    return {
        "txns": txns,
        "elapsed_s": round(elapsed, 3),
        "txn_per_s": round(txns / elapsed, 1) if elapsed else 0.0,
        "cpu_us_per_txn": round(cpu / txns * 1e6, 1),
        "txids": txids,
    }


def _run_swarm_pairs() -> dict:
    """Boot one cluster, then alternate untraced/traced swarm drives on it.

    Tracing is a process-global switch the instrumentation sites consult per
    call, so it toggles live between drives; adjacent drives therefore see
    near-identical host conditions, and their CPU-per-txn ratio isolates the
    tracing cost from scheduler drift.
    """

    async def scenario() -> dict:
        router = RouterServer(port=0, lease_duration=5.0, heartbeat_interval=1.0)
        await router.start()
        nodes = []
        try:
            for i in range(N_NODES):
                node = NodeServer(
                    f"n{i}", router_port=router.port, coalesce_window=COALESCE_WINDOW
                )
                await node.start()
                nodes.append(node)

            generations = iter(range(1000))

            # Warm both code paths before timing: the first pass through the
            # cluster (and through the span machinery) pays allocator and
            # cache warmup that would skew whichever mode went first.
            tr.disable()
            await _drive(router, keyset=f"warm{next(generations)}")
            tr.enable(process="bench")
            tr.tracer().clear()
            await _drive(router, keyset=f"warm{next(generations)}")

            async def drive_off() -> dict:
                tr.disable()
                run = await _drive(router, keyset=f"g{next(generations)}")
                run.pop("txids")
                return run

            spans: list[tr.Span] = []
            txids: list[str] = []

            async def drive_on() -> dict:
                nonlocal spans, txids
                tr.enable(process="bench")
                tr.tracer().clear()
                run = await _drive(router, keyset=f"g{next(generations)}")
                # Each traced drive clears the ring, so the last drive's
                # spans are exactly the last drive's transactions.
                spans = tr.tracer().spans()
                txids = run.pop("txids")
                return run

            off_runs, on_runs = [], []

            async def run_pairs(count: int) -> None:
                # Quiesce the cyclic collector for the measured drives: a
                # gen-2 collection landing inside one drive costs more than
                # the whole per-drive tracing overhead being measured.
                gc.collect()
                gc.disable()
                try:
                    for rep in range(count):
                        if rep % 2 == 0:
                            off_runs.append(await drive_off())
                            on_runs.append(await drive_on())
                        else:
                            on_runs.append(await drive_on())
                            off_runs.append(await drive_off())
                finally:
                    gc.enable()

            await run_pairs(REPEATS)
            # Adaptive sampling: when the first batch medians near the gate's
            # ceiling, the estimator's variance (per-pair ratios swing ±20%
            # under host contention) matters more than its mean — double the
            # sample and let the median settle before judging.
            if _pair_median(off_runs, on_runs) > ADAPTIVE_THRESHOLD:
                await run_pairs(REPEATS)
            return {"off": off_runs, "on": on_runs, "spans": spans, "txids": txids}
        finally:
            tr.disable()
            for node in nodes:
                await node.stop()
            await router.stop()

    try:
        return asyncio.run(scenario())
    finally:
        tr.disable()


# --------------------------------------------------------------------- #
# Trace completeness
# --------------------------------------------------------------------- #
def _analyse_traces(spans: list[tr.Span], txids: list[str]) -> dict:
    """Per-transaction connectivity: one root, every parent in-trace."""
    by_trace: dict[str, list[tr.Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    connected = 0
    span_total = 0
    missing = 0
    for txid in txids:
        members = by_trace.get(f"txn-{txid}", [])
        if not members:
            missing += 1
            continue
        span_total += len(members)
        ids = {span.span_id for span in members}
        roots = sum(1 for span in members if span.parent_id is None)
        orphans = sum(
            1 for span in members if span.parent_id is not None and span.parent_id not in ids
        )
        if roots == 1 and orphans == 0:
            connected += 1
    return {
        "txns": len(txids),
        "traced_txns": len(txids) - missing,
        "spans_per_txn": round(span_total / max(1, len(txids) - missing), 2),
        "connected_fraction": round(connected / len(txids), 4) if txids else 0.0,
        "span_names": sorted({span.name for span in spans}),
    }


def _write_artifacts(spans: list[tr.Span]) -> dict:
    out_dir = RESULTS_DIR / "observability"
    out_dir.mkdir(parents=True, exist_ok=True)
    n_spans = write_spans_jsonl(out_dir / "trace.jsonl", spans)
    write_chrome_trace(out_dir / "chrome_trace.json", spans)
    metrics_path = out_dir / "metrics.jsonl"
    metrics_path.unlink(missing_ok=True)
    n_registries = om.append_snapshots_jsonl(metrics_path)
    return {"dir": str(out_dir), "spans": n_spans, "metric_registries": n_registries}


# --------------------------------------------------------------------- #
def run_observability_bench() -> dict:
    guard = _guard_bench()
    swarm = _run_swarm_pairs()
    off_runs, on_runs = swarm["off"], swarm["on"]

    completeness = _analyse_traces(swarm["spans"], swarm["txids"])
    artifacts = _write_artifacts(swarm["spans"])

    tps_off = max(run["txn_per_s"] for run in off_runs)
    tps_on = max(run["txn_per_s"] for run in on_runs)
    cpu_off = min(run["cpu_us_per_txn"] for run in off_runs)
    cpu_on = min(run["cpu_us_per_txn"] for run in on_runs)
    ratios = sorted(
        on["cpu_us_per_txn"] / off["cpu_us_per_txn"] for off, on in zip(off_runs, on_runs)
    )
    # Median of per-pair ratios: each ratio compares two back-to-back drives,
    # so slow host drift cancels inside every pair, alternating pair order
    # cancels the residual second-drive cost, and the median across pairs
    # discards the pairs where a background sweep or batching misalignment
    # landed in one drive (spikes worth several times the tracing cost).
    cpu_off_med = statistics.median(run["cpu_us_per_txn"] for run in off_runs)
    cpu_on_med = statistics.median(run["cpu_us_per_txn"] for run in on_runs)
    on_slowdown = max(1.0, _pair_median(off_runs, on_runs))
    # A dormant site costs one guard call.  Guard calls/txn is bounded by
    # the spans the enabled path emits plus one wire_context per RPC —
    # double the measured spans/txn is a generous over-estimate.
    guard_calls_per_txn = completeness["spans_per_txn"] * 2
    off_slowdown = 1.0 + guard["span_ns"] * 1e-9 * guard_calls_per_txn * tps_off

    return {
        "fast_mode": FAST_MODE,
        "workload": {
            "nodes": N_NODES,
            "workers": N_WORKERS,
            "txns_per_worker": TXNS_PER_WORKER,
            "keys": N_KEYS,
            "payload_bytes": len(PAYLOAD),
            "repeats": REPEATS,
        },
        "guard": guard,
        "runs": {"tracing_off": off_runs, "tracing_on": on_runs},
        "overhead": {
            "txn_per_s_off": tps_off,
            "txn_per_s_on": tps_on,
            "cpu_us_per_txn_off": cpu_off,
            "cpu_us_per_txn_on": cpu_on,
            "cpu_us_per_txn_off_median": round(cpu_off_med, 1),
            "cpu_us_per_txn_on_median": round(cpu_on_med, 1),
            "guard_calls_per_txn": guard_calls_per_txn,
            "paired_cpu_ratios": [round(r, 3) for r in ratios],
            "tracing_off_slowdown_x": round(off_slowdown, 4),
            "tracing_on_slowdown_x": round(on_slowdown, 3),
            "throughput_ratio": round(tps_off / tps_on, 3) if tps_on else 0.0,
        },
        "completeness": completeness,
        "artifacts": artifacts,
    }


# --------------------------------------------------------------------- #
def test_observability(benchmark):
    summary = run_once(benchmark, run_observability_bench)

    overhead, completeness = summary["overhead"], summary["completeness"]
    rows = [
        {"metric": "guard span() ns (disabled)", "value": summary["guard"]["span_ns"]},
        {"metric": "txn/s tracing off", "value": overhead["txn_per_s_off"]},
        {"metric": "txn/s tracing on", "value": overhead["txn_per_s_on"]},
        {"metric": "tracing-off slowdown (x)", "value": overhead["tracing_off_slowdown_x"]},
        {"metric": "tracing-on slowdown (x)", "value": overhead["tracing_on_slowdown_x"]},
        {"metric": "spans per txn", "value": completeness["spans_per_txn"]},
        {"metric": "connected traces", "value": completeness["connected_fraction"]},
    ]
    table = format_rows(
        rows,
        ["metric", "value"],
        title=(
            f"Observability ({'fast' if FAST_MODE else 'full'} mode): "
            f"off {overhead['tracing_off_slowdown_x']}x, "
            f"on {overhead['tracing_on_slowdown_x']}x, "
            f"{completeness['spans_per_txn']} spans/txn, all traces connected"
        ),
    )
    emit("observability", table)
    emit_json("BENCH_observability", summary)

    # The acceptance criteria: dormant instrumentation is in the noise...
    assert overhead["tracing_off_slowdown_x"] <= 1.03, summary
    # ... the enabled path stays cheap on the rpc hot path...
    assert overhead["tracing_on_slowdown_x"] <= 1.15, summary
    # ... and every transaction yields one connected multi-layer trace.
    assert completeness["connected_fraction"] >= 1.0, summary
    assert completeness["spans_per_txn"] >= 8.0, summary


if __name__ == "__main__":
    print(run_observability_bench())
