"""Table 2 — consistency anomalies observed under each system.

Paper takeaway: plain S3/DynamoDB expose read-your-write and fractured-read
anomalies on a significant fraction of transactions (~6% and ~8%), Redis and
DynamoDB's transaction mode reduce but do not eliminate them, and AFT prevents
them entirely.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_end_to_end_experiment
from repro.harness.report import format_rows

COLUMNS = [
    "system",
    "transactions",
    "ryw_anomalies",
    "fr_anomalies",
    "ryw_rate_pct",
    "fr_rate_pct",
    "ryw_scaled_to_10k",
    "fr_scaled_to_10k",
    "paper_ryw_per_10k",
    "paper_fr_per_10k",
]


def test_table2_anomalies(benchmark):
    results = run_once(benchmark, run_end_to_end_experiment, num_clients=10, requests_per_client=100)
    emit(
        "table2_anomalies",
        format_rows(results.anomaly_rows, COLUMNS, title="Table 2: anomalies (per committed txns)"),
    )

    rows = {row["system"]: row for row in results.anomaly_rows}
    # AFT is anomaly-free over every backend.
    for system, row in rows.items():
        if system.startswith("aft"):
            assert row["ryw_anomalies"] == 0
            assert row["fr_anomalies"] == 0
    # The weakly consistent baselines exhibit both kinds of anomalies.
    for system in ("s3/plain", "dynamodb/plain"):
        assert rows[system]["ryw_anomalies"] > 0
        assert rows[system]["fr_anomalies"] > 0
    # DynamoDB transaction mode removes RYW anomalies but not fractured reads.
    assert rows["dynamodb/transactional"]["ryw_anomalies"] == 0
    assert rows["dynamodb/transactional"]["fr_anomalies"] >= 0
    # Redis (per-shard linearizable) still fractures reads across keys.
    assert rows["redis/plain"]["fr_anomalies"] > 0
