"""Ablation — direct vs sharded commit-stream transports (metadata plane).

Isolates the §4 commit multicast: the cost a *committing node* pays to get
its round's commit records to every peer, at 4/16/64 nodes, with and without
the §4.1 supersedence pruning.

* ``direct`` — the seed transport: the publisher hands the batch to every
  live peer itself, so its per-round cost grows with the fleet.
* ``sharded`` — receivers ordered on the consistent-hash ring and arranged
  into a relay tree of degree ``RELAY_FANOUT``; the publisher contacts only
  the relay roots and interior relays forward the rest, so sender-side cost
  is O(fan-out) regardless of fleet size.

Costs are *charged* from the deployment cost model
(:meth:`~repro.simulation.cost_model.DeploymentCostModel.multicast_send_latency`):
per receiver the publisher contacts directly plus per record it serialises.
Both transports must deliver every broadcast record to every live peer — the
benchmark asserts it — so the comparison is pure transport mechanism.

A second section measures the partitioned commit keyspace: the same commit
history swept by a sharded fault manager through per-shard *prefix listings*
(storage-op counters prove no full-keyspace scan is issued).

Results are printed, persisted as text, and emitted machine-readable to
``benchmarks/results/BENCH_multicast.json`` for the CI perf-trend gate,
which holds a hard floor on the 64-node sender-cost improvement.
"""

from __future__ import annotations

import os

from bench_utils import emit, emit_json, run_once

from repro.clock import LogicalClock
from repro.config import AftConfig, FaultManagerConfig
from repro.core.commit_set import CommitSetStore
from repro.core.fault_manager import FaultManager
from repro.core.metadata_plane import make_commit_keyspace, make_commit_stream
from repro.core.multicast import MulticastService
from repro.core.node import AftNode
from repro.simulation.cost_model import DeploymentCostModel
from repro.storage.memory import InMemoryStorage

NODE_COUNTS = (4, 16, 64)
RELAY_FANOUT = 4
FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")
#: Commits the sender makes before one multicast round fires.
COMMITS_PER_ROUND = 60 if not FAST_MODE else 24
#: Hot-key pool: with pruning on, most commits are superseded before the
#: round and drop out of the broadcast (§4.1).
KEY_POOL = 12
#: Acceptance: the sharded transport must cut the 64-node sender-side cost
#: by at least this factor (the CI gate's hard floor).
SENDER_COST_BOUND = 3.0
#: History size for the partitioned-sweep section.
SWEEP_HISTORY = 2_000 if not FAST_MODE else 600


def run_round(num_nodes: int, transport: str, prune: bool, cost_model: DeploymentCostModel) -> dict:
    """One multicast round from one busy sender in an ``num_nodes`` fleet."""
    clock = LogicalClock(start=100.0, auto_step=0.001)
    storage = InMemoryStorage()
    store = CommitSetStore(storage)
    stream = make_commit_stream(transport, relay_fanout=RELAY_FANOUT)
    multicast = MulticastService(prune_superseded=prune, stream=stream)
    config = AftConfig(prune_superseded_broadcasts=prune)
    nodes = []
    for index in range(num_nodes):
        node = AftNode(storage, commit_store=store, config=config, clock=clock, node_id=f"mc{index}")
        node.start()
        multicast.register_node(node)
        nodes.append(node)

    sender = nodes[0]
    committed = []
    for index in range(COMMITS_PER_ROUND):
        txid = sender.start_transaction()
        sender.put(txid, f"mkey{index % KEY_POOL}", f"v{index}".encode())
        committed.append(sender.commit_transaction(txid))

    broadcast = multicast.run_once()

    # Delivery contract: every broadcast record reached every live peer.
    newest = committed[-1]
    for receiver in nodes[1:]:
        assert newest in receiver.metadata_cache, (
            f"{transport} transport lost the newest record at {num_nodes} nodes"
        )
    if not prune:
        assert broadcast == COMMITS_PER_ROUND

    stats = stream.stats
    return {
        "records_broadcast": broadcast,
        "records_pruned": multicast.stats.records_pruned,
        "sender_deliveries": stats.sender_deliveries,
        "relay_deliveries": stats.relay_deliveries,
        "sender_records_on_wire": stats.sender_records_on_wire,
        "relay_records_on_wire": stats.relay_records_on_wire,
        "records_on_wire": stats.records_on_wire,
        "charged_sender_cost_s": cost_model.multicast_send_latency(
            stats.sender_deliveries, stats.sender_records_on_wire
        ),
    }


def run_partitioned_sweep(cost_model: DeploymentCostModel) -> dict:
    """Per-shard prefix listings vs the flat full-keyspace scan."""
    from repro.core.commit_set import CommitRecord
    from repro.ids import TransactionId, data_key

    def history(store: CommitSetStore) -> None:
        for index in range(SWEEP_HISTORY):
            txid = TransactionId(timestamp=float(index), uuid=f"sw{index:05d}")
            key = f"swkey{index % 256}"
            store.write_record(
                CommitRecord(txid=txid, write_set={key: data_key(key, txid)})
            )

    config = FaultManagerConfig(num_shards=4)
    out = {}
    for mode in ("flat", "partitioned"):
        storage = InMemoryStorage()
        keyspace = make_commit_keyspace(
            mode, num_partitions=config.num_shards, hash_ring_replicas=config.hash_ring_replicas
        )
        store = CommitSetStore(storage, keyspace=keyspace)
        history(store)
        manager = FaultManager(storage, store, MulticastService(), config=config)
        recovered = manager.scan_commit_set()
        assert len(recovered) == SWEEP_HISTORY
        out[mode] = {
            "partition_listings": store.stats.partition_listings,
            "full_listings": store.stats.full_listings,
            "legacy_listings": store.stats.legacy_listings,
            "storage_list_ops": storage.stats.lists,
            "charged_scan_s": cost_model.fault_scan_latency(
                manager.last_scan_report.shard_costs()
            ),
        }
    # The acceptance criterion: partitioned sweeps are prefix listings only.
    assert out["partitioned"]["full_listings"] == 0
    assert out["partitioned"]["partition_listings"] == config.num_shards
    assert out["flat"]["partition_listings"] == 0
    return out


def run_multicast_ablation() -> dict:
    cost_model = DeploymentCostModel()
    by_nodes: dict = {}
    for num_nodes in NODE_COUNTS:
        entry: dict = {}
        for prune, label in ((True, "pruned"), (False, "unpruned")):
            direct = run_round(num_nodes, "direct", prune, cost_model)
            sharded = run_round(num_nodes, "sharded", prune, cost_model)
            entry[label] = {
                "direct": direct,
                "sharded": sharded,
                "sender_cost_improvement": (
                    direct["charged_sender_cost_s"] / sharded["charged_sender_cost_s"]
                ),
                "sender_wire_reduction": (
                    direct["sender_records_on_wire"] / max(1, sharded["sender_records_on_wire"])
                ),
            }
        by_nodes[str(num_nodes)] = entry
    return {"by_nodes": by_nodes, "partitioned_sweep": run_partitioned_sweep(cost_model)}


def test_ablation_multicast(benchmark):
    results = run_once(benchmark, run_multicast_ablation)

    from repro.harness.report import format_rows

    rows = []
    for num_nodes, entry in results["by_nodes"].items():
        for label in ("pruned", "unpruned"):
            cell = entry[label]
            rows.append(
                {
                    "nodes": num_nodes,
                    "pruning": label,
                    "bcast": cell["direct"]["records_broadcast"],
                    "direct_send_ms": cell["direct"]["charged_sender_cost_s"] * 1e3,
                    "sharded_send_ms": cell["sharded"]["charged_sender_cost_s"] * 1e3,
                    "improvement": cell["sender_cost_improvement"],
                    "wire_total_sharded": cell["sharded"]["records_on_wire"],
                }
            )
    emit(
        "ablation_multicast",
        format_rows(
            rows,
            [
                "nodes",
                "pruning",
                "bcast",
                "direct_send_ms",
                "sharded_send_ms",
                "improvement",
                "wire_total_sharded",
            ],
            title="Ablation: direct vs sharded commit streams (charged sender-side cost)",
        ),
    )
    emit_json(
        "BENCH_multicast",
        {
            "workload": {
                "commits_per_round": COMMITS_PER_ROUND,
                "key_pool": KEY_POOL,
                "relay_fanout": RELAY_FANOUT,
                "sweep_history": SWEEP_HISTORY,
                "fast_mode": FAST_MODE,
            },
            "by_nodes": results["by_nodes"],
            "partitioned_sweep": results["partitioned_sweep"],
            "sender_cost_bound": SENDER_COST_BOUND,
        },
    )

    # Acceptance / CI regression gates.
    at_64 = results["by_nodes"]["64"]
    for label in ("pruned", "unpruned"):
        assert at_64[label]["sender_cost_improvement"] >= SENDER_COST_BOUND, (
            f"sharded stream sender-cost regression at 64 nodes ({label}): "
            f"{at_64[label]['sender_cost_improvement']:.2f}x (gate: {SENDER_COST_BOUND}x)"
        )
    # Sender cost must be flat in fleet size for the sharded transport once
    # the fleet exceeds the relay degree: the 64-node sender pays exactly
    # what the 16-node sender pays, and never more than the fan-out bound.
    for label in ("pruned", "unpruned"):
        assert (
            results["by_nodes"]["64"][label]["sharded"]["charged_sender_cost_s"]
            <= results["by_nodes"]["16"][label]["sharded"]["charged_sender_cost_s"] * 1.01
        )
        for num_nodes in results["by_nodes"]:
            assert (
                results["by_nodes"][num_nodes][label]["sharded"]["sender_deliveries"]
                <= RELAY_FANOUT
            )
    # Pruning still pulls its weight on either transport (§4.1).
    pruned = results["by_nodes"]["64"]["pruned"]
    unpruned = results["by_nodes"]["64"]["unpruned"]
    assert pruned["sharded"]["records_on_wire"] < unpruned["sharded"]["records_on_wire"]
    assert pruned["direct"]["records_on_wire"] < unpruned["direct"]["records_on_wire"]
