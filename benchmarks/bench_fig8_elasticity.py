"""Elasticity — autoscaling under a bursty arrival curve (Figure 8 extension).

The paper's Figure 8 shows AFT scaling linearly when nodes are *added by
hand*; this benchmark closes the loop with the autoscaler.  A diurnal
sinusoid with a superimposed spike drives three deployments:

* ``autoscaled_ch`` — utilization-driven autoscaler + consistent-hash
  (key-affinity) routing, the configuration under test;
* ``autoscaled_rr`` — the same autoscaler behind the paper's round-robin
  balancer, isolating what key-affinity routing buys the caches;
* ``static_overprovisioned`` — ``max_nodes`` for the whole run: the latency
  gold standard the autoscaler must track while paying for far fewer
  node-seconds.

Acceptance (asserted below): the node count rises and falls with offered
load, autoscaled p99 stays within 1.5x of the over-provisioned run, the
autoscaler spends materially fewer node-seconds, and consistent-hash routing
beats round-robin on both the metadata-locality and data-cache hit rates.

Set ``BENCH_FAST=1`` (the CI smoke job does) for a shortened run that keeps
every assertion meaningful.  Results are printed, persisted as text, and
emitted machine-readable to ``benchmarks/results/BENCH_elasticity.json``.
"""

from __future__ import annotations

import os

from bench_utils import emit, emit_json, run_once

from repro.harness.experiments import run_elasticity_experiment
from repro.harness.report import format_rows

FAST = os.environ.get("BENCH_FAST", "") not in ("", "0")

#: (duration_s, base_clients, peak_clients, spike_clients).  The base sits
#: low enough that the diurnal tail crosses the scale-down threshold, so the
#: run exercises both directions of the policy.
SCALE = (32.0, 8, 22, 20) if FAST else (60.0, 12, 35, 30)

COLUMNS = [
    "run",
    "p50_ms",
    "p99_ms",
    "throughput_tps",
    "cache_hit_rate",
    "meta_local",
    "nodes_min",
    "nodes_max",
    "node_seconds",
]


def run_elasticity() -> dict:
    duration, base, peak, spike = SCALE
    return run_elasticity_experiment(
        duration=duration,
        base_clients=base,
        peak_clients=peak,
        spike_clients=spike,
        min_nodes=2,
        max_nodes=8,
        node_capacity=10,
    )


def _node_counts(run: dict) -> list[int]:
    counts = [count for _, count in run["node_count_timeline"]]
    return counts if counts else [0]


def test_fig8_elasticity(benchmark):
    results = run_once(benchmark, run_elasticity)
    runs = results["runs"]

    rows = []
    for label, run in runs.items():
        counts = _node_counts(run)
        rows.append(
            {
                "run": label,
                "p50_ms": run["p50_ms"],
                "p99_ms": run["p99_ms"],
                "throughput_tps": run["throughput_tps"],
                "cache_hit_rate": run["data_cache_hit_rate"],
                "meta_local": run["metadata_local_read_fraction"],
                "nodes_min": min(counts) if counts != [0] else results["policy"]["max_nodes"],
                "nodes_max": max(counts) if counts != [0] else results["policy"]["max_nodes"],
                "node_seconds": run["node_seconds"],
            }
        )
    emit(
        "fig8_elasticity",
        format_rows(
            rows,
            COLUMNS,
            title="Elasticity: autoscaler + consistent hashing vs round robin vs static",
        ),
    )
    emit_json("BENCH_elasticity", results)

    ch = runs["autoscaled_ch"]
    rr = runs["autoscaled_rr"]
    static = runs["static_overprovisioned"]

    # The autoscaler tracks the bursty curve: the fleet grows from its floor
    # under load and shrinks back once the spike passes.
    counts = _node_counts(ch)
    assert max(counts) >= min(counts) + 2, counts
    assert counts[-1] <= max(counts) - 1, counts
    peak_window = [
        count
        for t, count in ch["node_count_timeline"]
        if results["duration"] * 0.5 <= t < results["duration"] * 0.75
    ]
    assert max(peak_window) > counts[0], (peak_window[:5], counts[0])

    # Elastic latency stays within 1.5x of static over-provisioning while
    # spending materially fewer node-seconds.
    assert ch["p99_ms"] <= 1.5 * static["p99_ms"], (ch["p99_ms"], static["p99_ms"])
    assert ch["node_seconds"] <= 0.75 * static["node_seconds"], (
        ch["node_seconds"],
        static["node_seconds"],
    )

    # Key-affinity routing keeps caches hot across scale events: it beats the
    # round-robin baseline on metadata locality and on data-cache hit rate.
    assert ch["metadata_local_read_fraction"] > rr["metadata_local_read_fraction"], (
        ch["metadata_local_read_fraction"],
        rr["metadata_local_read_fraction"],
    )
    assert ch["data_cache_hit_rate"] > rr["data_cache_hit_rate"], (
        ch["data_cache_hit_rate"],
        rr["data_cache_hit_rate"],
    )

    # Scale events completed cleanly: every drained node was retired with its
    # GC set handed over, and nothing went read-atomically wrong meanwhile.
    for label in ("autoscaled_ch", "autoscaled_rr"):
        summary = runs[label]["autoscaler"]
        assert summary["scale_ups"] >= 1 and summary["scale_downs"] >= 1, summary
        assert runs[label]["anomalies"] == 0, (label, runs[label]["anomalies"])
        assert runs[label]["requests_failed"] == 0, label
