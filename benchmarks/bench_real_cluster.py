"""Benchmark — the real distributed runtime: multi-process cluster on localhost.

Everything else in this suite measures in-process objects; this benchmark
boots the actual deployment shape — a ``repro-router`` process and three
``repro-node`` processes on localhost TCP — and drives it with an
**open-loop Poisson-arrival** client swarm, the methodology serverless
front-ends face: arrivals do not wait for completions, so queueing delay
shows up in the latency distribution instead of silently throttling the
offered load (cf. the paper's closed-loop Figure 7 caveat).  Full mode
sweeps the offered rate past the ~120 tps plateau the JSON-framed,
one-frame-per-storage-op runtime topped out at, so the gated headline
numbers come from the highest rate.

Every write is a :class:`~repro.consistency.metadata.TaggedValue`, so after
the run the :class:`~repro.consistency.checker.AnomalyChecker` replays the
paper's Table-2 methodology over the whole swarm: the acceptance criterion
is **zero** read-your-writes and fractured-read anomalies through the real
transport.

Results land in ``benchmarks/results/BENCH_real_cluster.json`` (throughput,
latency percentiles, anomaly counts) and are gated by
``scripts/check_bench_trend.py``; CI runs this under ``BENCH_FAST=1``.
"""

from __future__ import annotations

import asyncio
import os
import queue
import random
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

from bench_utils import emit, emit_json, run_once

from repro.consistency.checker import AnomalyChecker, TransactionLog
from repro.consistency.metadata import TaggedValue
from repro.harness.report import format_rows
from repro.ids import TransactionId
from repro.rpc.client import AsyncRouterClient

FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")

N_NODES = 3
#: Open-loop offered loads (Poisson arrival rate, txns/s) and run length.
#: Full mode sweeps past the ~120 tps ceiling the pre-binary-wire runtime
#: plateaued at; the headline (gated) numbers come from the top rate.
OFFERED_SWEEP = (40.0,) if FAST_MODE else (120.0, 240.0)
OFFERED_TPS = OFFERED_SWEEP[-1]
DURATION_S = 3.0 if FAST_MODE else 10.0
#: Client connections the sessions are spread over (one multiplexed TCP
#: stream each).
N_CONNECTIONS = 4
N_KEYS = 32
SEED = 11

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


# --------------------------------------------------------------------- #
# Process harness
# --------------------------------------------------------------------- #
def _spawn(args: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-u", "-m", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _await_ready(proc: subprocess.Popen, marker: str, timeout: float = 30.0) -> str:
    """Block until ``marker`` appears on the process's stdout; return the line."""
    lines: queue.Queue[str | None] = queue.Queue()

    def pump() -> None:
        for line in proc.stdout:
            lines.put(line)
        lines.put(None)

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + timeout
    seen: list[str] = []
    while time.monotonic() < deadline:
        try:
            line = lines.get(timeout=0.25)
        except queue.Empty:
            continue
        if line is None:
            break
        seen.append(line.rstrip())
        if marker in line:
            return line
    proc.kill()
    raise RuntimeError(f"{marker!r} never appeared; output so far: {seen}")


class ClusterProcesses:
    """A router + N node OS processes, torn down reliably."""

    def __init__(self, n_nodes: int = N_NODES) -> None:
        self.n_nodes = n_nodes
        self.procs: list[subprocess.Popen] = []
        self.port: int | None = None

    def __enter__(self) -> "ClusterProcesses":
        router = _spawn(
            [
                "repro.rpc.router",
                "--port", "0",
                "--lease-duration", "5.0",
                "--heartbeat-interval", "1.0",
            ]
        )
        self.procs.append(router)
        ready = _await_ready(router, "REPRO_ROUTER_READY")
        self.port = int(ready.split("port=")[1].split()[0])
        for i in range(self.n_nodes):
            node = _spawn(
                [
                    "repro.rpc.node_server",
                    "--node-id", f"n{i}",
                    "--router-port", str(self.port),
                ]
            )
            self.procs.append(node)
            _await_ready(node, "REPRO_NODE_READY")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for proc in reversed(self.procs):
            proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


# --------------------------------------------------------------------- #
# Open-loop Poisson swarm
# --------------------------------------------------------------------- #
async def _run_swarm(port: int, offered_tps: float = OFFERED_TPS) -> dict:
    rng = random.Random(SEED)
    keys = [f"acct:{i}" for i in range(N_KEYS)]
    clients = [
        await AsyncRouterClient.connect("127.0.0.1", port) for _ in range(N_CONNECTIONS)
    ]
    await clients[0].wait_ready(N_NODES)

    # Preload every key so the steady-state workload reads real versions.
    preload_txid = await clients[0].start_transaction()
    for key in keys:
        tag = TaggedValue(
            payload=b"seed",
            timestamp=time.time(),
            uuid=preload_txid,
            cowritten=frozenset(keys),
        )
        await clients[0].put(preload_txid, key, tag.to_bytes())
    preload_token = await clients[0].commit_transaction(preload_txid)

    results: list[tuple[TransactionLog, str, str, float]] = []
    failures: list[str] = []

    async def session(client: AsyncRouterClient, session_id: int) -> None:
        begun = time.perf_counter()
        try:
            txid = await client.start_transaction()
            log = TransactionLog(txn_uuid=txid)
            op_index = 0
            read_keys = rng_choices[session_id][0]
            write_keys = rng_choices[session_id][1]
            for key in read_keys:
                raw = await client.get(txid, key)
                log.record_read(key, TaggedValue.try_from_bytes(raw), op_index)
                op_index += 1
            write_set = frozenset(write_keys)
            stamp = time.time()
            for key in write_keys:
                tag = TaggedValue(
                    payload=f"s{session_id}".encode(),
                    timestamp=stamp,
                    uuid=txid,
                    cowritten=write_set,
                )
                await client.put(txid, key, tag.to_bytes())
                log.record_write(key, tag.version, op_index)
                op_index += 1
            token = await client.commit_transaction(txid)
            results.append((log, txid, token, time.perf_counter() - begun))
        except Exception as exc:
            failures.append(f"{type(exc).__name__}: {exc}")

    # Pre-draw the arrival schedule and key choices so the workload is
    # deterministic regardless of completion interleaving.
    arrivals: list[float] = []
    t = 0.0
    while t < DURATION_S:
        t += rng.expovariate(offered_tps)
        if t < DURATION_S:
            arrivals.append(t)
    rng_choices = [
        (rng.sample(keys, 2), rng.sample(keys, 2)) for _ in range(len(arrivals))
    ]

    started = time.perf_counter()
    tasks = []
    for session_id, at in enumerate(arrivals):
        delay = at - (time.perf_counter() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        client = clients[session_id % len(clients)]
        tasks.append(asyncio.create_task(session(client, session_id)))
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started

    for client in clients:
        await client.close()

    checker = AnomalyChecker()
    # Every committed transaction whose writes the swarm can observe must be
    # in the commit order — including the preload.  Without it the preload's
    # tags fall back to their client-side put timestamps, which are not on
    # the node commit-stamp scale, and the checker reports phantom fractures.
    checker.register_commit_order(preload_txid, TransactionId.from_token(preload_token))
    latencies = []
    for log, txid, token, latency in results:
        checker.register_commit_order(txid, TransactionId.from_token(token))
        checker.add(log)
        latencies.append(latency)
    counts = checker.counts()
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))] * 1000.0

    return {
        "offered_tps": offered_tps,
        "arrivals": len(arrivals),
        "completed": len(results),
        "failed": len(failures),
        "failure_samples": failures[:5],
        "elapsed_s": round(elapsed, 3),
        "achieved_tps": round(len(results) / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(pct(0.50), 3),
        "p99_ms": round(pct(0.99), 3),
        "mean_ms": round(statistics.fmean(latencies) * 1000.0, 3) if latencies else 0.0,
        "anomalies": counts.as_dict(),
    }


def run_real_cluster_bench() -> dict:
    # A fresh cluster per offered rate: each point in the sweep starts from
    # the same (empty) storage state, so rates are comparable.
    sweep: list[dict] = []
    for offered_tps in OFFERED_SWEEP:
        with ClusterProcesses() as cluster:
            sweep.append(asyncio.run(_run_swarm(cluster.port, offered_tps)))
    summary = sweep[-1]  # the headline (gated) numbers are the top rate
    summary["sweep"] = [
        {
            name: point[name]
            for name in ("offered_tps", "achieved_tps", "p50_ms", "p99_ms", "failed")
        }
        for point in sweep
    ]
    summary["nodes"] = N_NODES
    summary["fast_mode"] = FAST_MODE
    return summary


# --------------------------------------------------------------------- #
def test_real_cluster(benchmark):
    summary = run_once(benchmark, run_real_cluster_bench)

    rows = [
        {
            "metric": name,
            "value": summary[name],
        }
        for name in (
            "offered_tps",
            "achieved_tps",
            "arrivals",
            "completed",
            "failed",
            "p50_ms",
            "p99_ms",
            "mean_ms",
        )
    ]
    rows += [
        {
            "metric": f"achieved@{point['offered_tps']:g}tps",
            "value": point["achieved_tps"],
        }
        for point in summary["sweep"]
    ]
    table = format_rows(
        rows,
        ["metric", "value"],
        title=(
            f"Real cluster: {N_NODES} node processes + router, open-loop Poisson "
            f"swarm ({'fast' if FAST_MODE else 'full'} mode)"
        ),
    )
    emit("real_cluster", table)
    emit_json("BENCH_real_cluster", summary)

    # Every arrival must complete (no aborted/failed sessions)...
    assert summary["failed"] == 0, summary["failure_samples"]
    assert summary["completed"] == summary["arrivals"]
    # ... the swarm must sustain a meaningful fraction of the offered load —
    # at every rate in the sweep, including above the pre-binary-wire
    # runtime's ~120 tps plateau...
    for point in summary["sweep"]:
        assert point["failed"] == 0, point
        assert point["achieved_tps"] >= 0.5 * point["offered_tps"], point
    # ... and the acceptance criterion: read atomicity holds on the real
    # transport — zero anomalies across the whole swarm.
    assert summary["anomalies"]["ryw_anomalies"] == 0
    assert summary["anomalies"]["fractured_read_anomalies"] == 0


if __name__ == "__main__":
    print(run_real_cluster_bench())
