"""Figure 6 — latency as a function of transaction length (1-10 functions).

Paper takeaway: latency grows roughly linearly with the number of functions;
batched commits mean a 10-function transaction over DynamoDB is ~6x (not 10x)
a 1-function transaction, while Redis — with no batching — scales closer to
proportionally (~9x).
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_transaction_length_experiment
from repro.harness.report import format_rows

COLUMNS = ["backend", "functions", "median_ms", "p99_ms", "paper_median_ms", "paper_p99_ms"]


def test_fig6_transaction_length(benchmark):
    rows = run_once(
        benchmark,
        run_transaction_length_experiment,
        lengths=(1, 2, 4, 6, 8, 10),
        num_clients=8,
        requests_per_client=50,
    )
    emit("fig6_txn_length", format_rows(rows, COLUMNS, title="Figure 6: latency vs transaction length (ms)"))

    by_key = {(row["backend"], row["functions"]): row["median_ms"] for row in rows}
    for backend in ("dynamodb", "redis"):
        assert by_key[(backend, 10)] > by_key[(backend, 4)] > by_key[(backend, 1)]
    dynamo_scaling = by_key[("dynamodb", 10)] / by_key[("dynamodb", 1)]
    redis_scaling = by_key[("redis", 10)] / by_key[("redis", 1)]
    # Roughly linear growth, with DynamoDB scaling no worse than Redis thanks
    # to commit batching (paper: 6.2x vs 8.9x).
    assert 4.0 < dynamo_scaling < 11.0
    assert 4.0 < redis_scaling < 12.0
    assert dynamo_scaling <= redis_scaling + 1.0
