"""Figure 10 — throughput across a node failure and recovery.

Paper takeaway: when one node of a loaded cluster dies, throughput drops
(about 16% in the paper's 4-node/200-client setup) and degrades slightly while
the remaining nodes absorb the load; once the fault manager's replacement node
joins (~50 s later: failure detection, container download, metadata warm-up),
throughput returns to its pre-failure level within a few seconds.

This benchmark runs a scaled-down deployment (2 nodes, 64 clients) so that the
cluster is loaded enough for the failure to be visible while keeping the run
under a minute of wall-clock time.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_fault_tolerance_experiment
from repro.harness.report import format_table


def test_fig10_fault_tolerance(benchmark):
    result = run_once(
        benchmark,
        run_fault_tolerance_experiment,
        duration=60.0,
        num_nodes=2,
        num_clients=64,
        fail_at=10.0,
        detection_delay=5.0,
        replacement_delay=25.0,
    )

    rows = [
        ["pre-failure throughput (txn/s)", result["pre_failure_tps"]],
        ["degraded throughput (txn/s)", result["degraded_tps"]],
        ["recovered throughput (txn/s)", result["recovered_tps"]],
        ["drop fraction", result["drop_fraction"]],
        ["recovered fraction of pre-failure", result["recovered_fraction"]],
        ["node failed at (s)", result["fail_at"]],
        ["replacement joined at (s)", result["rejoin_at"]],
    ]
    emit("fig10_fault_tolerance", format_table(["metric", "value"], rows, title="Figure 10: fault tolerance"))
    series_text = "\n".join(
        f"{start:6.1f}s {tps:8.1f} txn/s" for start, tps in result["throughput_series"]
    )
    emit("fig10_timeseries", "Figure 10 throughput time series\n" + series_text)

    # Losing one of two loaded nodes visibly hurts throughput...
    assert result["degraded_tps"] < result["pre_failure_tps"] * 0.9
    # ...and the system recovers to near the pre-failure level after rejoin.
    assert result["recovered_fraction"] > 0.85
