"""Figure 10 — throughput across a node failure and recovery.

Paper takeaway: when one node of a loaded cluster dies, throughput drops
(about 16% in the paper's 4-node/200-client setup) and degrades slightly while
the remaining nodes absorb the load; once the fault manager's replacement node
joins (~50 s later: failure detection, container download, metadata warm-up),
throughput returns to its pre-failure level within a few seconds.

This benchmark runs a scaled-down deployment (2 nodes, 64 clients) so that the
cluster is loaded enough for the failure to be visible while keeping the run
under a minute of wall-clock time.  Alongside the throughput time series it
reports the sharded fault manager's recovery-time breakdown (detection,
parallel shard replay, standby promotion) and emits machine-readable
``BENCH_fault_tolerance.json`` for the CI perf-trend gate.
"""

from __future__ import annotations

import os

from bench_utils import emit, emit_json, run_once

from repro.harness.experiments import run_fault_tolerance_experiment
from repro.harness.report import format_table

#: ``BENCH_FAST=1`` (the CI smoke job) shortens the run; the assertions below
#: hold at either scale.
FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")
DURATION = 60.0 if not FAST_MODE else 42.0
#: The failure must visibly hurt: 64 clients keep 2 nodes (35 request slots
#: each) saturated enough that losing one shows in throughput at either scale.
NUM_CLIENTS = 64
REPLACEMENT_DELAY = 25.0 if not FAST_MODE else 15.0


def test_fig10_fault_tolerance(benchmark):
    result = run_once(
        benchmark,
        run_fault_tolerance_experiment,
        duration=DURATION,
        num_nodes=2,
        num_clients=NUM_CLIENTS,
        fail_at=10.0,
        detection_delay=5.0,
        replacement_delay=REPLACEMENT_DELAY,
    )

    breakdown = result["recovery_breakdown"]
    rows = [
        ["pre-failure throughput (txn/s)", result["pre_failure_tps"]],
        ["degraded throughput (txn/s)", result["degraded_tps"]],
        ["recovered throughput (txn/s)", result["recovered_tps"]],
        ["drop fraction", result["drop_fraction"]],
        ["recovered fraction of pre-failure", result["recovered_fraction"]],
        ["node failed at (s)", result["fail_at"]],
        ["detection (s)", breakdown.get("detection_s")],
        ["shard replay (s)", breakdown.get("replay_s")],
        ["replayed commits", breakdown.get("replay_records")],
        ["standby promotion (s)", breakdown.get("promotion_s")],
        ["replacement joined at (s)", result["rejoin_at"]],
    ]
    emit("fig10_fault_tolerance", format_table(["metric", "value"], rows, title="Figure 10: fault tolerance"))
    series_text = "\n".join(
        f"{start:6.1f}s {tps:8.1f} txn/s" for start, tps in result["throughput_series"]
    )
    emit("fig10_timeseries", "Figure 10 throughput time series\n" + series_text)
    emit_json(
        "BENCH_fault_tolerance",
        {
            "workload": {
                "duration_s": DURATION,
                "num_nodes": 2,
                "num_clients": NUM_CLIENTS,
                "replacement_delay_s": REPLACEMENT_DELAY,
                "fast_mode": FAST_MODE,
            },
            "pre_failure_tps": result["pre_failure_tps"],
            "degraded_tps": result["degraded_tps"],
            "recovered_tps": result["recovered_tps"],
            "drop_fraction": result["drop_fraction"],
            "recovered_fraction": result["recovered_fraction"],
            "recovery_breakdown": breakdown,
        },
    )

    # Losing one of two loaded nodes visibly hurts throughput...
    assert result["degraded_tps"] < result["pre_failure_tps"] * 0.9
    # ...and the system recovers to near the pre-failure level after rejoin.
    assert result["recovered_fraction"] > 0.85
    # The breakdown must account for the full failure-to-rejoin timeline.
    assert breakdown["replay_s"] > 0.0
    assert abs(breakdown["total_s"] - (result["rejoin_at"] - result["fail_at"])) < 1.0
