"""Ablation — supersedence pruning of the commit multicast (paper §4.1).

Isolates the design choice of omitting locally superseded transactions from
the periodic commit broadcast: under a contended workload most commits are
quickly superseded, so pruning removes a large share of the metadata exchanged
between replicas without affecting what clients can read.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.report import format_table
from repro.simulation.cluster_sim import DeploymentSpec, run_deployment
from repro.workloads.spec import TransactionSpec, WorkloadSpec


def run_pruning_ablation(requests_per_client: int = 60):
    workload = WorkloadSpec(
        transaction=TransactionSpec.paper_default(),
        num_keys=20,
        zipf_theta=2.0,
        distinct_keys_per_transaction=False,
    )
    results = {}
    for label, prune in (("pruning_on", True), ("pruning_off", False)):
        spec = DeploymentSpec(
            mode="aft",
            backend="dynamodb",
            workload=workload,
            num_nodes=3,
            num_clients=12,
            requests_per_client=requests_per_client,
            prune_superseded_broadcasts=prune,
            seed=7,
        )
        results[label] = run_deployment(spec)
    return results


def test_ablation_multicast_pruning(benchmark):
    results = run_once(benchmark, run_pruning_ablation)
    on, off = results["pruning_on"], results["pruning_off"]

    rows = [
        ["records broadcast (pruning on)", on.multicast_records_broadcast],
        ["records pruned (pruning on)", on.multicast_records_pruned],
        ["records broadcast (pruning off)", off.multicast_records_broadcast],
        ["records pruned (pruning off)", off.multicast_records_pruned],
        ["broadcast reduction", 1.0 - on.multicast_records_broadcast / max(1, off.multicast_records_broadcast)],
        ["median latency, pruning on (ms)", on.latency.median_ms],
        ["median latency, pruning off (ms)", off.latency.median_ms],
        ["anomalies with pruning on", on.anomaly_counts.ryw_anomalies + on.anomaly_counts.fractured_read_anomalies],
    ]
    emit("ablation_pruning", format_table(["metric", "value"], rows, title="Ablation: multicast pruning"))

    assert on.multicast_records_pruned > 0
    assert on.multicast_records_broadcast < off.multicast_records_broadcast
    # Pruning is purely a metadata optimisation: correctness is unaffected.
    assert on.anomaly_counts.ryw_anomalies == 0
    assert on.anomaly_counts.fractured_read_anomalies == 0
