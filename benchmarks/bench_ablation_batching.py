"""Ablation — commit-protocol write batching (paper §6.1.1).

Isolates AFT's use of the backend's batched-write API during commit: with
batching disabled, every buffered update becomes its own storage request and
commit latency grows with the write set, which is exactly the penalty the
Atomic Write Buffer is designed to hide.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.report import format_table
from repro.simulation.cluster_sim import DeploymentSpec, run_deployment
from repro.workloads.spec import TransactionSpec, WorkloadSpec


def run_batching_ablation(requests_per_client: int = 60):
    # A write-heavy transaction (10 writes, 2 functions) makes the commit's
    # storage traffic the dominant cost.
    workload = WorkloadSpec(
        transaction=TransactionSpec(num_functions=2, total_ios=10, read_fraction=0.2),
        num_keys=1000,
        zipf_theta=1.0,
        distinct_keys_per_transaction=False,
    )
    results = {}
    for label, batching in (("batching_on", True), ("batching_off", False)):
        spec = DeploymentSpec(
            mode="aft",
            backend="dynamodb",
            workload=workload,
            num_clients=8,
            requests_per_client=requests_per_client,
            batch_commit_writes=batching,
            enable_data_cache=False,
            seed=11,
        )
        results[label] = run_deployment(spec)
    return results


def test_ablation_commit_batching(benchmark):
    results = run_once(benchmark, run_batching_ablation)
    on, off = results["batching_on"], results["batching_off"]

    rows = [
        ["median latency, batching on (ms)", on.latency.median_ms],
        ["median latency, batching off (ms)", off.latency.median_ms],
        ["p99 latency, batching on (ms)", on.latency.p99_ms],
        ["p99 latency, batching off (ms)", off.latency.p99_ms],
        ["latency saved by batching (ms)", off.latency.median_ms - on.latency.median_ms],
    ]
    emit("ablation_batching", format_table(["metric", "value"], rows, title="Ablation: commit write batching"))

    # Unbatched commits must be visibly slower for a write-heavy workload.
    assert off.latency.median_ms > on.latency.median_ms * 1.15
