"""Ablation — wall-clock concurrency of the async IO runtime.

Unlike every other benchmark in this suite, this one runs on the *real*
clock: storage latency is injected as actual ``time.sleep`` calls through
:class:`~repro.storage.latency_injected.LatencyInjectedStorage` (charged
latency stays zero, so the cost ledger plays no role).  A swarm of
concurrent asyncio clients drives one node through the async entry points
(``get_many_async`` / ``put_async`` / ``commit_transaction_async``); because
the engine declares ``wall_clock_io``, every plan stage fans its request
groups out over the shared IO executor and the sleeps overlap.

The serial baseline is the seed's behaviour: the sync facade with
``io_concurrency=1``, which issues every request group one after another —
wall-clock time is then the *sum* of the sleeps instead of their max.

Acceptance: >= 2x wall-clock txn/s at 16 concurrent clients over the serial
baseline.  Results go to ``benchmarks/results/BENCH_async_io.json`` and are
gated by ``scripts/check_bench_trend.py``.
"""

from __future__ import annotations

import asyncio
import os
import time

from bench_utils import emit, emit_json, run_once

from repro import runtime
from repro.config import AftConfig
from repro.core.node import AftNode
from repro.harness.report import format_rows
from repro.storage.latency import ConstantLatency, ZeroLatency
from repro.storage.latency_injected import LatencyInjectedStorage
from repro.storage.memory import InMemoryStorage
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import TransactionSpec, WorkloadSpec

FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")
#: Injected per-request storage latency (really slept).
INJECTED_LATENCY_S = 0.001
CONCURRENCY_LEVELS = (1, 4, 16, 64)
#: Transactions per client at each concurrency level.
TXNS_PER_CLIENT = 15 if FAST_MODE else 40
#: Transactions driven by the single serial-baseline client.
SERIAL_TXNS = 30 if FAST_MODE else 80


def make_node(
    io_concurrency: int, seed: int = 7, native_async: bool = False
) -> tuple[AftNode, LatencyInjectedStorage]:
    engine = LatencyInjectedStorage(
        InMemoryStorage(),
        injected=ConstantLatency(INJECTED_LATENCY_S),
        native_async=native_async,
    )
    config = AftConfig(
        enable_data_cache=False,
        enable_io_pipeline=True,
        batch_commit_writes=True,
        io_concurrency=io_concurrency,
        async_runtime=True,
    )
    node = AftNode(engine, config=config)
    node.start()

    workload = WorkloadSpec(
        transaction=TransactionSpec.paper_default(),
        num_keys=200,
        zipf_theta=1.0,
        distinct_keys_per_transaction=False,
    )
    generator = WorkloadGenerator(workload, seed=seed)
    payload = generator.make_payload()

    # Free preload: no sleeps while seeding an initial version of every key.
    metered = engine.injected
    engine.injected = ZeroLatency()
    keys = generator.sampler.all_keys()
    for start in range(0, len(keys), 25):
        txid = node.start_transaction(f"preload-{start}")
        for key in keys[start : start + 25]:
            node.put(txid, key, payload)
        node.commit_transaction(txid)
    node.forget_finished_transactions()
    engine.injected = metered
    node._bench_generator = generator  # type: ignore[attr-defined]
    node._bench_payload = payload  # type: ignore[attr-defined]
    return node, engine


def run_serial_baseline() -> float:
    """The seed's path: sync facade, one client, sequential request groups."""
    node, _ = make_node(io_concurrency=1)
    generator = node._bench_generator  # type: ignore[attr-defined]
    payload = node._bench_payload  # type: ignore[attr-defined]
    start = time.monotonic()
    for index in range(SERIAL_TXNS):
        plan = generator.next_transaction()
        txid = node.start_transaction(f"serial-{index}")
        for function in plan:
            read_keys = [op.key for op in function.reads]
            if read_keys:
                node.get_many(txid, read_keys)
            for op in function.writes:
                node.put(txid, op.key, payload)
        node.commit_transaction(txid)
    elapsed = time.monotonic() - start
    node.forget_finished_transactions()
    return SERIAL_TXNS / elapsed


async def _client(node: AftNode, client_id: int, num_txns: int, payload: bytes) -> int:
    generator = node._bench_generator  # type: ignore[attr-defined]
    committed = 0
    for index in range(num_txns):
        plan = generator.next_transaction()
        txid = node.start_transaction(f"c{client_id}-{index}")
        for function in plan:
            read_keys = [op.key for op in function.reads]
            if read_keys:
                await node.get_many_async(txid, read_keys)
            for op in function.writes:
                await node.put_async(txid, op.key, payload)
        await node.commit_transaction_async(txid)
        committed += 1
    return committed


def run_swarm(concurrency: int, native_async: bool = False) -> float:
    """Wall-clock txn/s of ``concurrency`` concurrent async clients."""
    node, _ = make_node(io_concurrency=64, native_async=native_async)
    payload = node._bench_payload  # type: ignore[attr-defined]

    async def drive() -> tuple[int, float]:
        start = time.monotonic()
        counts = await asyncio.gather(
            *[_client(node, cid, TXNS_PER_CLIENT, payload) for cid in range(concurrency)]
        )
        return sum(counts), time.monotonic() - start

    committed, elapsed = asyncio.run(drive())
    assert committed == concurrency * TXNS_PER_CLIENT
    return committed / elapsed


def run_async_io_ablation() -> dict:
    # The swarm peaks at 64 clients whose plan stages fan out further; give
    # the shared executor enough threads that it is not the artificial cap.
    runtime.configure_io_executor(64)
    serial_tps = run_serial_baseline()
    by_concurrency = {concurrency: run_swarm(concurrency) for concurrency in CONCURRENCY_LEVELS}
    # The ROADMAP's >16-client plateau probe: the same swarm over the
    # engine's native-async twins (no run_in_executor hop per request
    # group).  Measured where the executor path plateaus — the interesting
    # before/after is at the top concurrency levels.
    native_by_concurrency = {
        concurrency: run_swarm(concurrency, native_async=True)
        for concurrency in CONCURRENCY_LEVELS
        if concurrency >= 16
    }
    return {
        "serial_tps": serial_tps,
        "by_concurrency": by_concurrency,
        "native_by_concurrency": native_by_concurrency,
    }


def test_ablation_async_io(benchmark):
    results = run_once(benchmark, run_async_io_ablation)
    serial_tps = results["serial_tps"]
    by_concurrency = results["by_concurrency"]
    native_by_concurrency = results["native_by_concurrency"]

    rows = [
        {
            "clients": concurrency,
            "wall_clock_tps": tps,
            "native_tps": native_by_concurrency.get(concurrency, ""),
            "speedup_vs_serial": tps / serial_tps,
        }
        for concurrency, tps in sorted(by_concurrency.items())
    ]
    emit(
        "ablation_async_io",
        format_rows(
            [
                {
                    "clients": "serial",
                    "wall_clock_tps": serial_tps,
                    "native_tps": "",
                    "speedup_vs_serial": 1.0,
                },
                *rows,
            ],
            ["clients", "wall_clock_tps", "native_tps", "speedup_vs_serial"],
            title="Ablation: async IO runtime, wall-clock throughput (real sleeps)",
        ),
    )

    speedup_at_16 = by_concurrency[16] / serial_tps
    emit_json(
        "BENCH_async_io",
        {
            "fast_mode": FAST_MODE,
            "injected_latency_ms": INJECTED_LATENCY_S * 1000.0,
            "txns_per_client": TXNS_PER_CLIENT,
            "serial_txns": SERIAL_TXNS,
            "serial_tps": serial_tps,
            "wall_clock_tps": {str(k): v for k, v in by_concurrency.items()},
            "native_wall_clock_tps": {str(k): v for k, v in native_by_concurrency.items()},
            "speedup_at_16": speedup_at_16,
            "native_gain_at_64": native_by_concurrency[64] / by_concurrency[64],
        },
    )

    # Acceptance (ISSUE 6): >= 2x wall-clock throughput at 16 concurrent
    # clients over the serial sync baseline.  The real headroom is far
    # larger (the sleeps overlap almost perfectly); 2x keeps the gate
    # robust on noisy shared CI runners.
    assert speedup_at_16 >= 2.0, (serial_tps, by_concurrency)
    # Concurrency must actually help monotonically up to 16 clients.
    assert by_concurrency[4] > by_concurrency[1]
    assert by_concurrency[16] > by_concurrency[4]
    # The native-async path must not regress the executor path where the
    # plateau lives (generous bound: CI runners are noisy; the point of the
    # recorded before/after is the trend, the gate only guards collapse).
    assert native_by_concurrency[64] >= 0.7 * by_concurrency[64], (
        native_by_concurrency,
        by_concurrency,
    )
