"""Figure 3 — end-to-end latency of 2-function, 6-IO transactions.

Paper takeaway: AFT is competitive with plain storage access on every backend
(roughly equal on DynamoDB, ~20-25% overhead on Redis and S3) and beats
DynamoDB's transaction mode, while being the only configuration with read
atomic guarantees.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_end_to_end_experiment
from repro.harness.report import format_rows

COLUMNS = ["configuration", "median_ms", "p99_ms", "paper_median_ms", "paper_p99_ms", "throughput_tps"]


def test_fig3_end_to_end_latency(benchmark):
    results = run_once(benchmark, run_end_to_end_experiment, num_clients=10, requests_per_client=100)
    emit(
        "fig3_end_to_end",
        format_rows(results.latency_rows, COLUMNS, title="Figure 3: end-to-end latency (ms)"),
    )

    rows = {row["configuration"]: row for row in results.latency_rows}
    # Ordering across backends: Redis < DynamoDB < S3, for both plain and AFT.
    assert rows["redis/plain"]["median_ms"] < rows["dynamodb/plain"]["median_ms"] < rows["s3/plain"]["median_ms"]
    assert rows["redis/aft"]["median_ms"] < rows["dynamodb/aft"]["median_ms"] < rows["s3/aft"]["median_ms"]
    # AFT's overhead over plain stays modest on DynamoDB and Redis (<35%).
    for backend in ("dynamodb", "redis"):
        overhead = rows[f"{backend}/aft"]["median_ms"] / rows[f"{backend}/plain"]["median_ms"]
        assert overhead < 1.35
    # AFT beats DynamoDB's transaction mode at the median, as in the paper.
    assert rows["dynamodb/aft"]["median_ms"] < rows["dynamodb/transactional"]["median_ms"]
