"""Figure 3 — end-to-end latency of 2-function, 6-IO transactions.

Paper takeaway: AFT is competitive with plain storage access on every backend
(roughly equal on DynamoDB, ~20-25% overhead on Redis and S3) and beats
DynamoDB's transaction mode, while being the only configuration with read
atomic guarantees.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_end_to_end_experiment, run_group_commit_window_sweep
from repro.harness.report import format_rows

COLUMNS = ["configuration", "median_ms", "p99_ms", "paper_median_ms", "paper_p99_ms", "throughput_tps"]

SWEEP_COLUMNS = ["window_ms", "median_ms", "p99_ms", "throughput_tps", "mean_batch_size"]


def run_both_pipeline_modes(num_clients: int = 10, requests_per_client: int = 100):
    """Figure 3 with the IO pipeline on (the system) and off (the ablation)."""
    return {
        "pipeline": run_end_to_end_experiment(
            num_clients=num_clients, requests_per_client=requests_per_client, enable_io_pipeline=True
        ),
        "sequential": run_end_to_end_experiment(
            num_clients=num_clients, requests_per_client=requests_per_client, enable_io_pipeline=False
        ),
        # Figure 3 rider: the group-commit window trade-off on the headline
        # backend (window=0 keeps the figure's default configuration intact).
        "window_sweep": run_group_commit_window_sweep(
            windows_ms=(0.0, 2.0, 5.0, 10.0), num_clients=num_clients, requests_per_client=requests_per_client
        ),
    }


def test_fig3_end_to_end_latency(benchmark):
    both = run_once(benchmark, run_both_pipeline_modes)
    results = both["pipeline"]
    emit(
        "fig3_end_to_end",
        format_rows(results.latency_rows, COLUMNS, title="Figure 3: end-to-end latency (ms)"),
    )

    sequential_rows = {row["configuration"]: row for row in both["sequential"].latency_rows}
    comparison = [
        {
            "configuration": row["configuration"],
            "pipeline_median_ms": row["median_ms"],
            "sequential_median_ms": sequential_rows[row["configuration"]]["median_ms"],
        }
        for row in results.latency_rows
        if row["configuration"].endswith("/aft")
    ]
    emit(
        "fig3_pipeline_ablation",
        format_rows(
            comparison,
            ["configuration", "pipeline_median_ms", "sequential_median_ms"],
            title="Figure 3 AFT: IO pipeline on vs off",
        ),
    )

    rows = {row["configuration"]: row for row in results.latency_rows}
    # Ordering across backends: Redis < DynamoDB < S3, for both plain and AFT.
    assert rows["redis/plain"]["median_ms"] < rows["dynamodb/plain"]["median_ms"] < rows["s3/plain"]["median_ms"]
    assert rows["redis/aft"]["median_ms"] < rows["dynamodb/aft"]["median_ms"] < rows["s3/aft"]["median_ms"]
    # AFT's overhead over plain stays modest on DynamoDB and Redis (<35%).
    for backend in ("dynamodb", "redis"):
        overhead = rows[f"{backend}/aft"]["median_ms"] / rows[f"{backend}/plain"]["median_ms"]
        assert overhead < 1.35
    # AFT beats DynamoDB's transaction mode at the median, as in the paper.
    assert rows["dynamodb/aft"]["median_ms"] < rows["dynamodb/transactional"]["median_ms"]
    # The pipeline beats the sequential path end-to-end on every backend
    # (the isolated >=20% shim-path criterion lives in the parallel-IO
    # ablation benchmark; end-to-end numbers include FaaS overheads).
    for entry in comparison:
        assert entry["pipeline_median_ms"] < entry["sequential_median_ms"]

    sweep = both["window_sweep"]
    emit(
        "fig3_group_commit_window_sweep",
        format_rows(
            sweep, SWEEP_COLUMNS, title="Figure 3 rider: group-commit window sweep (dynamodb/aft)"
        ),
    )
    by_window = {row["window_ms"]: row for row in sweep}
    # Coalescing actually happens once the window opens, and grows with it.
    assert by_window[10.0]["mean_batch_size"] > by_window[2.0]["mean_batch_size"] > 1.0
    # The window's latency cost is bounded: each member waits at most one
    # window, so the median cannot exceed the no-window median by much more
    # than the window itself (generous slack for batching jitter).
    for window_ms in (2.0, 5.0, 10.0):
        added = by_window[window_ms]["median_ms"] - by_window[0.0]["median_ms"]
        assert added < window_ms * 1.5 + 5.0
