"""Ablation — AFT's dynamic read sets versus RAMP's pre-declared read sets (§3.6).

The original RAMP-Fast protocol repairs a mismatched first-round read with a
targeted second-round read, but it must know the whole read set up front.  AFT
lifts that restriction; the price is that an interactively grown read set can
be forced to read *staler* (but still read-atomic) versions, and in the worst
case a read returns NULL and the request retries.

This benchmark drives both protocols over the same key-value store with the
same interleaved writer and measures the bookkeeping each needs: RAMP's
second-round repair reads versus AFT's stale (non-latest) reads and NULL reads.
Both end the run with zero read-atomicity violations.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.baselines.ramp import RampFastStore
from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.node import AftNode
from repro.core.read_protocol import is_atomic_readset
from repro.harness.report import format_table
from repro.storage.memory import InMemoryStorage


def run_ramp_comparison(num_rounds: int = 400):
    clock = LogicalClock(start=0.0, auto_step=0.001)
    aft_node = AftNode(InMemoryStorage(), config=AftConfig(), clock=clock)
    aft_node.start()
    ramp = RampFastStore(InMemoryStorage(), clock=clock)

    keys = ["k", "l"]
    aft_stale_reads = 0
    aft_null_reads = 0
    aft_violations = 0
    ramp_violations = 0

    for round_index in range(num_rounds):
        value_k = f"k-{round_index}".encode()
        value_l = f"l-{round_index}".encode()

        # Writer installs a fresh pair through both systems.
        txid = aft_node.start_transaction()
        aft_node.put(txid, "k", value_k)
        aft_node.put(txid, "l", value_l)
        aft_node.commit_transaction(txid)
        ramp.write_transaction({"k": value_k, "l": value_l})

        # Reader A (AFT): grows its read set interactively, one key at a time,
        # with another write slipping in between the two reads.
        reader = aft_node.start_transaction()
        first = aft_node.get(reader, "k")

        interloper = aft_node.start_transaction()
        aft_node.put(interloper, "k", f"k-{round_index}-interloper".encode())
        aft_node.put(interloper, "l", f"l-{round_index}-interloper".encode())
        aft_node.commit_transaction(interloper)
        ramp.write_transaction(
            {"k": f"k-{round_index}-interloper".encode(), "l": f"l-{round_index}-interloper".encode()}
        )

        second = aft_node.get(reader, "l")
        transaction = next(
            t for t in aft_node.active_transactions() if t.uuid == reader
        )
        if not is_atomic_readset(transaction.read_set, aft_node.metadata_cache):
            aft_violations += 1
        if second is None:
            aft_null_reads += 1
        elif second != f"l-{round_index}-interloper".encode():
            aft_stale_reads += 1
        aft_node.commit_transaction(reader)
        aft_node.forget_finished_transactions()

        # Reader B (RAMP): must pre-declare {k, l} and read them in one call.
        result = ramp.read_transaction(["k", "l"])
        pair = (result["k"], result["l"])
        if pair[0] is not None and pair[1] is not None:
            suffix_k = pair[0].decode().removeprefix("k-")
            suffix_l = pair[1].decode().removeprefix("l-")
            if suffix_k != suffix_l:
                ramp_violations += 1

    return {
        "rounds": num_rounds,
        "aft_stale_reads": aft_stale_reads,
        "aft_null_reads": aft_null_reads,
        "aft_violations": aft_violations,
        "ramp_violations": ramp_violations,
        "ramp_second_round_reads": ramp.second_round_reads,
    }


def test_ablation_aft_vs_ramp(benchmark):
    result = run_once(benchmark, run_ramp_comparison)

    rows = [
        ["rounds", result["rounds"]],
        ["AFT stale (non-latest) reads", result["aft_stale_reads"]],
        ["AFT NULL reads", result["aft_null_reads"]],
        ["AFT read-atomicity violations", result["aft_violations"]],
        ["RAMP second-round repair reads", result["ramp_second_round_reads"]],
        ["RAMP read-atomicity violations", result["ramp_violations"]],
    ]
    emit("ablation_ramp", format_table(["metric", "value"], rows, title="Ablation: AFT vs RAMP-Fast"))

    # Neither protocol ever violates read atomicity.
    assert result["aft_violations"] == 0
    assert result["ramp_violations"] == 0
    # AFT pays for interactive read sets with staleness (it keeps returning the
    # version cowritten with what it already read), which RAMP avoids by
    # requiring the read set up front.
    assert result["aft_stale_reads"] + result["aft_null_reads"] > 0
