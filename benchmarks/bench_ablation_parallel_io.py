"""Ablation — the batched parallel-IO pipeline and cross-transaction group commit.

Isolates the storage pipeline introduced for the commit/read hot path.  The
same Figure 3 workload (2 functions, 2 reads + 1 write each, 4 KB values)
runs against every backend in three modes:

* ``sequential`` — the original path: every storage operation is its own
  round trip, charged one after another (``enable_io_pipeline=False``);
* ``pipelined`` — each function's reads ship as one shim request resolved by
  a parallel plan stage, and the commit runs the two-stage plan (parallel
  data fan-out, then the record);
* ``pipelined_group`` — additionally coalesces commits into cross-transaction
  group batches (``commit_transactions``), sharing the two storage round
  trips across the batch.

Latency is the AFT call-path cost (storage time + shim round trips + shim
CPU) as a long-lived VM client observes it; FaaS invocation overhead is
deliberately excluded because AFT cannot influence it.  Results are printed,
persisted as text, and emitted machine-readable to
``benchmarks/results/BENCH_parallel_io.json``.
"""

from __future__ import annotations

import os

from bench_utils import emit, emit_json, run_once

from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.node import AftNode
from repro.harness.report import format_rows
from repro.simulation.cost_model import vm_client_cost_model
from repro.simulation.metrics import LatencyCollector
from repro.storage.base import CostLedger
from repro.storage.dynamodb import SimulatedDynamoDB
from repro.storage.latency import (
    ConstantLatency,
    ZeroLatency,
    dynamodb_latency_profile,
    redis_latency_profile,
    s3_latency_profile,
)
from repro.storage.memory import InMemoryStorage
from repro.storage.rediscluster import SimulatedRedisCluster
from repro.storage.s3 import SimulatedS3
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import TransactionSpec, WorkloadSpec

BACKENDS = ("memory", "dynamodb", "s3", "redis")
MODES = ("sequential", "pipelined", "pipelined_group")
GROUP_SIZE = 4
#: ``BENCH_FAST=1`` (the CI smoke job) trades sample count for runtime; the
#: acceptance thresholds below hold at either scale.
NUM_TXNS = 100 if os.environ.get("BENCH_FAST", "") not in ("", "0") else 200


def make_backend(backend: str, clock, seed: int):
    if backend == "memory":
        # The in-memory engine is free by default; give it a uniform 1 ms so
        # the request-count differences are visible in latency too.
        return InMemoryStorage(latency_model=ConstantLatency(0.001), clock=clock)
    if backend == "dynamodb":
        return SimulatedDynamoDB(latency_model=dynamodb_latency_profile(seed), clock=clock, seed=seed)
    if backend == "s3":
        return SimulatedS3(latency_model=s3_latency_profile(seed), clock=clock, seed=seed)
    if backend == "redis":
        return SimulatedRedisCluster(latency_model=redis_latency_profile(seed), clock=clock)
    raise ValueError(backend)


def run_mode(backend: str, mode: str, num_txns: int = 200, seed: int = 7) -> dict:
    clock = LogicalClock(auto_step=1e-6)
    storage = make_backend(backend, clock, seed)
    config = AftConfig(
        enable_data_cache=False,
        enable_io_pipeline=(mode != "sequential"),
        group_commit_max_txns=GROUP_SIZE,
    )
    node = AftNode(storage, config=config, clock=clock)
    node.start()
    cost = vm_client_cost_model()

    workload = WorkloadSpec(
        transaction=TransactionSpec.paper_default(),
        num_keys=1000,
        zipf_theta=1.0,
        distinct_keys_per_transaction=False,
    )
    generator = WorkloadGenerator(workload, seed=seed)
    payload = generator.make_payload()

    # Free preload of an initial version of every key.
    metered_model = storage.latency_model
    storage.latency_model = ZeroLatency()
    keys = generator.sampler.all_keys()
    for start in range(0, len(keys), 25):
        # Explicit transaction ids keep the derived storage keys (and thus
        # Redis shard grouping) identical across runs.
        txid = node.start_transaction(f"preload-{start}")
        for key in keys[start : start + 25]:
            node.put(txid, key, payload)
        node.commit_transaction(txid)
    node.forget_finished_transactions()
    storage.latency_model = metered_model

    collector = LatencyCollector()
    storage_requests = 0
    pipelined = mode != "sequential"

    def charge(ledger: CostLedger) -> float:
        return ledger.pipelined_latency if pipelined else ledger.sequential_latency

    def run_pre_commit_phase(plan, txid: str) -> float:
        """Execute a transaction's reads and buffered writes; return latency."""
        nonlocal storage_requests
        latency = 0.0
        for function in plan:
            if pipelined:
                read_keys = [op.key for op in function.reads]
                if read_keys:
                    ledger = CostLedger()
                    with storage.metered(ledger):
                        node.get_many(txid, read_keys)
                    storage_requests += ledger.operation_count
                    latency += (
                        charge(ledger)
                        + cost.shim_rtt
                        + cost.shim_cpu_per_op * len(read_keys)
                    )
                write_ops = function.writes
            else:
                for op in function.reads:
                    ledger = CostLedger()
                    with storage.metered(ledger):
                        node.get(txid, op.key)
                    storage_requests += ledger.operation_count
                    latency += charge(ledger) + cost.shim_rtt + cost.shim_cpu_per_op
                write_ops = function.writes
            for op in write_ops:
                node.put(txid, op.key, payload)
                latency += cost.shim_rtt + cost.shim_cpu_per_op
        return latency

    if mode == "pipelined_group":
        done = 0
        while done < num_txns:
            batch = min(GROUP_SIZE, num_txns - done)
            txids, pre_commit = [], []
            for offset in range(batch):
                plan = generator.next_transaction()
                txid = node.start_transaction(f"txn-{done + offset}")
                pre_commit.append(run_pre_commit_phase(plan, txid))
                txids.append(txid)
            ledger = CostLedger()
            with storage.metered(ledger):
                node.commit_transactions(txids)
            storage_requests += ledger.operation_count
            # Every member of the batch waits for the shared flush.
            commit_latency = charge(ledger) + cost.shim_rtt + cost.shim_cpu_per_op
            for latency in pre_commit:
                collector.record(latency + commit_latency)
            done += batch
            node.forget_finished_transactions()
    else:
        for index in range(num_txns):
            plan = generator.next_transaction()
            txid = node.start_transaction(f"txn-{index}")
            latency = run_pre_commit_phase(plan, txid)
            ledger = CostLedger()
            with storage.metered(ledger):
                node.commit_transaction(txid)
            storage_requests += ledger.operation_count
            collector.record(latency + charge(ledger) + cost.shim_rtt + cost.shim_cpu_per_op)
            node.forget_finished_transactions()

    summary = collector.summary()
    return {
        "median_ms": summary.median_ms,
        "p99_ms": summary.p99_ms,
        "mean_ms": summary.mean_ms,
        "storage_requests_per_txn": storage_requests / num_txns,
        "group_commits": node.stats.group_commits,
        "group_commit_batched_txns": node.stats.group_commit_batched_txns,
    }


def run_parallel_io_ablation(num_txns: int = NUM_TXNS) -> dict:
    results: dict[str, dict[str, dict]] = {}
    for backend in BACKENDS:
        results[backend] = {mode: run_mode(backend, mode, num_txns=num_txns) for mode in MODES}
    return results


def test_ablation_parallel_io(benchmark):
    results = run_once(benchmark, run_parallel_io_ablation)

    rows = []
    for backend in BACKENDS:
        for mode in MODES:
            metrics = results[backend][mode]
            rows.append(
                {
                    "backend": backend,
                    "mode": mode,
                    "median_ms": metrics["median_ms"],
                    "p99_ms": metrics["p99_ms"],
                    "requests_per_txn": metrics["storage_requests_per_txn"],
                }
            )
    emit(
        "ablation_parallel_io",
        format_rows(
            rows,
            ["backend", "mode", "median_ms", "p99_ms", "requests_per_txn"],
            title="Ablation: sequential vs pipelined vs pipelined+group-commit",
        ),
    )

    improvements = {
        backend: 1.0 - results[backend]["pipelined"]["median_ms"] / results[backend]["sequential"]["median_ms"]
        for backend in BACKENDS
    }
    emit_json(
        "BENCH_parallel_io",
        {
            "workload": {
                "transaction": "2 functions x (2 reads + 1 write), 4KiB values (Figure 3 shape)",
                "transactions_per_mode": NUM_TXNS,
                "group_size": GROUP_SIZE,
            },
            "backends": results,
            "pipeline_median_improvement": improvements,
        },
    )

    # Acceptance: the pipeline cuts the AFT median latency by >= 20% on the
    # backends the paper highlights (S3's per-object PUT fan-out, DynamoDB's
    # native batching).  The CI fast mode runs a quarter of the samples, so
    # it checks a slightly looser bound — the calibrated magnitude is a
    # full-run property, the direction and plumbing are not.
    improvement_bound = 0.85 if NUM_TXNS < 200 else 0.80
    for backend in ("s3", "dynamodb"):
        sequential = results[backend]["sequential"]["median_ms"]
        pipelined = results[backend]["pipelined"]["median_ms"]
        assert pipelined <= improvement_bound * sequential, (backend, sequential, pipelined)

    # Group commit shares the commit round trips.  On backends with any
    # batching capability (native batches, per-shard MSET) that means fewer
    # storage requests per transaction; on S3 (no batch API) the request
    # count is unchanged — the records of the whole batch just fan out in
    # one shared stage instead of one stage per transaction.
    for backend in BACKENDS:
        group_requests = results[backend]["pipelined_group"]["storage_requests_per_txn"]
        pipelined_requests = results[backend]["pipelined"]["storage_requests_per_txn"]
        if backend == "s3":
            assert group_requests <= pipelined_requests, backend
        else:
            assert group_requests < pipelined_requests, backend
        assert results[backend]["pipelined_group"]["group_commits"] > 0
