"""Ablation — the sharded fault manager vs the seed's singleton.

Isolates the recovery path (paper Sections 4.2, 5.2): the liveness sweep
over the Transaction Commit Set, the memory held to remember seen commits,
and the time to replay a failed node's unbroadcast commits.

* ``singleton`` — the seed implementation preserved in
  :mod:`repro.core.fault_manager_reference`: one unbounded ``_seen`` set,
  one ``read_record`` round trip per unseen id, one sequential pass over
  the whole history per sweep.
* ``sharded`` (1/2/4/8 shards) — the shipped service: the transaction-id
  space partitioned on the consistent-hash ring, per-shard watermark +
  window digests, cursor-resumable sweeps with IO-plan batched record
  fetches, and parallel per-shard replay on node failure.

Latency is *charged* from the deployment cost model, exactly as the
simulated figures charge storage latency: a sharded sweep costs its slowest
shard plus fan-out overhead, the singleton costs the sequential sum.  Both
implementations must recover the identical commit set — the benchmark
asserts it — so the comparison is pure mechanism.  Results are printed,
persisted as text, and emitted machine-readable to
``benchmarks/results/BENCH_fault_manager.json`` for the CI perf-trend gate.
"""

from __future__ import annotations

import os
import time

from bench_utils import emit, emit_json, run_once

from repro.config import FaultManagerConfig
from repro.core.commit_set import CommitRecord, CommitSetStore
from repro.core.fault_manager import FaultManager
from repro.core.fault_manager_reference import ReferenceFaultManager
from repro.core.multicast import MulticastService
from repro.core.node import AftNode
from repro.ids import TransactionId, data_key
from repro.simulation.cost_model import DeploymentCostModel
from repro.storage.memory import InMemoryStorage

SHARD_COUNTS = (1, 2, 4, 8)
FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")
HISTORY_COMMITS = 6_000 if not FAST_MODE else 1_500
#: Fraction of the history committed by a node that died before broadcasting.
UNBROADCAST_FRACTION = 0.10
#: Seconds of txid-timestamp between consecutive commits (sets the watermark
#: window size relative to total history).
COMMIT_SPACING = 0.1
WATERMARK_LAG = 30.0
#: Acceptance: sharded sweeps must be >= 2x the singleton at 4 shards.
SPEEDUP_BOUND = 2.0
SPEEDUP_AT_SHARDS = 4
#: Acceptance: digest memory must be bounded by the watermark window, not
#: total history.
MEMORY_FRACTION_BOUND = 0.5


def build_history(storage: InMemoryStorage) -> tuple[CommitSetStore, list[CommitRecord], list[CommitRecord]]:
    """A committed history where every Nth record was never broadcast.

    Returns ``(store, broadcast_records, unbroadcast_records)``; the
    unbroadcast ones belong to the crashed node ``"crashed"``.
    """
    store = CommitSetStore(storage)
    stride = int(1 / UNBROADCAST_FRACTION)
    broadcast: list[CommitRecord] = []
    unbroadcast: list[CommitRecord] = []
    for index in range(HISTORY_COMMITS):
        crashed = index % stride == stride - 1
        txid = TransactionId(timestamp=index * COMMIT_SPACING, uuid=f"fm{index}")
        key = f"fmkey{index % 512}"
        record = CommitRecord(
            txid=txid,
            write_set={key: data_key(key, txid)},
            committed_at=index * COMMIT_SPACING,
            node_id="crashed" if crashed else f"node-{index % 3}",
        )
        store.write_record(record)
        (unbroadcast if crashed else broadcast).append(record)
    return store, broadcast, unbroadcast


def run_fault_manager_ablation() -> dict:
    cost_model = DeploymentCostModel()
    storage = InMemoryStorage()
    store, broadcast, unbroadcast = build_history(storage)
    expected = {record.txid for record in unbroadcast}
    # One multicast service serves every configuration: each manager under
    # test registers as the fault-manager sink and is unregistered before
    # the next takes its place.
    multicast = MulticastService()

    # ------------------------------------------------------------------ #
    # Singleton reference: sequential full-history sweep, unbounded seen set.
    # ------------------------------------------------------------------ #
    reference = ReferenceFaultManager(storage, store, multicast)
    reference.receive_commits(broadcast)
    started = time.perf_counter()
    recovered_ref = reference.scan_commit_set()
    ref_wall = time.perf_counter() - started
    assert {record.txid for record in recovered_ref} == expected
    ref_charged = cost_model.fault_scan_latency(
        [(HISTORY_COMMITS, len(unbroadcast), len(unbroadcast))]
    )
    multicast.unregister_fault_manager(reference)

    results: dict = {
        "singleton": {
            "charged_scan_s": ref_charged,
            "scan_records_per_sec": HISTORY_COMMITS / ref_charged,
            "wall_ms": ref_wall * 1e3,
            "seen_set_entries": reference.seen_count(),
            "recovery_charged_s": cost_model.recovery_latency([len(unbroadcast)]),
        },
        "by_shards": {},
    }

    # ------------------------------------------------------------------ #
    # Sharded service at 1/2/4/8 shards.
    # ------------------------------------------------------------------ #
    for shards in SHARD_COUNTS:
        config = FaultManagerConfig(num_shards=shards, watermark_lag=WATERMARK_LAG)
        manager = FaultManager(storage, store, multicast, config=config)
        manager.receive_commits(broadcast)

        started = time.perf_counter()
        recovered = manager.scan_commit_set()
        wall = time.perf_counter() - started
        assert {record.txid for record in recovered} == expected, (
            f"sharded recovery diverged from the singleton at {shards} shards"
        )
        charged = cost_model.fault_scan_latency(manager.last_scan_report.shard_costs())

        # The completed first cycle advanced every shard's watermark; digest
        # memory is now the lag window, not the history.
        memory = manager.memory_footprint()

        # Recovery replay of a crashed node's commits, charged in parallel.
        multicast.unregister_fault_manager(manager)
        crashed = AftNode(storage, commit_store=store, node_id="crashed")
        recovery_manager = FaultManager(storage, store, multicast, config=config)
        recovery_manager.receive_commits(broadcast)
        report = recovery_manager.recover_node_failure(crashed)
        assert {record.txid for record in report.recovered} == expected
        recovery_charged = cost_model.recovery_latency(
            report.shard_costs(), orphan_spills=report.orphan_spills_reclaimed
        )
        multicast.unregister_fault_manager(recovery_manager)

        results["by_shards"][str(shards)] = {
            "charged_scan_s": charged,
            "scan_records_per_sec": HISTORY_COMMITS / charged,
            "speedup_vs_singleton": ref_charged / charged,
            "wall_ms": wall * 1e3,
            "window_entries": memory["window_entries"],
            "largest_shard_window": memory["largest_shard_window"],
            "memory_fraction_of_history": memory["window_entries"] / HISTORY_COMMITS,
            "recovery_charged_s": recovery_charged,
            "recovery_speedup_vs_singleton": (
                results["singleton"]["recovery_charged_s"] / recovery_charged
            ),
        }
    return results


def test_ablation_fault_manager(benchmark):
    results = run_once(benchmark, run_fault_manager_ablation)

    from repro.harness.report import format_rows

    rows = [
        {
            "shards": shards,
            "scan_krec/s": metrics["scan_records_per_sec"] / 1e3,
            "speedup": metrics["speedup_vs_singleton"],
            "recovery_ms": metrics["recovery_charged_s"] * 1e3,
            "digest_entries": metrics["window_entries"],
        }
        for shards, metrics in results["by_shards"].items()
    ]
    rows.append(
        {
            "shards": "singleton",
            "scan_krec/s": results["singleton"]["scan_records_per_sec"] / 1e3,
            "speedup": 1.0,
            "recovery_ms": results["singleton"]["recovery_charged_s"] * 1e3,
            "digest_entries": results["singleton"]["seen_set_entries"],
        }
    )
    emit(
        "ablation_fault_manager",
        format_rows(
            rows,
            ["shards", "scan_krec/s", "speedup", "recovery_ms", "digest_entries"],
            title="Ablation: singleton vs sharded fault manager (charged scan/recovery)",
        ),
    )
    emit_json(
        "BENCH_fault_manager",
        {
            "workload": {
                "history_commits": HISTORY_COMMITS,
                "unbroadcast_fraction": UNBROADCAST_FRACTION,
                "commit_spacing_s": COMMIT_SPACING,
                "watermark_lag_s": WATERMARK_LAG,
                "fast_mode": FAST_MODE,
            },
            "singleton": results["singleton"],
            "by_shards": results["by_shards"],
            "speedup_bound": SPEEDUP_BOUND,
            "speedup_at_shards": SPEEDUP_AT_SHARDS,
            "memory_fraction_bound": MEMORY_FRACTION_BOUND,
        },
    )

    # Acceptance / CI regression gates.
    four = results["by_shards"][str(SPEEDUP_AT_SHARDS)]
    assert four["speedup_vs_singleton"] >= SPEEDUP_BOUND, (
        f"fault-manager scan regression: {four['speedup_vs_singleton']:.2f}x at "
        f"{SPEEDUP_AT_SHARDS} shards (gate: {SPEEDUP_BOUND}x)"
    )
    # Memory is bounded by the watermark window, not total history: the
    # singleton remembers every commit ever broadcast.
    assert results["singleton"]["seen_set_entries"] == HISTORY_COMMITS
    for metrics in results["by_shards"].values():
        assert metrics["memory_fraction_of_history"] < MEMORY_FRACTION_BOUND
    # More shards must keep helping (monotone through the measured range).
    assert (
        results["by_shards"]["8"]["recovery_charged_s"]
        < results["by_shards"]["1"]["recovery_charged_s"]
    )
    by_shards = results["by_shards"]
    assert by_shards["8"]["speedup_vs_singleton"] > by_shards["2"]["speedup_vs_singleton"]
