"""Benchmark — adversarial certification: seeded fault schedules vs. AFT.

The nemesis counterpart of Table 2: instead of counting anomalies under a
benign workload, this drives seeded fault schedules (crashes, stalled
heartbeats, broadcast partitions, torn writes, relay deaths) against the
in-process cluster — plus a real socket-cluster schedule — and reports

* **schedules survived** — every schedule must pass both the pairwise
  checker and the Elle-style cycle search with zero violations,
* **anomalies** — total confirmed violations across all runs (hard
  ceiling 0: AFT's read atomicity must hold under faults),
* **recovery p99** — schedule-time units from a disruption to the next
  successful commit, the nemesis view of Figure 10's recovery story.

Results land in ``benchmarks/results/BENCH_nemesis.json`` and are gated by
``scripts/check_bench_trend.py``; CI runs this under ``BENCH_FAST=1``.
"""

from __future__ import annotations

import os

from bench_utils import emit, emit_json, run_once

from repro.harness.report import format_rows
from repro.nemesis import InprocTarget, SocketTarget, generate_schedule, run_schedule

FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")

INPROC_SCHEDULES = 8 if FAST_MODE else 24
SOCKET_SCHEDULES = 1 if FAST_MODE else 4
DURATION = 20.0


def _sweep(make_target, kinds, n_schedules: int, seed_base: int = 0) -> dict:
    survived = 0
    anomalies = 0
    null_reads = 0
    divergent = 0
    committed = 0
    failed_txns = 0
    recovery: list[float] = []
    failing_seeds: list[int] = []
    for seed in range(seed_base, seed_base + n_schedules):
        schedule = generate_schedule(seed, kinds=kinds, duration=DURATION)
        result = run_schedule(make_target(), schedule)
        committed += result.committed
        failed_txns += result.failed
        recovery.extend(result.recovery_samples)
        anomalies += (
            result.anomalies.get("ryw_anomalies", 0)
            + result.anomalies.get("fractured_read_anomalies", 0)
            + result.cycles.get("violations", 0)
        )
        null_reads += result.unexpected_null_reads
        divergent += len(result.convergence_violations)
        if result.ok:
            survived += 1
        else:
            failing_seeds.append(seed)
    recovery.sort()
    p99 = recovery[min(len(recovery) - 1, int(0.99 * len(recovery)))] if recovery else 0.0
    return {
        "schedules": n_schedules,
        "survived": survived,
        "survived_fraction": survived / n_schedules,
        "anomalies": anomalies,
        "unexpected_null_reads": null_reads,
        "divergent_replicas": divergent,
        "committed_txns": committed,
        "failed_txns": failed_txns,
        "recovery_samples": len(recovery),
        "recovery_p99": p99,
        "failing_seeds": failing_seeds,
    }


def run_nemesis_bench() -> dict:
    inproc = _sweep(InprocTarget, InprocTarget.supported_kinds, INPROC_SCHEDULES)
    sockets = _sweep(SocketTarget, SocketTarget.supported_kinds, SOCKET_SCHEDULES, seed_base=100)
    summary = {
        "workload": {
            "fast_mode": FAST_MODE,
            "duration": DURATION,
            "inproc_schedules": INPROC_SCHEDULES,
            "socket_schedules": SOCKET_SCHEDULES,
        },
        "inproc": inproc,
        "sockets": sockets,
    }

    rows = [
        {
            "runtime": name,
            "survived": f"{runtime['survived']}/{runtime['schedules']}",
            "anomalies": runtime["anomalies"],
            "divergent": runtime["divergent_replicas"],
            "committed": runtime["committed_txns"],
            "recovery p99 (units)": f"{runtime['recovery_p99']:.2f}",
        }
        for name, runtime in (("inproc", inproc), ("sockets", sockets))
    ]
    emit(
        "BENCH_nemesis",
        format_rows(
            rows,
            ["runtime", "survived", "anomalies", "divergent", "committed", "recovery p99 (units)"],
            title="Nemesis: seeded fault schedules, both checkers, convergence probe",
        ),
    )
    emit_json("BENCH_nemesis", summary)
    return summary


def test_nemesis(benchmark):
    summary = run_once(benchmark, run_nemesis_bench)
    assert summary["inproc"]["anomalies"] == 0
    assert summary["inproc"]["survived_fraction"] == 1.0
    assert summary["sockets"]["survived_fraction"] == 1.0


if __name__ == "__main__":
    run_nemesis_bench()
