"""Figure 7 — single-node throughput as client count grows.

Paper takeaway: one AFT node scales linearly to roughly 40 clients and then
plateaus (~600 txn/s over DynamoDB, ~900 txn/s over Redis).
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import (
    run_group_commit_window_sweep,
    run_single_node_scalability_experiment,
)
from repro.harness.report import format_rows

COLUMNS = ["backend", "clients", "throughput_tps", "median_ms", "paper_throughput_tps"]

SWEEP_COLUMNS = ["window_ms", "median_ms", "p99_ms", "throughput_tps", "mean_batch_size"]


def run_both_pipeline_modes(client_counts=(1, 5, 10, 20, 30, 40, 45, 50), requests_per_client=50):
    """Figure 7 with the IO pipeline on (the system) and off (the ablation)."""
    rows = run_single_node_scalability_experiment(
        client_counts=client_counts, requests_per_client=requests_per_client, enable_io_pipeline=True
    )
    sequential = run_single_node_scalability_experiment(
        client_counts=(40, 50), requests_per_client=requests_per_client, enable_io_pipeline=False
    )
    # Figure 7 rider: the window sweep at the plateau's client count, where
    # commit arrivals are dense enough for real coalescing.
    sweep = run_group_commit_window_sweep(
        windows_ms=(0.0, 2.0, 5.0, 10.0), num_clients=40, requests_per_client=requests_per_client
    )
    return rows, sequential, sweep


def test_fig7_single_node_scalability(benchmark):
    rows, sequential, sweep = run_once(benchmark, run_both_pipeline_modes)
    emit(
        "fig7_single_node_scalability",
        format_rows(rows, COLUMNS, title="Figure 7: single-node throughput (txn/s)"),
    )
    emit(
        "fig7_pipeline_ablation",
        format_rows(
            sequential,
            ["backend", "clients", "throughput_tps", "median_ms"],
            title="Figure 7 ablation: sequential IO path at/after the plateau",
        ),
    )

    by_key = {(row["backend"], row["clients"]): row["throughput_tps"] for row in rows}
    sequential_by_key = {(row["backend"], row["clients"]): row["throughput_tps"] for row in sequential}
    # The pipeline sustains at least the sequential path's plateau throughput.
    for backend in ("dynamodb", "redis"):
        assert by_key[(backend, 50)] >= sequential_by_key[(backend, 50)] * 0.95
    for backend in ("dynamodb", "redis"):
        # Linear region: 20 clients gives roughly 2x the throughput of 10.
        assert 1.6 < by_key[(backend, 20)] / by_key[(backend, 10)] < 2.4
        # Plateau: going from 40 to 50 clients adds little.
        assert by_key[(backend, 50)] < by_key[(backend, 40)] * 1.15
    # Redis sustains a higher plateau than DynamoDB (paper: ~900 vs ~600).
    assert by_key[("redis", 50)] > by_key[("dynamodb", 50)] * 1.2

    emit(
        "fig7_group_commit_window_sweep",
        format_rows(
            sweep, SWEEP_COLUMNS, title="Figure 7 rider: group-commit window sweep at 40 clients"
        ),
    )
    by_window = {row["window_ms"]: row for row in sweep}
    # Dense commit arrivals coalesce: batch size grows with the window.
    assert by_window[10.0]["mean_batch_size"] > by_window[0.0]["mean_batch_size"]
    # Coalescing must not collapse throughput (bounded latency-for-batching
    # trade; loose floor because the sweep rides a busy plateau).
    assert by_window[10.0]["throughput_tps"] > by_window[0.0]["throughput_tps"] * 0.6
