"""Figure 5 — latency as a function of the read/write mix of a 10-IO transaction.

Paper takeaway: AFT's latency is largely flat across read/write ratios; over
DynamoDB the batched commit makes write-heavy mixes no worse than read-heavy
ones, and over Redis every operation costs about the same.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_read_write_ratio_experiment
from repro.harness.report import format_rows

COLUMNS = ["backend", "read_fraction", "median_ms", "p99_ms", "paper_median_ms", "paper_p99_ms"]


def test_fig5_read_write_ratio(benchmark):
    rows = run_once(
        benchmark,
        run_read_write_ratio_experiment,
        read_fractions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        num_clients=8,
        requests_per_client=80,
    )
    emit("fig5_read_write_ratio", format_rows(rows, COLUMNS, title="Figure 5: latency vs read fraction (ms)"))

    for backend in ("dynamodb", "redis"):
        mixed = [row["median_ms"] for row in rows if row["backend"] == backend and row["read_fraction"] < 1.0]
        read_only = [row["median_ms"] for row in rows if row["backend"] == backend and row["read_fraction"] == 1.0]
        spread = max(mixed) / min(mixed)
        # The paper reports <10% variation for DynamoDB and almost none for
        # Redis; allow some slack for the smaller sample sizes here.
        assert spread < 1.30, f"{backend} latency should be nearly flat across ratios (spread={spread:.2f})"
        # The read-only mix drops the batch-write API call and must not be
        # slower than the write-heavy mixes (our cached reads make it faster
        # than the paper's, which still paid a storage round trip per read).
        assert read_only[0] <= max(mixed) * 1.05
