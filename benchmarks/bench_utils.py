"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Because pytest
captures stdout, each benchmark also writes its rendered table to
``benchmarks/results/<name>.txt`` so the output survives a quiet run; pass
``-s`` to see the tables inline.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> Path:
    """Print ``text`` and persist it under ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


def emit_json(name: str, payload: dict) -> Path:
    """Persist ``payload`` as machine-readable ``benchmarks/results/<name>.json``.

    Downstream tooling (dashboards, regression trackers) consumes these files,
    so the payload must be plain JSON-serialisable types.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\n[machine-readable results written to {path}]")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)
