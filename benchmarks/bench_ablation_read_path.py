"""Ablation — the lock-free incremental read hot path (Algorithm 1).

Isolates the metadata-side cost of a read: running Algorithm 1 against the
node-local commit-set cache.  The same Zipf-skewed committed history is
replayed through two implementations of the decision path:

* ``reference`` — the original literal transcription
  (:mod:`repro.core.read_protocol_reference`): the lower bound re-scans the
  whole read set per read and every candidate's cowritten set is re-walked —
  O(|R|) metadata lookups per read, so an n-read transaction costs O(n²).
  It runs through :class:`LegacyCacheAdapter`, which restores the seed
  cache's per-lookup costs: every ``cowritten``/``get`` takes the RLock and
  rebuilds the cowritten frozenset from the write set, exactly as the
  pre-optimization ``CommitSetCache`` did.
* ``fast`` — the shipped incremental path (:mod:`repro.core.read_protocol`):
  a :class:`~repro.core.read_protocol.TrackedReadSet` maintains the lower
  bounds and per-candidate observed minima as the read set grows, and the
  decision runs against an immutable metadata snapshot without ever
  acquiring a lock.

Both paths replay identical request streams over the same committed
history.  Decision throughput is reported per transaction length (reads per
transaction); the gap must widen with transaction length — that is the
whole point of the digest.  Results are printed, persisted as text, and
emitted machine-readable to ``benchmarks/results/BENCH_read_path.json``.

"""

from __future__ import annotations

import os
import threading
import time

from bench_utils import emit, emit_json, run_once

from repro.core import read_protocol_reference as reference
from repro.core.commit_set import CommitRecord
from repro.core.metadata_cache import CommitSetCache
from repro.core.read_protocol import TrackedReadSet, atomic_read
from repro.core.version_index import KeyVersionIndex
from repro.harness.report import format_rows
from repro.ids import TransactionId, data_key
from repro.workloads.zipf import ZipfKeySampler

READS_PER_TXN = (1, 4, 16, 64)
NUM_KEYS = 512
HISTORY_COMMITS = 3_000
ZIPF_THETA = 1.0
#: ``BENCH_FAST=1`` (the CI smoke job) trades decision count for runtime; the
#: acceptance threshold below holds at either scale.
FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")
DECISIONS_PER_LENGTH = 20_000 if not FAST_MODE else 4_000
#: Acceptance: the incremental path must beat the reference by >= 1.5x on
#: decision throughput once transactions are 16+ reads long.
SPEEDUP_BOUND = 1.5
SPEEDUP_AT_READS = 16


class LegacyCacheAdapter:
    """The seed implementation's metadata-cache read path, faithfully restored.

    Before this optimisation pass, ``CommitSetCache`` served every query
    under its RLock, ``CommitRecord.cowritten`` was an uncached property that
    rebuilt ``frozenset(write_set)`` per call, and
    ``KeyVersionIndex.versions_at_least`` copied the candidate list.  The
    reference path runs through this adapter so the ablation measures the
    *shipped* old path — locks, copies and all — against the shipped new one.
    """

    def __init__(self, cache: CommitSetCache) -> None:
        self._records = {record.txid: record for record in cache.records()}
        self._index = KeyVersionIndex()
        for record in self._records.values():
            self._index.add_record(record.write_set.keys(), record.txid)
        self._lock = threading.RLock()

    @property
    def version_index(self) -> KeyVersionIndex:
        return self._index

    def get(self, txid: TransactionId) -> CommitRecord | None:
        with self._lock:
            return self._records.get(txid)

    def cowritten(self, txid: TransactionId) -> frozenset[str]:
        with self._lock:
            record = self._records.get(txid)
            if record is None:
                return frozenset()
            return frozenset(record.write_set)


def build_history(seed: int = 11) -> tuple[CommitSetCache, ZipfKeySampler]:
    """A Zipf-skewed committed history with multi-key cowritten sets."""
    sampler = ZipfKeySampler(num_keys=NUM_KEYS, theta=ZIPF_THETA, seed=seed)
    cache = CommitSetCache()
    for index in range(HISTORY_COMMITS):
        txid = TransactionId(timestamp=float(index), uuid=f"h{index}")
        write_keys = sampler.sample_distinct(1 + index % 8)
        cache.add(
            CommitRecord(
                txid=txid,
                write_set={key: data_key(key, txid) for key in write_keys},
                committed_at=float(index),
                node_id="bench",
            )
        )
    return cache, sampler


def plan_transactions(sampler: ZipfKeySampler, reads_per_txn: int, total_decisions: int, seed: int):
    """Pre-draw the read orders so both paths replay identical request streams."""
    sampler.reseed(seed)
    num_txns = max(1, total_decisions // reads_per_txn)
    distinct = min(reads_per_txn, sampler.num_keys)
    return [sampler.sample_distinct(distinct) for _ in range(num_txns)]


def run_reference_path(legacy: LegacyCacheAdapter, transactions) -> tuple[float, int]:
    """The original path: plain-dict read set, full rescan per locked lookup."""
    targets = 0
    started = time.perf_counter()
    for read_order in transactions:
        read_set: dict[str, TransactionId] = {}
        for key in read_order:
            decision = reference.atomic_read(key, read_set, legacy)
            if decision.target is not None:
                read_set[key] = decision.target
                targets += 1
    return time.perf_counter() - started, targets


def run_fast_path(cache: CommitSetCache, transactions) -> tuple[float, int]:
    """The incremental path: TrackedReadSet digest + snapshot reads."""
    targets = 0
    started = time.perf_counter()
    for read_order in transactions:
        tracked = TrackedReadSet()
        snap = cache.snapshot()
        for key in read_order:
            decision = atomic_read(key, tracked, snap)
            if decision.target is not None:
                tracked.observe(key, decision.target, snap.cowritten(decision.target))
                targets += 1
    return time.perf_counter() - started, targets


def run_read_path_ablation() -> dict:
    cache, sampler = build_history()
    legacy = LegacyCacheAdapter(cache)
    results: dict[str, dict] = {}
    for reads_per_txn in READS_PER_TXN:
        transactions = plan_transactions(sampler, reads_per_txn, DECISIONS_PER_LENGTH, seed=reads_per_txn)
        decisions = sum(len(txn) for txn in transactions)

        ref_elapsed, ref_targets = run_reference_path(legacy, transactions)
        fast_elapsed, fast_targets = run_fast_path(cache, transactions)
        # Sanity: both paths must choose a version for exactly the same reads.
        assert ref_targets == fast_targets, (reads_per_txn, ref_targets, fast_targets)

        results[str(reads_per_txn)] = {
            "decisions": decisions,
            "reference_decisions_per_sec": decisions / ref_elapsed,
            "fast_decisions_per_sec": decisions / fast_elapsed,
            "speedup": ref_elapsed / fast_elapsed,
        }
    return results


def test_ablation_read_path(benchmark):
    results = run_once(benchmark, run_read_path_ablation)

    rows = [
        {
            "reads/txn": reads,
            "reference_kdec/s": metrics["reference_decisions_per_sec"] / 1e3,
            "fast_kdec/s": metrics["fast_decisions_per_sec"] / 1e3,
            "speedup": metrics["speedup"],
        }
        for reads, metrics in results.items()
    ]
    emit(
        "ablation_read_path",
        format_rows(
            rows,
            ["reads/txn", "reference_kdec/s", "fast_kdec/s", "speedup"],
            title="Ablation: reference vs incremental Algorithm 1 (decision throughput)",
        ),
    )
    emit_json(
        "BENCH_read_path",
        {
            "workload": {
                "history_commits": HISTORY_COMMITS,
                "num_keys": NUM_KEYS,
                "zipf_theta": ZIPF_THETA,
                "cowritten_set_sizes": "1-8 keys round-robin",
                "decisions_per_length": DECISIONS_PER_LENGTH,
                "fast_mode": FAST_MODE,
            },
            "by_reads_per_txn": results,
            "speedup_bound": SPEEDUP_BOUND,
            "speedup_at_reads": SPEEDUP_AT_READS,
        },
    )

    # Acceptance / CI regression gate: the incremental path must deliver
    # >= 1.5x decision throughput at 16+ reads per transaction.
    for reads_per_txn in READS_PER_TXN:
        if reads_per_txn >= SPEEDUP_AT_READS:
            speedup = results[str(reads_per_txn)]["speedup"]
            assert speedup >= SPEEDUP_BOUND, (
                f"read-path regression: {speedup:.2f}x at {reads_per_txn} reads/txn "
                f"(gate: {SPEEDUP_BOUND}x)"
            )
    # The digest's advantage must grow with transaction length.
    assert results["64"]["speedup"] > results["1"]["speedup"]
