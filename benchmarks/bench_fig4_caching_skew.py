"""Figure 4 — read caching and data skew.

Paper takeaway: AFT's latency is insensitive to skew; enabling the data cache
improves AFT-over-DynamoDB by ~10-17% (more at higher skew) and barely matters
over Redis; DynamoDB's transaction mode degrades badly as contention rises.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_caching_skew_experiment
from repro.harness.report import format_rows

COLUMNS = [
    "configuration",
    "zipf",
    "median_ms",
    "p99_ms",
    "paper_median_ms",
    "paper_p99_ms",
    "cache_hit_rate",
    "conflict_retries",
]


def test_fig4_caching_and_skew(benchmark):
    rows = run_once(
        benchmark,
        run_caching_skew_experiment,
        zipf_coefficients=(1.0, 1.5, 2.0),
        num_keys=10_000,
        num_clients=8,
        requests_per_client=80,
    )
    emit("fig4_caching_skew", format_rows(rows, COLUMNS, title="Figure 4: latency vs skew (ms)"))

    by_key = {(row["configuration"], row["zipf"]): row for row in rows}
    # Caching helps AFT-over-DynamoDB, and helps more as skew increases.
    assert (
        by_key[("aft_dynamo_cache", 2.0)]["median_ms"]
        < by_key[("aft_dynamo_nocache", 2.0)]["median_ms"]
    )
    # The cache hit rate grows with skew.
    assert (
        by_key[("aft_dynamo_cache", 2.0)]["cache_hit_rate"]
        > by_key[("aft_dynamo_cache", 1.0)]["cache_hit_rate"]
    )
    # Caching matters little over Redis (its reads are already ~1 ms).
    redis_gain = (
        by_key[("aft_redis_nocache", 1.5)]["median_ms"] - by_key[("aft_redis_cache", 1.5)]["median_ms"]
    )
    assert redis_gain < 6.0
    # DynamoDB transactions degrade with contention; AFT does not.
    assert by_key[("dynamodb_txn", 2.0)]["median_ms"] > by_key[("dynamodb_txn", 1.0)]["median_ms"]
    assert by_key[("dynamodb_txn", 2.0)]["median_ms"] > by_key[("aft_dynamo_cache", 2.0)]["median_ms"]
