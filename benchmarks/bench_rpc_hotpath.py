"""Benchmark — the wire hot path: binary framing, op batching, coalescing.

Three measurements back the PR's protocol work:

* **Codec microbench.**  One payload-heavy ``storage_batch`` frame is
  encoded and decoded through both negotiated wire formats.  The JSON wire
  pays ``base64`` inflation plus byte-by-byte string escaping on every
  bulk payload; the hybrid binary wire JSON-encodes only a compact header
  and memcpys the payloads raw.
* **Round trips per transaction.**  An in-process cluster (real localhost
  sockets: one router + three node servers, the same objects the
  ``repro-router``/``repro-node`` processes run) is driven by a closed-loop
  swarm of concurrent client sessions twice: once as a PR 7-era deployment
  (JSON wire, one frame per storage op) and once with the negotiated fast
  path (binary wire + ``storage_batch`` coalescing).  The router counts
  storage *frames* and storage *ops*, so the metric is exact: how many
  wire round trips does the shared-storage service absorb per committed
  transaction?  The acceptance criterion is **>= 2x fewer**.
* **Writer coalescing.**  Per-connection counters report frames per
  ``drain()`` — frames queued behind an in-flight flush share one syscall.

Results land in ``benchmarks/results/BENCH_rpc.json`` and are gated by
``scripts/check_bench_trend.py``; CI runs this under ``BENCH_FAST=1``.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

from bench_utils import emit, emit_json, run_once

from repro.harness.report import format_rows
from repro.rpc import messages as m
from repro.rpc.client import AsyncRouterClient
from repro.rpc.framing import FORMAT_BINARY, FORMAT_JSON, decode_frame, frame_bytes
from repro.rpc.node_server import NodeServer
from repro.rpc.router import RouterServer
from repro.storage.base import StorageOp

FAST_MODE = os.environ.get("BENCH_FAST", "") not in ("", "0")

N_NODES = 3
N_CONNECTIONS = 4
N_WORKERS = 48
TXNS_PER_WORKER = 6 if FAST_MODE else 25
N_KEYS = 32
PAYLOAD = b"\x42" * 256
SEED = 23
#: Opportunistic coalescing window for the fast-path config (the
#: ``--coalesce-window`` node knob): up to 1 ms of stage latency buys
#: cross-session op merging even when the swarm de-synchronises.
COALESCE_WINDOW = 0.001

#: Codec microbench shape: one storage_batch frame carrying a group-commit
#: sized op group with data-blob payloads.
CODEC_OPS = 16
CODEC_BLOB = bytes(range(256)) * 8  # 2 KiB, full byte alphabet
CODEC_ITERATIONS = 200 if FAST_MODE else 2000


# --------------------------------------------------------------------- #
# Codec microbench
# --------------------------------------------------------------------- #
def _codec_bench() -> dict:
    ops = [
        StorageOp(op="put", keys=(f"aft.data/k{i}/t{i}",), items={f"aft.data/k{i}/t{i}": CODEC_BLOB})
        for i in range(CODEC_OPS)
    ]
    msg_type, version, body = m.encode_body(m.encode_storage_ops(ops))
    envelope = {"id": 1, "type": msg_type, "v": version, "body": body}

    def timed_us(fn) -> float:
        start = time.perf_counter()
        for _ in range(CODEC_ITERATIONS):
            fn()
        return (time.perf_counter() - start) / CODEC_ITERATIONS * 1e6

    result: dict = {
        "iterations": CODEC_ITERATIONS,
        "message": f"storage_batch: {CODEC_OPS} puts x {len(CODEC_BLOB)} B",
    }
    frames = {}
    for wire_format in (FORMAT_JSON, FORMAT_BINARY):
        frame = frame_bytes(envelope, wire_format)
        frames[wire_format] = frame
        payload = frame[4:]
        result[f"{wire_format}_frame_bytes"] = len(frame)
        result[f"{wire_format}_encode_us"] = round(
            timed_us(lambda wf=wire_format: frame_bytes(envelope, wf)), 2
        )
        result[f"{wire_format}_decode_us"] = round(
            timed_us(lambda p=payload: decode_frame(p)), 2
        )
    result["encode_speedup"] = round(result["json_encode_us"] / result["binary_encode_us"], 2)
    result["decode_speedup"] = round(result["json_decode_us"] / result["binary_decode_us"], 2)
    result["codec_speedup"] = round(
        (result["json_encode_us"] + result["json_decode_us"])
        / (result["binary_encode_us"] + result["binary_decode_us"]),
        2,
    )
    result["frame_size_ratio"] = round(
        len(frames[FORMAT_JSON]) / len(frames[FORMAT_BINARY]), 3
    )
    return result


# --------------------------------------------------------------------- #
# The in-process cluster, instrumented
# --------------------------------------------------------------------- #
class _CountingRouter(RouterServer):
    """RouterServer that counts storage frames vs storage ops.

    One ``storage`` frame is one op; one ``storage_batch`` frame is as many
    ops as it carries — the frames/ops split is exactly the wire-round-trip
    saving the batching layer exists to buy.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.storage_frames = 0
        self.storage_ops = 0

    def _handle_storage(self, msg):
        self.storage_frames += 1
        self.storage_ops += 1
        return super()._handle_storage(msg)

    async def _handle_storage_batch(self, conn, msg):
        self.storage_frames += 1
        self.storage_ops += len(msg.ops)
        return await super()._handle_storage_batch(conn, msg)


async def _drive(router: _CountingRouter) -> dict:
    """Closed-loop swarm: N_WORKERS concurrent read-2/write-2 sessions."""
    keys = [f"acct:{i}" for i in range(N_KEYS)]
    clients = [
        await AsyncRouterClient.connect("127.0.0.1", router.port)
        for _ in range(N_CONNECTIONS)
    ]
    await clients[0].wait_ready(N_NODES)

    # Preload so steady-state reads resolve real versions from storage.
    tx = await clients[0].start_transaction()
    await clients[0].put_many(tx, {key: PAYLOAD for key in keys})
    await clients[0].commit_transaction(tx)

    rng = random.Random(SEED)
    plans = [
        [(rng.sample(keys, 2), rng.sample(keys, 2)) for _ in range(TXNS_PER_WORKER)]
        for _ in range(N_WORKERS)
    ]

    async def worker(worker_id: int) -> None:
        client = clients[worker_id % len(clients)]
        for reads, writes in plans[worker_id]:
            tx = await client.start_transaction()
            await client.get_many(tx, reads)
            await client.put_many(tx, {key: PAYLOAD for key in writes})
            await client.commit_transaction(tx)

    # Snapshot the storage counters after the preload so node bootstrap and
    # preload traffic stay out of the per-transaction metric.
    frames_before, ops_before = router.storage_frames, router.storage_ops
    started = time.perf_counter()
    await asyncio.gather(*(worker(w) for w in range(N_WORKERS)))
    elapsed = time.perf_counter() - started
    storage_frames = router.storage_frames - frames_before
    storage_ops = router.storage_ops - ops_before

    info = await clients[0].info()
    for client in clients:
        await client.close()

    txns = N_WORKERS * TXNS_PER_WORKER
    node_wire = {
        node_id: counters
        for node_id, counters in info.wire.items()
        if node_id.startswith("n")
    }
    frames_out = sum(c["frames_out"] for c in node_wire.values())
    drains = sum(c["drains"] for c in node_wire.values())
    return {
        "wire_format": next(iter(node_wire.values()))["format"],
        "txns": txns,
        "elapsed_s": round(elapsed, 3),
        "txn_per_s": round(txns / elapsed, 1) if elapsed else 0.0,
        "storage_frames": storage_frames,
        "storage_ops": storage_ops,
        "round_trips_per_txn": round(storage_frames / txns, 3),
        "storage_ops_per_txn": round(storage_ops / txns, 3),
        "ops_per_storage_frame": round(storage_ops / storage_frames, 3)
        if storage_frames
        else 0.0,
        "router_frames_out": frames_out,
        "router_drains": drains,
        "frames_per_drain": round(frames_out / drains, 3) if drains else 0.0,
    }


def _run_cluster(fast_path: bool) -> dict:
    """Boot router + nodes on one loop and drive the swarm through them."""

    async def scenario() -> dict:
        router = _CountingRouter(
            port=0,
            lease_duration=5.0,
            heartbeat_interval=1.0,
            wire_formats=(FORMAT_JSON, FORMAT_BINARY) if fast_path else (FORMAT_JSON,),
            enable_storage_batches=fast_path,
        )
        await router.start()
        nodes = []
        try:
            for i in range(N_NODES):
                node = NodeServer(
                    f"n{i}",
                    router_port=router.port,
                    coalesce_window=COALESCE_WINDOW if fast_path else 0.0,
                )
                await node.start()
                nodes.append(node)
            return await _drive(router)
        finally:
            for node in nodes:
                await node.stop()
            await router.stop()

    return asyncio.run(scenario())


def run_rpc_hotpath_bench() -> dict:
    summary = {
        "fast_mode": FAST_MODE,
        "workload": {
            "nodes": N_NODES,
            "workers": N_WORKERS,
            "txns_per_worker": TXNS_PER_WORKER,
            "keys": N_KEYS,
            "payload_bytes": len(PAYLOAD),
        },
        "codec": _codec_bench(),
        # "before" is the PR 7 deployment: JSON wire, one frame per storage
        # op; "after" is the negotiated fast path.
        "before": _run_cluster(fast_path=False),
        "after": _run_cluster(fast_path=True),
    }
    before, after = summary["before"], summary["after"]
    summary["round_trip_improvement"] = round(
        before["round_trips_per_txn"] / after["round_trips_per_txn"], 2
    )
    summary["throughput_gain"] = round(after["txn_per_s"] / before["txn_per_s"], 2)
    return summary


# --------------------------------------------------------------------- #
def test_rpc_hotpath(benchmark):
    summary = run_once(benchmark, run_rpc_hotpath_bench)

    rows = []
    for name in (
        "wire_format",
        "txns",
        "txn_per_s",
        "storage_frames",
        "storage_ops",
        "round_trips_per_txn",
        "ops_per_storage_frame",
        "frames_per_drain",
    ):
        rows.append(
            {
                "metric": name,
                "before (json, unbatched)": summary["before"][name],
                "after (binary, batched)": summary["after"][name],
            }
        )
    codec = summary["codec"]
    table = format_rows(
        rows,
        ["metric", "before (json, unbatched)", "after (binary, batched)"],
        title=(
            f"RPC hot path ({'fast' if FAST_MODE else 'full'} mode): "
            f"{summary['round_trip_improvement']}x fewer storage round trips/txn, "
            f"codec {codec['codec_speedup']}x faster, "
            f"frames {codec['frame_size_ratio']}x smaller"
        ),
    )
    emit("rpc_hotpath", table)
    emit_json("BENCH_rpc", summary)

    # The tentpole's acceptance criterion: batching + coalescing must at
    # least halve the wire round trips per committed transaction...
    assert summary["round_trip_improvement"] >= 2.0, summary
    # ... while moving the same storage work (ops are conserved, only the
    # framing changes; background GC contributes a little slack)...
    assert summary["after"]["storage_ops_per_txn"] <= summary["before"]["storage_ops_per_txn"] * 1.5
    # ... and the binary codec must beat JSON+base64 on payload-heavy frames.
    assert codec["codec_speedup"] > 1.0
    assert codec["frame_size_ratio"] > 1.0


if __name__ == "__main__":
    print(run_rpc_hotpath_bench())
