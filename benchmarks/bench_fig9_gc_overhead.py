"""Figure 9 — global garbage collection overhead.

Paper takeaway: enabling global data GC has no discernible effect on
throughput while deleting superseded transactions roughly as fast as they are
produced under a contended workload.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_gc_overhead_experiment
from repro.harness.report import format_table


def test_fig9_gc_overhead(benchmark):
    result = run_once(benchmark, run_gc_overhead_experiment, duration=40.0, num_clients=20)

    rows = [
        ["throughput with GC (txn/s)", result["throughput_with_gc"]],
        ["throughput without GC (txn/s)", result["throughput_without_gc"]],
        ["throughput ratio (GC on / off)", result["throughput_ratio"]],
        ["transactions committed (GC on)", result["transactions_committed_with_gc"]],
        ["transactions deleted by GC", result["transactions_deleted"]],
        ["deletions per second", result["deletions_per_second"]],
        ["storage keys at end (GC on)", result["storage_keys_with_gc"]],
        ["storage keys at end (GC off)", result["storage_keys_without_gc"]],
    ]
    emit("fig9_gc_overhead", format_table(["metric", "value"], rows, title="Figure 9: GC overhead"))

    # GC must not cost throughput (within 10%).
    assert result["throughput_ratio"] > 0.90
    # GC keeps up: a large fraction of committed transactions get collected,
    # and the storage footprint is much smaller than without GC.
    assert result["transactions_deleted"] > 0.3 * result["transactions_committed_with_gc"]
    assert result["storage_keys_with_gc"] < 0.7 * result["storage_keys_without_gc"]
