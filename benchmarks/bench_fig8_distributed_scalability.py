"""Figure 8 — distributed scalability at 40 clients per node.

Paper takeaway: AFT scales near-linearly (within 90% of ideal) as nodes are
added, until it saturates DynamoDB's provisioned capacity (~8,000 txn/s) or
Lambda's concurrent-invocation limit for Redis.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_distributed_scalability_experiment
from repro.harness.report import format_rows

COLUMNS = [
    "backend",
    "nodes",
    "clients",
    "throughput_tps",
    "ideal_tps",
    "fraction_of_ideal",
    "paper_throughput_tps",
]


def test_fig8_distributed_scalability(benchmark):
    rows = run_once(
        benchmark,
        run_distributed_scalability_experiment,
        node_counts=(1, 2, 4, 8),
        clients_per_node=40,
        requests_per_client=25,
    )
    emit(
        "fig8_distributed_scalability",
        format_rows(rows, COLUMNS, title="Figure 8: distributed throughput (txn/s)"),
    )

    by_key = {(row["backend"], row["nodes"]): row for row in rows}
    for backend in ("dynamodb", "redis"):
        # Adding nodes increases throughput monotonically.
        assert (
            by_key[(backend, 8)]["throughput_tps"]
            > by_key[(backend, 4)]["throughput_tps"]
            > by_key[(backend, 1)]["throughput_tps"]
        )
        # Scaling stays within 90% of ideal up to 4 nodes (the paper's claim).
        assert by_key[(backend, 4)]["fraction_of_ideal"] > 0.85
    # The DynamoDB capacity cap bites at the largest cluster: its fraction of
    # ideal at 8 nodes is lower than Redis's.
    assert (
        by_key[("dynamodb", 8)]["fraction_of_ideal"]
        <= by_key[("redis", 8)]["fraction_of_ideal"] + 0.05
    )
