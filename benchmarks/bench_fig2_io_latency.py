"""Figure 2 — IO latency of 1/5/10 writes: DynamoDB vs AFT, sequential vs batch.

Paper takeaway: sequential writes to DynamoDB grow linearly (with terrible
tails), batched writes stay nearly flat, and AFT's automatic batching lets a
sequential client beat sequential DynamoDB while paying a small fixed commit
overhead versus batched DynamoDB.
"""

from __future__ import annotations

from bench_utils import emit, run_once

from repro.harness.experiments import run_io_latency_experiment
from repro.harness.report import format_rows

COLUMNS = ["configuration", "writes", "median_ms", "p99_ms", "paper_median_ms", "paper_p99_ms"]


def test_fig2_io_latency(benchmark):
    rows = run_once(benchmark, run_io_latency_experiment, num_requests=400)
    emit("fig2_io_latency", format_rows(rows, COLUMNS, title="Figure 2: IO latency (ms)"))

    by_key = {(row["configuration"], row["writes"]): row for row in rows}
    # Shape checks mirroring the paper's claims.
    assert by_key[("dynamodb_sequential", 10)]["median_ms"] > 3 * by_key[("dynamodb_sequential", 1)]["median_ms"]
    assert by_key[("dynamodb_batch", 10)]["median_ms"] < by_key[("dynamodb_sequential", 10)]["median_ms"]
    assert by_key[("aft_sequential", 10)]["median_ms"] < by_key[("dynamodb_sequential", 10)]["median_ms"]
    assert by_key[("aft_batch", 1)]["median_ms"] > by_key[("dynamodb_batch", 1)]["median_ms"]
