#!/usr/bin/env python3
"""Run seeded nemesis schedules against a runtime; shrink failures to a
minimal reproducing schedule.

The CI nemesis lane runs this on every PR with a small seed matrix and
nightly with a long randomized sweep::

    python scripts/run_nemesis.py --runtime inproc --schedules 4
    python scripts/run_nemesis.py --runtime sockets --seed-base 100 --schedules 4
    python scripts/run_nemesis.py --runtime inproc --schedules 50   # nightly

Every schedule is derived deterministically from its seed, so a failure
reported by CI replays locally with the same ``--runtime`` and seed.  On
failure the schedule is delta-debugged (ddmin over fault/heal atoms) down
to a minimal schedule that still reproduces, and a JSON artifact is
written (``--artifact``) that CI uploads; exit status is non-zero.

``--mutant`` re-enables a known bug (``relay-leak`` reverts the relay
hand-off reroute fix, ``torn-silent`` breaks the §3.3 write-ordering
contract) as a self-test that the harness still has teeth — with a mutant
selected, a *clean* sweep is the failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.nemesis import (  # noqa: E402
    InprocTarget,
    SimTarget,
    SocketTarget,
    generate_schedule,
    run_schedule,
    shrink_schedule,
)


def make_factory(runtime: str, mutant: str | None):
    if runtime == "inproc":
        kwargs = {}
        if mutant == "relay-leak":
            kwargs["reroute_orphans"] = False
        elif mutant == "torn-silent":
            kwargs["torn_mode"] = "silent"
        factory = lambda: InprocTarget(**kwargs)
        kinds = InprocTarget.supported_kinds
    elif runtime == "sockets":
        if mutant:
            raise SystemExit("--mutant is only supported on the inproc runtime")
        factory = SocketTarget
        kinds = SocketTarget.supported_kinds
    elif runtime == "sim":
        if mutant:
            raise SystemExit("--mutant is only supported on the inproc runtime")
        factory = SimTarget
        kinds = SimTarget.supported_kinds
    else:
        raise SystemExit(f"unknown runtime {runtime!r}")
    return factory, kinds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runtime", default="inproc", choices=("inproc", "sockets", "sim"))
    parser.add_argument("--schedules", type=int, default=4, help="number of seeded schedules")
    parser.add_argument("--seed-base", type=int, default=0, help="first seed of the sweep")
    parser.add_argument("--duration", type=float, default=20.0, help="schedule units per run")
    parser.add_argument(
        "--artifact",
        type=Path,
        default=Path("nemesis_failure.json"),
        help="where to write the minimal reproducing schedule on failure",
    )
    parser.add_argument("--no-shrink", action="store_true", help="skip ddmin on failure")
    parser.add_argument("--shrink-budget", type=int, default=48, help="max ddmin replays")
    parser.add_argument(
        "--mutant",
        choices=("relay-leak", "torn-silent"),
        help="re-enable a known bug (harness self-test; inproc only)",
    )
    args = parser.parse_args()

    factory, kinds = make_factory(args.runtime, args.mutant)
    failures = []
    for seed in range(args.seed_base, args.seed_base + args.schedules):
        schedule = generate_schedule(seed, kinds=kinds, duration=args.duration)
        result = run_schedule(factory(), schedule)
        marker = "ok " if result.ok else "FAIL"
        print(
            f"[{marker}] seed={seed} runtime={args.runtime} {result.verdict()} "
            f"(committed={result.committed} failed={result.failed} "
            f"recovery_p99={result.recovery_p99:.2f})"
        )
        if not result.ok:
            failures.append((seed, schedule, result))

    if args.mutant:
        # Self-test inversion: the mutant sweep must FAIL to prove the
        # harness detects the re-enabled bug.
        if failures:
            print(f"mutant {args.mutant!r} detected in {len(failures)}/{args.schedules} schedules")
            return 0
        print(f"mutant {args.mutant!r} NOT detected — the harness has lost its teeth")
        return 1

    if not failures:
        print(f"all {args.schedules} schedules survived on {args.runtime}")
        return 0

    seed, schedule, result = failures[0]
    minimal = schedule
    minimal_result = result
    if not args.no_shrink:
        print(f"shrinking failing seed {seed} (budget {args.shrink_budget} replays)...")
        minimal = shrink_schedule(
            schedule,
            lambda candidate: not run_schedule(factory(), candidate).ok,
            max_runs=args.shrink_budget,
        )
        minimal_result = run_schedule(factory(), minimal)
    artifact = {
        "runtime": args.runtime,
        "seed": seed,
        "failures": len(failures),
        "schedules_run": args.schedules,
        "original_schedule": schedule.to_dict(),
        "original_verdict": result.verdict(),
        "minimal_schedule": minimal.to_dict(),
        "minimal_result": minimal_result.as_dict(),
    }
    args.artifact.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"minimal reproducing schedule written to {args.artifact}")
    print(json.dumps(minimal.to_dict(), indent=2))
    return 1


if __name__ == "__main__":
    sys.exit(main())
