#!/usr/bin/env python3
"""Profile the per-request protocol cost of the RPC wire, stage by stage.

Answers "where does a storage request's time go?" by timing each stage of
the request path in isolation, for both negotiated wire formats:

* **encode** — dataclass body -> framed bytes (``encode_body`` +
  ``frame_bytes``);
* **syscall** — one framed round trip over a real localhost TCP socket
  against a raw echo server (no codec, no handler: pure transport + event
  loop);
* **decode** — framed bytes -> dataclass body (``decode_frame`` +
  ``decode_body``);
* **handler** — the router's storage applier on an in-memory engine
  (``_apply_op_sync``), the work the frame exists to deliver.

Run it::

    PYTHONPATH=src python scripts/profile_rpc.py [--iterations 2000]

The table shows, per representative message shape and wire format, the
microseconds spent in each stage and the protocol share (everything except
the handler).  This is the measurement tool behind the binary-framing PR:
on the JSON wire the codec dominates bulk frames; the hybrid binary wire
pushes the bottleneck back to the transport.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.report import format_rows  # noqa: E402
from repro.rpc import messages as m  # noqa: E402
from repro.rpc.framing import (  # noqa: E402
    FORMAT_BINARY,
    FORMAT_JSON,
    decode_frame,
    frame_bytes,
)
from repro.rpc.router import RouterServer  # noqa: E402
from repro.storage.base import StorageOp  # noqa: E402

BLOB = bytes(range(256)) * 8  # 2 KiB, full byte alphabet


def _shapes() -> dict[str, tuple[m.WireMessage, StorageOp]]:
    """Representative request shapes: (wire message, handler op)."""
    batch_ops = [
        StorageOp(op="put", keys=(f"aft.data/k{i}/t",), items={f"aft.data/k{i}/t": BLOB})
        for i in range(16)
    ]
    return {
        "heartbeat": (m.Heartbeat(node_id="n0"), StorageOp(op="get", keys=("k",))),
        "storage_get": (
            m.StorageRequest(op="get", keys=["aft.data/k/t"]),
            StorageOp(op="get", keys=("aft.data/k/t",)),
        ),
        "storage_put_2KiB": (
            m.StorageRequest(op="put", items={"aft.data/k/t": BLOB}),
            StorageOp(op="put", keys=("aft.data/k/t",), items={"aft.data/k/t": BLOB}),
        ),
        "storage_batch_16x2KiB": (
            m.encode_storage_ops(batch_ops),
            None,  # handler cost measured per batch below
        ),
    }


def _timed_us(fn, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations * 1e6


async def _echo_round_trip_us(frame: bytes, iterations: int) -> float:
    """Round-trip ``frame`` through a raw localhost echo server.

    No codec and no handler on either side — the measured time is syscalls,
    TCP loopback, and event-loop scheduling for a frame of this size.
    """

    async def echo(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                data = await reader.readexactly(len(frame))
                writer.write(data)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass

    server = await asyncio.start_server(echo, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    # Warm the connection before timing.
    for _ in range(10):
        writer.write(frame)
        await writer.drain()
        await reader.readexactly(len(frame))
    start = time.perf_counter()
    for _ in range(iterations):
        writer.write(frame)
        await writer.drain()
        await reader.readexactly(len(frame))
    elapsed = time.perf_counter() - start
    writer.close()
    await writer.wait_closed()
    server.close()
    await server.wait_closed()
    return elapsed / iterations * 1e6


def _handler_us(message: m.WireMessage, op: StorageOp | None, iterations: int) -> float:
    router = RouterServer(port=0)
    if isinstance(message, m.StorageBatch):
        ops = m.decode_storage_ops(message)
        return _timed_us(lambda: [router._apply_op_sync(o) for o in ops], iterations)
    if op is None:  # pragma: no cover - every shape maps to an op
        return 0.0
    return _timed_us(lambda: router._apply_op_sync(op), iterations)


def profile(iterations: int) -> list[dict]:
    rows: list[dict] = []
    for shape, (message, op) in _shapes().items():
        msg_type, version, body = m.encode_body(message)
        envelope = {"id": 1, "type": msg_type, "v": version, "body": body}
        handler_us = round(_handler_us(message, op, max(1, iterations // 4)), 2)
        for wire_format in (FORMAT_JSON, FORMAT_BINARY):
            frame = frame_bytes(envelope, wire_format)
            payload = frame[4:]
            encode_us = round(
                _timed_us(lambda wf=wire_format: frame_bytes(envelope, wf), iterations), 2
            )
            decode_us = round(
                _timed_us(
                    lambda p=payload: m.decode_body(
                        msg_type, version, decode_frame(p)["body"]
                    ),
                    iterations,
                ),
                2,
            )
            syscall_us = round(
                asyncio.run(_echo_round_trip_us(frame, max(1, iterations // 4))), 2
            )
            total = encode_us + syscall_us + decode_us + handler_us
            rows.append(
                {
                    "shape": shape,
                    "wire": wire_format,
                    "frame_B": len(frame),
                    "encode_us": encode_us,
                    "syscall_us": syscall_us,
                    "decode_us": decode_us,
                    "handler_us": handler_us,
                    "total_us": round(total, 2),
                    "protocol_share": f"{(total - handler_us) / total:.0%}" if total else "-",
                }
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--iterations", type=int, default=2000, help="timing iterations per codec stage"
    )
    args = parser.parse_args(argv)

    rows = profile(args.iterations)
    print(
        format_rows(
            rows,
            [
                "shape",
                "wire",
                "frame_B",
                "encode_us",
                "syscall_us",
                "decode_us",
                "handler_us",
                "total_us",
                "protocol_share",
            ],
            title=f"Per-request protocol cost breakdown ({args.iterations} iterations/stage)",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
