#!/usr/bin/env python3
"""Merge span dumps from a --trace-dir and print a latency report.

Every process in a cluster appends its spans to ``trace-<component>.jsonl``
under the directory given by ``--trace-dir``.  This script merges those
dumps, stitches the per-process fragments back into causal traces, and
prints a per-operation latency table::

    python scripts/trace_report.py /tmp/aft-traces
    python scripts/trace_report.py run1/trace-router.jsonl run2/*.jsonl
    python scripts/trace_report.py /tmp/aft-traces --chrome trace.json
    python scripts/trace_report.py /tmp/aft-traces --trace txn-42

``--chrome`` additionally writes a Chrome trace-event file for
``chrome://tracing`` / https://ui.perfetto.dev, where each transaction's
causal chain renders as nested slices per process.  ``--trace`` restricts
the report (and the tree printout) to a single trace id, accepting either
the full id (``txn-42``) or a bare txid.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.observability.export import load_spans, write_chrome_trace  # noqa: E402
from repro.observability.trace import Span  # noqa: E402


def collect_paths(inputs: list[str]) -> list[Path]:
    """Expand each input into span-dump files: files pass through,
    directories contribute their ``trace*.jsonl`` dumps (the sink writes
    ``trace-<component>.jsonl``; the benchmark writes ``trace.jsonl``)."""
    paths: list[Path] = []
    for raw in inputs:
        p = Path(raw)
        if p.is_dir():
            paths.extend(sorted(p.glob("trace*.jsonl")))
        elif p.exists():
            paths.append(p)
        else:
            raise SystemExit(f"trace_report: no such file or directory: {raw}")
    if not paths:
        raise SystemExit("trace_report: no trace*.jsonl dumps found in the given inputs")
    return paths


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def latency_table(spans: list[Span]) -> str:
    """Per-span-name latency summary, widest names first for alignment."""
    by_name: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        if span.duration > 0.0:
            by_name[span.name].append(span.duration * 1e3)  # ms
    rows = []
    for name in sorted(by_name):
        values = sorted(by_name[name])
        rows.append(
            (
                name,
                len(values),
                sum(values) / len(values),
                percentile(values, 0.50),
                percentile(values, 0.99),
                values[-1],
            )
        )
    width = max([len(r[0]) for r in rows] + [len("span")])
    lines = [
        f"{'span':<{width}}  {'count':>7}  {'mean ms':>9}  {'p50 ms':>9}  {'p99 ms':>9}  {'max ms':>9}",
        f"{'-' * width}  {'-' * 7}  {'-' * 9}  {'-' * 9}  {'-' * 9}  {'-' * 9}",
    ]
    for name, count, mean, p50, p99, mx in rows:
        lines.append(f"{name:<{width}}  {count:>7}  {mean:>9.3f}  {p50:>9.3f}  {p99:>9.3f}  {mx:>9.3f}")
    return "\n".join(lines)


def trace_summary(spans: list[Span]) -> str:
    """Per-trace connectivity: how many traces, and how many of them are
    fully stitched (every span's parent present, exactly one root)."""
    by_trace: dict[str, list[Span]] = defaultdict(list)
    for span in spans:
        by_trace[span.trace_id].append(span)
    connected = 0
    for members in by_trace.values():
        ids = {s.span_id for s in members}
        roots = [s for s in members if s.parent_id is None]
        orphans = [s for s in members if s.parent_id is not None and s.parent_id not in ids]
        if len(roots) == 1 and not orphans:
            connected += 1
    total = len(by_trace)
    processes = sorted({s.process for s in spans})
    return (
        f"{len(spans)} spans across {total} traces from {len(processes)} processes "
        f"({', '.join(processes)}); {connected}/{total} traces fully connected"
    )


def print_tree(spans: list[Span]) -> None:
    """Render one trace's spans as an indentation tree in start order."""
    children: dict[str | None, list[Span]] = defaultdict(list)
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children[parent].append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.start)

    def walk(parent_id: str | None, depth: int) -> None:
        for span in children.get(parent_id, ()):  # noqa: B020
            marker = f"{span.duration * 1e3:9.3f} ms" if span.duration > 0.0 else "  (instant)"
            print(f"  {marker}  {'  ' * depth}{span.name}  [{span.process}]")
            walk(span.span_id, depth + 1)

    walk(None, 0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="trace-*.jsonl files or --trace-dir directories")
    parser.add_argument("--chrome", metavar="OUT", help="also write a Chrome trace-event JSON file")
    parser.add_argument("--trace", metavar="ID", help="restrict to one trace id (txn-42, or bare txid)")
    args = parser.parse_args(argv)

    spans = load_spans(collect_paths(args.inputs))
    if args.trace:
        wanted = {args.trace, f"txn-{args.trace}"}
        spans = [s for s in spans if s.trace_id in wanted]
        if not spans:
            raise SystemExit(f"trace_report: no spans for trace {args.trace!r}")

    print(trace_summary(spans))
    print()
    print(latency_table(spans))
    if args.trace:
        print()
        print_tree(spans)
    if args.chrome:
        out = write_chrome_trace(args.chrome, spans)
        print(f"\nwrote Chrome trace: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
