#!/usr/bin/env python3
"""CI perf-trend gate: compare fresh ``BENCH_*.json`` against committed baselines.

The ``bench-smoke`` job snapshots the committed ``benchmarks/results/BENCH_*.json``
baselines before running the benchmarks (which overwrite them in place), then
invokes this script to compare the fresh results against the snapshot with
per-metric tolerances.  A metric that regresses beyond its tolerance — or
breaches a hard bound — fails the build; the comparison table is appended to
``$GITHUB_STEP_SUMMARY`` so the trend is visible on the run page.

Metrics fall into two classes:

* **ratio/fraction metrics** (speedups, improvement fractions, recovered
  fraction) are stable across the ``BENCH_FAST`` scale-down, so their
  tolerances are relatively tight;
* **wall-clock and absolute-scale metrics** are machine- and scale-
  sensitive, so they are either not gated or gated with generous tolerances
  and a hard floor/ceiling that encodes the acceptance criterion itself.

Usage::

    python scripts/check_bench_trend.py \
        --baseline-dir /tmp/bench-baselines \
        --results-dir benchmarks/results \
        [--summary "$GITHUB_STEP_SUMMARY"]

Exit status 0 when every gated metric is within tolerance, 1 otherwise.
A gated file missing from the results dir is skipped (its benchmark did not
run in this job); a file missing from the baseline dir is reported as a new
baseline and only its hard bounds are enforced.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

HIGHER = "higher"
LOWER = "lower"


@dataclass(frozen=True)
class Metric:
    """One gated metric inside a BENCH json file.

    ``path`` is a dotted path into the json document.  ``direction`` names
    which way is better.  ``tolerance`` is the allowed relative regression
    against the baseline (0.35 = fresh may be up to 35% worse).  ``floor`` /
    ``ceiling`` are hard bounds enforced even without a baseline — they
    encode the benchmark's own acceptance criteria.

    ``relative_to`` turns an absolute metric into a ratio against another
    path in the same document (e.g. autoscaled p99 over the over-provisioned
    gold standard's p99) — ratios are scale-robust, so they stay comparable
    between ``BENCH_FAST`` CI runs and full-mode baselines.

    ``scale_sensitive`` marks absolute metrics whose value depends on the
    benchmark's workload scale (history size, run duration, client count).
    CI runs the benchmarks in ``BENCH_FAST=1`` mode while the committed
    baselines are full-mode, so comparing such a metric across scales is
    meaningless (and the first deterministic mismatch would permanently
    redden the build); when the file's scale marker differs between
    baseline and fresh, these metrics enforce only their hard bounds.
    """

    path: str
    direction: str
    tolerance: float
    floor: float | None = None
    ceiling: float | None = None
    scale_sensitive: bool = False
    relative_to: str | None = None

    @property
    def label(self) -> str:
        if self.relative_to is None:
            return self.path
        return f"{self.path} / {self.relative_to}"


@dataclass(frozen=True)
class FileSpec:
    """Gated metrics of one BENCH file plus its workload-scale marker."""

    metrics: tuple[Metric, ...]
    #: Dotted path whose value identifies the workload scale (e.g. the
    #: ``fast_mode`` flag or the run duration); ``None`` = always comparable.
    scale_marker: str | None = None


#: The gate: file name -> gated metrics.
GATED: dict[str, FileSpec] = {
    "BENCH_read_path.json": FileSpec(
        metrics=(
            Metric("by_reads_per_txn.16.speedup", HIGHER, 0.35, floor=1.5),
            Metric("by_reads_per_txn.64.speedup", HIGHER, 0.35, floor=1.5),
        ),
        scale_marker="workload.fast_mode",
    ),
    "BENCH_parallel_io.json": FileSpec(
        metrics=(
            Metric("pipeline_median_improvement.dynamodb", HIGHER, 0.40, floor=0.05),
            Metric("pipeline_median_improvement.s3", HIGHER, 0.40, floor=0.05),
        ),
    ),
    "BENCH_elasticity.json": FileSpec(
        metrics=(
            # Autoscaled tail latency must stay near the over-provisioned
            # gold standard (within 1.5x), while spending meaningfully fewer
            # node-seconds (< 75%).  Both are gated as ratios against the
            # static_overprovisioned run from the same file, which makes
            # them scale-robust: fast-vs-full drift is under 10%.
            Metric(
                "runs.autoscaled_ch.p99_ms",
                LOWER,
                0.25,
                ceiling=1.5,
                relative_to="runs.static_overprovisioned.p99_ms",
            ),
            Metric(
                "runs.autoscaled_ch.node_seconds",
                LOWER,
                0.30,
                ceiling=0.75,
                relative_to="runs.static_overprovisioned.node_seconds",
            ),
        ),
        scale_marker="duration",
    ),
    "BENCH_fault_manager.json": FileSpec(
        metrics=(
            # The speedups are mildly scale-dependent (per-shard base latency
            # looms larger over a smaller history), so the tolerance leaves
            # headroom for the fast-vs-full drift; the floor is the gate.
            Metric("by_shards.4.speedup_vs_singleton", HIGHER, 0.35, floor=2.0),
            Metric("by_shards.8.speedup_vs_singleton", HIGHER, 0.35, floor=2.0),
            # The watermark window is ~constant while the history scales, so
            # the fraction only compares within one scale; the ceiling IS the
            # acceptance criterion and holds at every scale.
            Metric(
                "by_shards.4.memory_fraction_of_history",
                LOWER,
                0.50,
                ceiling=0.5,
                scale_sensitive=True,
            ),
            Metric("by_shards.4.recovery_charged_s", LOWER, 0.40, scale_sensitive=True),
        ),
        scale_marker="workload.fast_mode",
    ),
    "BENCH_fault_tolerance.json": FileSpec(
        metrics=(
            Metric("recovered_fraction", HIGHER, 0.10, floor=0.85),
            Metric("recovery_breakdown.replay_s", LOWER, 0.60, scale_sensitive=True),
        ),
        scale_marker="workload.fast_mode",
    ),
    "BENCH_async_io.json": FileSpec(
        metrics=(
            # Wall-clock speedup of 16 concurrent async clients over the
            # serial sync facade.  A ratio of two same-machine wall-clock
            # rates, so it is scale-robust but noisy on shared CI runners —
            # generous tolerance; the floor IS the acceptance criterion
            # (>= 2x overlap from the async runtime).
            Metric("speedup_at_16", HIGHER, 0.60, floor=2.0),
        ),
        scale_marker="fast_mode",
    ),
    "BENCH_multicast.json": FileSpec(
        metrics=(
            # The sender-cost improvement is a pure count ratio (deliveries +
            # records on the wire), so it is scale-robust; the floor is the
            # acceptance criterion: sharded must cut the 64-node sender cost
            # by >= 3x over direct fan-out.
            Metric("by_nodes.64.pruned.sender_cost_improvement", HIGHER, 0.20, floor=3.0),
            Metric("by_nodes.64.unpruned.sender_cost_improvement", HIGHER, 0.20, floor=3.0),
            # Partitioned sweeps must never fall back to full-keyspace scans.
            Metric("partitioned_sweep.partitioned.full_listings", LOWER, 0.0, ceiling=0.0),
        ),
        scale_marker="workload.fast_mode",
    ),
    "BENCH_nemesis.json": FileSpec(
        metrics=(
            # Adversarial certification is pass/fail, not a trend: every
            # seeded fault schedule must survive both consistency checkers
            # (floor 1.0 on the survived fraction) with zero confirmed
            # anomalies (hard ceiling 0), on both runtimes.  The fractions
            # and counts are scale-robust — fast mode just runs fewer
            # schedules.
            Metric("inproc.survived_fraction", HIGHER, 0.0, floor=1.0),
            Metric("inproc.anomalies", LOWER, 0.0, ceiling=0.0),
            Metric("sockets.survived_fraction", HIGHER, 0.0, floor=1.0),
            Metric("sockets.anomalies", LOWER, 0.0, ceiling=0.0),
        ),
        scale_marker="workload.fast_mode",
    ),
    "BENCH_rpc.json": FileSpec(
        metrics=(
            # Storage wire round trips per committed txn, JSON-unbatched
            # over binary-batched.  A pure frame-count ratio, so it is
            # scale-robust; the floor IS the PR's acceptance criterion
            # (batching must at least halve the round trips).
            Metric("round_trip_improvement", HIGHER, 0.30, floor=2.0),
            # Codec wall-clock ratio on a payload-heavy batch frame: a
            # same-machine ratio (noisy on shared runners), the floor says
            # the binary codec must clearly beat JSON+base64.
            Metric("codec.codec_speedup", HIGHER, 0.50, floor=1.5),
            # Frame-size ratio is deterministic (base64 inflation removed).
            Metric("codec.frame_size_ratio", HIGHER, 0.10, floor=1.2),
        ),
        scale_marker="fast_mode",
    ),
    "BENCH_real_cluster.json": FileSpec(
        metrics=(
            # The real multi-process cluster must sustain the offered
            # open-loop Poisson load.  Gated as the achieved/offered ratio,
            # which is scale-robust (fast mode offers less); the floor is
            # the bench's own acceptance criterion (>= 50% of offered).
            Metric("achieved_tps", HIGHER, 0.30, floor=0.5, relative_to="offered_tps"),
            # Read atomicity on the real transport: the Table-2 checker must
            # report zero anomalies across the whole swarm.  The ceiling IS
            # the paper's acceptance criterion at every scale.
            Metric("anomalies.fractured_read_anomalies", LOWER, 0.0, ceiling=0.0),
            Metric("anomalies.ryw_anomalies", LOWER, 0.0, ceiling=0.0),
            # Every arrival must commit: failed sessions mean the router or
            # a node dropped transactions under load.
            Metric("failed", LOWER, 0.0, ceiling=0.0),
        ),
        scale_marker="fast_mode",
    ),
    "BENCH_observability.json": FileSpec(
        metrics=(
            # Tracing disabled must be free on the rpc hot path: the guard
            # is a couple of ns per call site.  The ceiling IS the PR's
            # acceptance criterion (<= 3% overhead).
            Metric("overhead.tracing_off_slowdown_x", LOWER, 0.02, ceiling=1.03),
            # Tracing enabled pays ~13 spans/txn of real work; a CPU-ratio
            # on a shared runner, so generous tolerance, but the ceiling IS
            # the acceptance criterion (<= 15% overhead).
            Metric("overhead.tracing_on_slowdown_x", LOWER, 0.10, ceiling=1.15),
            # Every instrumented layer must keep reporting: spans per txn
            # dropping below 8 means a subsystem went dark.
            Metric("completeness.spans_per_txn", HIGHER, 0.30, floor=8.0),
            # Every span in a txn trace must reach its client root — the
            # wire context either propagated everywhere or the trace is
            # broken.
            Metric("completeness.connected_fraction", HIGHER, 0.0, floor=1.0),
        ),
        scale_marker="fast_mode",
    ),
}


def resolve(document: dict, path: str):
    """Walk a dotted path; returns None when any segment is missing."""
    node = document
    for segment in path.split("."):
        if not isinstance(node, dict) or segment not in node:
            return None
        node = node[segment]
    return node


def resolve_metric(document: dict, metric: Metric) -> float | None:
    """A metric's value in ``document``: the path itself, or the ratio
    against ``relative_to``.  None when missing or non-numeric."""
    value = resolve(document, metric.path)
    if not isinstance(value, (int, float)):
        return None
    if metric.relative_to is None:
        return float(value)
    denominator = resolve(document, metric.relative_to)
    if not isinstance(denominator, (int, float)) or denominator == 0:
        return None
    return float(value) / float(denominator)


@dataclass
class Row:
    file: str
    metric: str
    baseline: float | None
    fresh: float | None
    status: str
    detail: str

    @property
    def failed(self) -> bool:
        return self.status == "FAIL"


def check_metric(
    file_name: str,
    metric: Metric,
    fresh_doc: dict,
    baseline_doc: dict | None,
    same_scale: bool,
) -> Row:
    label = metric.label
    fresh = resolve_metric(fresh_doc, metric)
    if fresh is None:
        return Row(file_name, label, None, None, "FAIL", "metric missing from fresh results")
    baseline = resolve_metric(baseline_doc, metric) if baseline_doc is not None else None

    if metric.floor is not None and fresh < metric.floor:
        return Row(file_name, label, baseline, fresh, "FAIL", f"below hard floor {metric.floor}")
    if metric.ceiling is not None and fresh > metric.ceiling:
        return Row(file_name, label, baseline, fresh, "FAIL", f"above hard ceiling {metric.ceiling}")

    if baseline is None:
        return Row(file_name, label, None, fresh, "NEW", "no baseline; hard bounds only")
    if metric.scale_sensitive and not same_scale:
        return Row(
            file_name,
            label,
            baseline,
            fresh,
            "SCALE",
            "baseline produced at a different workload scale; hard bounds only",
        )

    if metric.direction == HIGHER:
        limit = baseline * (1.0 - metric.tolerance)
        ok = fresh >= limit
        drift = (fresh - baseline) / baseline if baseline else 0.0
    else:
        limit = baseline * (1.0 + metric.tolerance)
        ok = fresh <= limit
        drift = (fresh - baseline) / baseline if baseline else 0.0
    detail = f"{drift:+.1%} vs baseline (tolerance ±{metric.tolerance:.0%}, better={metric.direction})"
    return Row(file_name, label, baseline, fresh, "OK" if ok else "FAIL", detail)


def format_value(value: float | None) -> str:
    if value is None:
        return "—"
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def render_markdown(rows: list[Row]) -> str:
    icon = {"OK": "✅", "FAIL": "❌", "NEW": "🆕", "SKIP": "⏭️", "SCALE": "⚖️"}
    lines = [
        "## Benchmark perf-trend gate",
        "",
        "| file | metric | baseline | fresh | status | detail |",
        "|------|--------|----------|-------|--------|--------|",
    ]
    for row in rows:
        lines.append(
            f"| {row.file} | `{row.metric}` | {format_value(row.baseline)} | "
            f"{format_value(row.fresh)} | {icon.get(row.status, row.status)} {row.status} | {row.detail} |"
        )
    failed = sum(row.failed for row in rows)
    lines.append("")
    lines.append(
        f"**{failed} regression(s)** across {len(rows)} gated metric(s)."
        if failed
        else f"All {len(rows)} gated metric(s) within tolerance."
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=Path("benchmarks/results"),
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("benchmarks/results"),
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="file to append the markdown comparison table to ($GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    rows: list[Row] = []
    for file_name, spec in sorted(GATED.items()):
        fresh_path = args.results_dir / file_name
        if not fresh_path.exists():
            rows.append(Row(file_name, "*", None, None, "SKIP", "benchmark did not run in this job"))
            continue
        fresh_doc = json.loads(fresh_path.read_text(encoding="utf-8"))
        baseline_path = args.baseline_dir / file_name
        baseline_doc = (
            json.loads(baseline_path.read_text(encoding="utf-8")) if baseline_path.exists() else None
        )
        same_scale = True
        if spec.scale_marker is not None and baseline_doc is not None:
            same_scale = resolve(fresh_doc, spec.scale_marker) == resolve(
                baseline_doc, spec.scale_marker
            )
        for metric in spec.metrics:
            rows.append(check_metric(file_name, metric, fresh_doc, baseline_doc, same_scale))

    table = render_markdown(rows)
    print(table)
    if args.summary is not None:
        with args.summary.open("a", encoding="utf-8") as handle:
            handle.write(table + "\n")

    return 1 if any(row.failed for row in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
