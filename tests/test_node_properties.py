"""Property-based tests of the node-level isolation guarantees.

These tests drive an AFT node (or several nodes over shared storage) with
randomly interleaved transactions and check the paper's invariants directly:

* every transaction's read set is an Atomic Readset (Definition 1),
* reads only ever observe committed data (no dirty reads),
* read-your-writes and repeatable-read hold within a transaction.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.node import AftNode
from repro.core.read_protocol import is_atomic_readset
from repro.storage.memory import InMemoryStorage

KEYS = ["a", "b", "c", "d"]


def build_node() -> AftNode:
    node = AftNode(
        InMemoryStorage(),
        config=AftConfig(),
        clock=LogicalClock(start=0.0, auto_step=0.001),
        node_id="property-node",
    )
    node.start()
    return node


# A step is (client_index, operation, key); operations on a client's open
# transaction.  Commits/aborts close it; the next step for that client opens a
# fresh transaction.
step_strategy = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["read", "write", "commit", "abort"]),
    st.sampled_from(KEYS),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(step_strategy, min_size=1, max_size=60))
def test_interleaved_transactions_preserve_read_atomicity(steps):
    node = build_node()
    open_transactions: dict[int, str] = {}
    payload_counter = 0

    def txn_for(client: int) -> str:
        if client not in open_transactions:
            open_transactions[client] = node.start_transaction()
        return open_transactions[client]

    for client, operation, key in steps:
        txid = txn_for(client)
        if operation == "read":
            node.get(txid, key)
        elif operation == "write":
            payload_counter += 1
            node.put(txid, key, f"value-{payload_counter}".encode())
        elif operation == "commit":
            node.commit_transaction(txid)
            del open_transactions[client]
        else:
            node.abort_transaction(txid)
            del open_transactions[client]

        # Invariant: every running transaction's read set stays atomic, and
        # every version it observed belongs to a committed transaction.
        for transaction in node.active_transactions():
            assert is_atomic_readset(transaction.read_set, node.metadata_cache)
            for version in transaction.read_set.values():
                assert version in node.metadata_cache


@settings(max_examples=30, deadline=None)
@given(st.lists(step_strategy, min_size=1, max_size=40))
def test_multi_node_interleavings_preserve_read_atomicity(steps):
    storage = InMemoryStorage()
    clock = LogicalClock(start=0.0, auto_step=0.001)
    nodes = []
    for index in range(2):
        node = AftNode(storage, clock=clock, node_id=f"n{index}")
        node.start()
        nodes.append(node)

    from repro.core.multicast import MulticastService

    multicast = MulticastService()
    for node in nodes:
        multicast.register_node(node)

    open_transactions: dict[int, tuple[AftNode, str]] = {}
    payload_counter = 0

    for step_index, (client, operation, key) in enumerate(steps):
        if client not in open_transactions:
            node = nodes[client % len(nodes)]
            open_transactions[client] = (node, node.start_transaction())
        node, txid = open_transactions[client]

        if operation == "read":
            node.get(txid, key)
        elif operation == "write":
            payload_counter += 1
            node.put(txid, key, f"value-{payload_counter}".encode())
        elif operation == "commit":
            node.commit_transaction(txid)
            del open_transactions[client]
        else:
            node.abort_transaction(txid)
            del open_transactions[client]

        # Periodically exchange commit metadata, as the background thread would.
        if step_index % 5 == 4:
            multicast.run_once()

        for current in nodes:
            for transaction in current.active_transactions():
                assert is_atomic_readset(transaction.read_set, current.metadata_cache)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["read", "write"]), st.sampled_from(KEYS)),
        min_size=2,
        max_size=20,
    )
)
def test_read_your_writes_and_repeatable_read_within_one_transaction(operations):
    node = build_node()
    # Commit some initial versions so reads have something to observe.
    for key in KEYS:
        setup = node.start_transaction()
        node.put(setup, key, f"initial-{key}".encode())
        node.commit_transaction(setup)

    txid = node.start_transaction()
    written: dict[str, bytes] = {}
    first_observation: dict[str, bytes | None] = {}
    counter = 0

    for operation, key in operations:
        if operation == "write":
            counter += 1
            value = f"mine-{counter}".encode()
            node.put(txid, key, value)
            written[key] = value
        else:
            observed = node.get(txid, key)
            if key in written:
                # Read-your-writes: the most recent own write wins.
                assert observed == written[key]
            elif key in first_observation:
                # Repeatable read: the same version every time.
                assert observed == first_observation[key]
            else:
                first_observation[key] = observed
