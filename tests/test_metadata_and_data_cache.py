"""Tests for the committed-transaction metadata cache and the data cache."""

from __future__ import annotations

from repro.core.commit_set import CommitRecord
from repro.core.data_cache import DataCache
from repro.core.metadata_cache import CommitSetCache
from repro.ids import TransactionId, data_key


def record(n: float, keys: list[str], uuid: str = "") -> CommitRecord:
    txid = TransactionId(float(n), uuid or f"u{n}")
    return CommitRecord(txid=txid, write_set={key: data_key(key, txid) for key in keys})


class TestCommitSetCache:
    def test_add_indexes_versions(self):
        cache = CommitSetCache()
        rec = record(1, ["k", "l"])
        assert cache.add(rec) is True
        assert cache.version_index.latest("k") == rec.txid
        assert cache.cowritten(rec.txid) == frozenset({"k", "l"})
        assert rec.txid in cache
        assert len(cache) == 1

    def test_duplicate_add_returns_false(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        assert cache.add(rec) is False
        assert len(cache) == 1

    def test_add_many_counts_new_records(self):
        cache = CommitSetCache()
        records = [record(1, ["a"]), record(2, ["b"]), record(1, ["a"])]
        assert cache.add_many(records) == 2

    def test_remove_marks_locally_deleted_and_unindexes(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        removed = cache.remove(rec.txid)
        assert removed is rec
        assert rec.txid not in cache
        assert cache.was_locally_deleted(rec.txid)
        assert cache.version_index.latest("k") is None

    def test_removed_records_are_not_readded(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        cache.remove(rec.txid)
        assert cache.add(rec) is False

    def test_forget_deleted_allows_cleanup(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        cache.remove(rec.txid)
        cache.forget_deleted([rec.txid])
        assert not cache.was_locally_deleted(rec.txid)

    def test_cowritten_of_unknown_transaction_is_empty(self):
        cache = CommitSetCache()
        assert cache.cowritten(TransactionId(9.0, "missing")) == frozenset()

    def test_iter_records_oldest_first(self):
        cache = CommitSetCache()
        newer, older = record(5, ["a"]), record(2, ["b"])
        cache.add(newer)
        cache.add(older)
        ordered = list(cache.iter_records_oldest_first())
        assert [rec.txid for rec in ordered] == [older.txid, newer.txid]

    def test_clear(self):
        cache = CommitSetCache()
        cache.add(record(1, ["k"]))
        cache.clear()
        assert len(cache) == 0
        assert cache.locally_deleted() == set()


class TestDataCache:
    def test_miss_then_hit(self):
        cache = DataCache(capacity_bytes=1024)
        txid = TransactionId(1.0, "u")
        assert cache.get("k", txid) is None
        cache.put("k", txid, b"value")
        assert cache.get("k", txid) == b"value"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_by_bytes(self):
        cache = DataCache(capacity_bytes=10)
        a, b, c = TransactionId(1.0, "a"), TransactionId(2.0, "b"), TransactionId(3.0, "c")
        cache.put("k1", a, b"aaaa")
        cache.put("k2", b, b"bbbb")
        # Touch k1 so k2 becomes the least recently used entry.
        cache.get("k1", a)
        cache.put("k3", c, b"cccc")
        assert cache.get("k1", a) == b"aaaa"
        assert cache.get("k2", b) is None
        assert cache.evictions >= 1

    def test_oversized_values_are_not_cached(self):
        cache = DataCache(capacity_bytes=4)
        cache.put("k", TransactionId(1.0, "u"), b"too-large")
        assert len(cache) == 0

    def test_zero_capacity_disables_caching(self):
        cache = DataCache(capacity_bytes=0)
        cache.put("k", TransactionId(1.0, "u"), b"v")
        assert cache.get("k", TransactionId(1.0, "u")) is None

    def test_replacing_an_entry_updates_size(self):
        cache = DataCache(capacity_bytes=100)
        txid = TransactionId(1.0, "u")
        cache.put("k", txid, b"aaaa")
        cache.put("k", txid, b"bb")
        assert cache.size_bytes == 2
        assert len(cache) == 1

    def test_invalidate_transaction(self):
        cache = DataCache(capacity_bytes=100)
        txid = TransactionId(1.0, "u")
        cache.put("k", txid, b"1")
        cache.put("l", txid, b"2")
        cache.invalidate_transaction(["k", "l"], txid)
        assert len(cache) == 0

    def test_different_versions_of_same_key_coexist(self):
        cache = DataCache(capacity_bytes=100)
        v1, v2 = TransactionId(1.0, "a"), TransactionId(2.0, "b")
        cache.put("k", v1, b"old")
        cache.put("k", v2, b"new")
        assert cache.get("k", v1) == b"old"
        assert cache.get("k", v2) == b"new"

    def test_negative_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            DataCache(capacity_bytes=-1)
