"""Tests for the committed-transaction metadata cache and the data cache."""

from __future__ import annotations

import threading

from repro.core.commit_set import CommitRecord
from repro.core.data_cache import DataCache
from repro.core.metadata_cache import CommitSetCache
from repro.core.read_protocol import TrackedReadSet, atomic_read
from repro.ids import TransactionId, data_key


def record(n: float, keys: list[str], uuid: str = "") -> CommitRecord:
    txid = TransactionId(float(n), uuid or f"u{n}")
    return CommitRecord(txid=txid, write_set={key: data_key(key, txid) for key in keys})


class CountingLock:
    """RLock test double that counts every acquisition (context or explicit)."""

    def __init__(self) -> None:
        self._inner = threading.RLock()
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self._inner.__enter__()

    def __exit__(self, *exc):
        return self._inner.__exit__(*exc)

    def acquire(self, *args, **kwargs):
        self.acquisitions += 1
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        return self._inner.release()


class TestCommitSetCache:
    def test_add_indexes_versions(self):
        cache = CommitSetCache()
        rec = record(1, ["k", "l"])
        assert cache.add(rec) is True
        assert cache.version_index.latest("k") == rec.txid
        assert cache.cowritten(rec.txid) == frozenset({"k", "l"})
        assert rec.txid in cache
        assert len(cache) == 1

    def test_duplicate_add_returns_false(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        assert cache.add(rec) is False
        assert len(cache) == 1

    def test_add_many_counts_new_records(self):
        cache = CommitSetCache()
        records = [record(1, ["a"]), record(2, ["b"]), record(1, ["a"])]
        assert cache.add_many(records) == 2

    def test_remove_marks_locally_deleted_and_unindexes(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        removed = cache.remove(rec.txid)
        assert removed is rec
        assert rec.txid not in cache
        assert cache.was_locally_deleted(rec.txid)
        assert cache.version_index.latest("k") is None

    def test_removed_records_are_not_readded(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        cache.remove(rec.txid)
        assert cache.add(rec) is False

    def test_forget_deleted_allows_cleanup(self):
        cache = CommitSetCache()
        rec = record(1, ["k"])
        cache.add(rec)
        cache.remove(rec.txid)
        cache.forget_deleted([rec.txid])
        assert not cache.was_locally_deleted(rec.txid)

    def test_cowritten_of_unknown_transaction_is_empty(self):
        cache = CommitSetCache()
        assert cache.cowritten(TransactionId(9.0, "missing")) == frozenset()

    def test_iter_records_oldest_first(self):
        cache = CommitSetCache()
        newer, older = record(5, ["a"]), record(2, ["b"])
        cache.add(newer)
        cache.add(older)
        ordered = list(cache.iter_records_oldest_first())
        assert [rec.txid for rec in ordered] == [older.txid, newer.txid]

    def test_clear(self):
        cache = CommitSetCache()
        cache.add(record(1, ["k"]))
        cache.clear()
        assert len(cache) == 0
        assert cache.locally_deleted() == set()

    def test_sweep_records_resumes_from_cursor(self):
        cache = CommitSetCache()
        records = [record(n, ["k"]) for n in range(1, 6)]
        for rec in records:
            cache.add(rec)
        first, cursor = cache.sweep_records(None, 2)
        assert [r.txid for r in first] == [records[0].txid, records[1].txid]
        assert cursor == records[1].txid
        rest, cursor = cache.sweep_records(cursor, 10)
        assert [r.txid for r in rest] == [r.txid for r in records[2:]]
        assert cursor is None, "short batch signals the end of the log"

    def test_cowritten_sets_are_interned(self):
        cache = CommitSetCache()
        a = record(1, ["k", "l"], uuid="a")
        b = record(2, ["k", "l"], uuid="b")
        cache.add(a)
        cache.add(b)
        assert a.cowritten is b.cowritten, "identical write sets share one frozenset"


class TestMetadataSnapshot:
    def test_snapshot_is_stable_while_writers_publish(self):
        cache = CommitSetCache()
        old = record(1, ["k"])
        cache.add(old)
        snap = cache.snapshot()
        new = record(2, ["k"])
        cache.add(new)
        cache.remove(old.txid)
        # The held snapshot still answers from its epoch...
        assert snap.get(old.txid) is old
        assert new.txid not in snap
        assert snap.version_index.versions("k") == (old.txid,)
        # ...while the cache has moved on.
        assert cache.get(old.txid) is None
        assert cache.snapshot().epoch > snap.epoch

    def test_snapshot_index_and_records_are_consistent(self):
        cache = CommitSetCache()
        for n in range(1, 10):
            cache.add(record(n, ["k", f"x{n}"]))
        for txid in list(cache.transaction_ids())[:4]:
            cache.remove(txid)
        snap = cache.snapshot()
        for txid in snap.version_index.versions("k"):
            assert snap.get(txid) is not None

    def test_compaction_preserves_answers(self):
        cache = CommitSetCache()
        records = [record(n, [f"k{n % 7}"]) for n in range(3 * CommitSetCache.COMPACT_DELTA_ENTRIES)]
        for rec in records:
            cache.add(rec)
        removed = records[::5]
        for rec in removed:
            cache.remove(rec.txid)
        snap = cache.snapshot()
        removed_ids = {rec.txid for rec in removed}
        for rec in records:
            if rec.txid in removed_ids:
                assert snap.get(rec.txid) is None
            else:
                assert snap.get(rec.txid) is rec
        assert len(snap) == len(records) - len(removed)

    def test_atomic_read_acquires_zero_locks(self):
        """Acceptance: the no-contention read path never touches the cache lock."""
        cache = CommitSetCache()
        for n in range(1, 20):
            cache.add(record(n, ["k", "l", f"x{n % 3}"]))
        counting = CountingLock()
        cache._lock = counting

        tracked = TrackedReadSet()
        for key in ("k", "l", "x0", "k"):
            decision = atomic_read(key, tracked, cache)
            if decision.target is not None and key not in tracked:
                tracked.observe(key, decision.target, cache.cowritten(decision.target))
        assert counting.acquisitions == 0

        # Ancillary read-path queries are lock-free too...
        cache.get(record(1, ["k"]).txid)
        cache.cowritten(record(1, ["k"]).txid)
        _ = cache.version_index
        _ = len(cache)
        assert counting.acquisitions == 0
        # ...and the double actually counts: a write takes the lock.
        cache.add(record(99, ["k"]))
        assert counting.acquisitions > 0

    def test_concurrent_readers_never_see_torn_index(self):
        """Reader threads running Algorithm 1 while a writer commits and GCs
        must never find a version in the index whose record is absent."""
        cache = CommitSetCache()
        keys = [f"key-{i}" for i in range(8)]
        stop = threading.Event()
        failures: list[str] = []

        def reader() -> None:
            tracked = TrackedReadSet()
            while not stop.is_set():
                snap = cache.snapshot()
                for key in keys:
                    for txid in snap.version_index.versions(key):
                        if snap.get(txid) is None:
                            failures.append(f"{key}@{txid} in index but record missing")
                            return
                    decision = atomic_read(key, tracked, snap)
                    if decision.target is not None:
                        if snap.get(decision.target) is None:
                            failures.append(f"decision target {decision.target} has no record")
                            return
                        if key not in tracked:
                            tracked.observe(key, decision.target, snap.cowritten(decision.target))

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            live: list[CommitRecord] = []
            for n in range(2000):
                rec = record(n, [keys[n % len(keys)], keys[(n + 3) % len(keys)]])
                cache.add(rec)
                live.append(rec)
                # Emulate the local GC: drop superseded records in bursts.
                if n % 7 == 0 and len(live) > 20:
                    victim = live.pop(0)
                    cache.remove(victim.txid, mark_deleted=True)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not failures, failures
    def test_miss_then_hit(self):
        cache = DataCache(capacity_bytes=1024)
        txid = TransactionId(1.0, "u")
        assert cache.get("k", txid) is None
        cache.put("k", txid, b"value")
        assert cache.get("k", txid) == b"value"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_by_bytes(self):
        cache = DataCache(capacity_bytes=10)
        a, b, c = TransactionId(1.0, "a"), TransactionId(2.0, "b"), TransactionId(3.0, "c")
        cache.put("k1", a, b"aaaa")
        cache.put("k2", b, b"bbbb")
        # Touch k1 so k2 becomes the least recently used entry.
        cache.get("k1", a)
        cache.put("k3", c, b"cccc")
        assert cache.get("k1", a) == b"aaaa"
        assert cache.get("k2", b) is None
        assert cache.evictions >= 1

    def test_oversized_values_are_not_cached(self):
        cache = DataCache(capacity_bytes=4)
        cache.put("k", TransactionId(1.0, "u"), b"too-large")
        assert len(cache) == 0

    def test_zero_capacity_disables_caching(self):
        cache = DataCache(capacity_bytes=0)
        cache.put("k", TransactionId(1.0, "u"), b"v")
        assert cache.get("k", TransactionId(1.0, "u")) is None

    def test_replacing_an_entry_updates_size(self):
        cache = DataCache(capacity_bytes=100)
        txid = TransactionId(1.0, "u")
        cache.put("k", txid, b"aaaa")
        cache.put("k", txid, b"bb")
        assert cache.size_bytes == 2
        assert len(cache) == 1

    def test_invalidate_transaction(self):
        cache = DataCache(capacity_bytes=100)
        txid = TransactionId(1.0, "u")
        cache.put("k", txid, b"1")
        cache.put("l", txid, b"2")
        cache.invalidate_transaction(["k", "l"], txid)
        assert len(cache) == 0

    def test_different_versions_of_same_key_coexist(self):
        cache = DataCache(capacity_bytes=100)
        v1, v2 = TransactionId(1.0, "a"), TransactionId(2.0, "b")
        cache.put("k", v1, b"old")
        cache.put("k", v2, b"new")
        assert cache.get("k", v1) == b"old"
        assert cache.get("k", v2) == b"new"

    def test_negative_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            DataCache(capacity_bytes=-1)
