"""Frame codec tests: the JSON and binary wires are interchangeable.

The contract the distributed runtime's negotiation rests on:

* **Codec oracle** — for *every* registered message type, arbitrary
  instances decode identically through the JSON frame codec and the hybrid
  binary frame codec (hypothesis-driven, bulk bytes included);
* frames are **sniffed** per frame, so one connection can carry both
  formats (that is what makes the fallback safe mid-conversation);
* ``MAX_FRAME_BYTES`` is enforced on the **send** side with a clear local
  exception, not just by the peer;
* ``storage_batch`` op groups round-trip with per-op payloads and per-op
  errors intact;
* the send queue coalesces frames queued during an in-flight ``drain``.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import errors
from repro.rpc import framing, messages as m
from repro.rpc.framing import (
    FORMAT_BINARY,
    FORMAT_JSON,
    FrameTooLargeError,
    RpcConnection,
    decode_frame,
    frame_bytes,
)
from repro.storage.base import StorageOp, StorageOpResult

# --------------------------------------------------------------------- #
# The JSON <-> binary codec oracle
# --------------------------------------------------------------------- #
_KEYS = st.text(max_size=12)
_BLOB = st.binary(max_size=128)


@st.composite
def _message(draw, cls):
    """An arbitrary instance of one wire-message dataclass.

    Field strategies are inferred from each field's default value — the
    schema rule that every field defaults (tested in test_rpc_messages)
    makes this total.
    """
    kwargs = {}
    for f in dataclasses.fields(cls):
        default = f.default if f.default is not dataclasses.MISSING else f.default_factory()
        if f.name in cls.BYTES_MAP_FIELDS:
            kwargs[f.name] = draw(
                st.dictionaries(_KEYS, st.one_of(st.none(), _BLOB), max_size=4)
            )
        elif f.name in cls.BYTES_LIST_FIELDS:
            kwargs[f.name] = draw(st.lists(_BLOB, max_size=4))
        elif isinstance(default, bool):
            kwargs[f.name] = draw(st.booleans())
        elif isinstance(default, int):
            kwargs[f.name] = draw(st.integers(min_value=0, max_value=2**31))
        elif isinstance(default, float):
            kwargs[f.name] = draw(
                st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)
            )
        elif isinstance(default, str):
            kwargs[f.name] = draw(st.text(max_size=16))
        elif isinstance(default, list):
            kwargs[f.name] = draw(st.lists(st.text(max_size=8), max_size=4))
        elif isinstance(default, dict):
            kwargs[f.name] = draw(
                st.dictionaries(_KEYS, st.integers(min_value=0, max_value=999), max_size=3)
            )
        else:  # pragma: no cover - new field kinds must be added here
            raise AssertionError(f"no strategy for {cls.TYPE}.{f.name} (default {default!r})")
    return cls(**kwargs)


def _round_trip(message: m.WireMessage, wire_format: str) -> m.WireMessage:
    """Encode through one full frame codec (length prefix included) and back."""
    msg_type, version, body = m.encode_body(message)
    data = frame_bytes({"id": 1, "type": msg_type, "v": version, "body": body}, wire_format)
    envelope = decode_frame(data[4:])
    return m.decode_body(envelope["type"], envelope["v"], envelope["body"])


@pytest.mark.parametrize("cls", sorted(m.MESSAGE_TYPES.values(), key=lambda c: c.TYPE), ids=lambda c: c.TYPE)
class TestCodecOracle:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_json_and_binary_decode_identically(self, cls, data):
        message = data.draw(_message(cls))
        via_json = _round_trip(message, FORMAT_JSON)
        via_binary = _round_trip(message, FORMAT_BINARY)
        assert via_json == message
        assert via_binary == message
        assert via_json == via_binary


class TestFrameSniffing:
    def test_formats_are_distinguished_per_frame(self):
        message = m.StorageRequest(op="multi_put", items={"k": b"\x00\x01raw", "gone": None})
        msg_type, version, body = m.encode_body(message)
        envelope = {"id": 3, "type": msg_type, "v": version, "body": body}
        json_frame = frame_bytes(envelope, FORMAT_JSON)
        binary_frame = frame_bytes(envelope, FORMAT_BINARY)
        assert json_frame[4:5] == b"{"
        assert binary_frame[4:5] == b"\x01"
        for frame in (json_frame, binary_frame):
            decoded = decode_frame(frame[4:])
            assert decoded["id"] == 3
            assert decoded["body"]["items"] == {"k": b"\x00\x01raw", "gone": None}

    def test_binary_payload_is_raw_not_base64(self):
        blob = bytes(range(256)) * 8
        message = m.StorageResponse(values={"key": blob})
        msg_type, version, body = m.encode_body(message)
        frame = frame_bytes({"re": 1, "type": msg_type, "v": version, "body": body}, FORMAT_BINARY)
        assert blob in frame  # verbatim bytes, no inflation
        json_frame = frame_bytes(
            {"re": 1, "type": msg_type, "v": version, "body": body}, FORMAT_JSON
        )
        assert blob not in json_frame
        assert len(frame) < len(json_frame)

    def test_error_reply_envelope_has_no_body(self):
        envelope = {"re": 9, "error": m.error_to_wire(errors.FencedNodeError("stale epoch"))}
        for wire_format in (FORMAT_JSON, FORMAT_BINARY):
            decoded = decode_frame(frame_bytes(envelope, wire_format)[4:])
            assert decoded["re"] == 9
            assert decoded["error"]["kind"] == "fenced"


class TestSendSideLimit:
    def test_oversized_outgoing_frame_is_rejected_locally(self, monkeypatch):
        monkeypatch.setattr(framing, "MAX_FRAME_BYTES", 512)
        message = m.StorageRequest(op="put", items={"k": b"x" * 4096})
        msg_type, version, body = m.encode_body(message)
        envelope = {"id": 1, "type": msg_type, "v": version, "body": body}
        for wire_format in (FORMAT_JSON, FORMAT_BINARY):
            with pytest.raises(FrameTooLargeError, match="exceeds the 512-byte limit"):
                frame_bytes(envelope, wire_format)

    def test_frames_under_the_limit_pass(self):
        message = m.Heartbeat(node_id="n0")
        msg_type, version, body = m.encode_body(message)
        assert frame_bytes({"type": msg_type, "v": version, "body": body}, FORMAT_BINARY)


class TestStorageOpBatchCodec:
    def test_ops_round_trip_with_payloads(self):
        ops = [
            StorageOp(op="multi_put", keys=("a", "b"), items={"a": b"1", "b": b"22"}),
            StorageOp(op="get", keys=("c",)),
            StorageOp(op="multi_delete", keys=("d", "e")),
            StorageOp(op="list", prefix="aft.commit"),
        ]
        back = m.decode_storage_ops(m.encode_storage_ops(ops))
        assert back == ops

    def test_results_round_trip_with_per_op_errors(self):
        results = [
            StorageOpResult(values={"a": b"1", "missing": None}),
            StorageOpResult(error=errors.FencedNodeError("stale epoch 3")),
            StorageOpResult(keys=["k1", "k2"]),
            StorageOpResult(),
        ]
        back = m.decode_storage_results(m.encode_storage_results(results))
        assert back[0].values == {"a": b"1", "missing": None}
        assert isinstance(back[1].error, errors.FencedNodeError)
        assert "stale epoch 3" in str(back[1].error)
        assert back[2].keys == ["k1", "k2"]
        assert back[3].values is None and back[3].error is None

    def test_batch_frames_survive_both_wires(self):
        ops = [StorageOp(op="put", keys=("k",), items={"k": b"\xff" * 32})]
        batch = m.encode_storage_ops(ops)
        msg_type, version, body = m.encode_body(batch)
        for wire_format in (FORMAT_JSON, FORMAT_BINARY):
            frame = frame_bytes({"id": 1, "type": msg_type, "v": version, "body": body}, wire_format)
            envelope = decode_frame(frame[4:])
            decoded = m.decode_body(envelope["type"], envelope["v"], envelope["body"])
            assert m.decode_storage_ops(decoded) == ops


class _FakeWriter:
    """StreamWriter stand-in: records writes, drains slowly."""

    def __init__(self) -> None:
        self.writes: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.writes.append(data)

    async def drain(self) -> None:
        await asyncio.sleep(0.001)

    def get_extra_info(self, name):
        return None

    def close(self) -> None:
        pass

    async def wait_closed(self) -> None:
        pass


class TestWriterCoalescing:
    def test_frames_queued_during_drain_share_one_write(self):
        async def scenario():
            writer = _FakeWriter()
            conn = RpcConnection(asyncio.StreamReader(), writer)
            await asyncio.gather(
                *(conn.notify(m.Heartbeat(node_id=f"n{i}")) for i in range(10))
            )
            return writer, conn

        writer, conn = asyncio.run(scenario())
        assert conn.stats.frames_sent == 10
        # The first frame flushes alone; everything queued during its drain
        # goes out in (at most a couple of) combined writes.
        assert conn.stats.drains < 10
        assert len(writer.writes) == conn.stats.drains
        assert sum(len(chunk) for chunk in writer.writes) == conn.stats.bytes_sent

    def test_counters_track_both_directions(self):
        async def scenario():
            server_conns = []

            async def handler(conn, msg):
                return m.Ok()

            async def accept(reader, writer):
                conn = RpcConnection(reader, writer, handler=handler, name="server")
                conn.start()
                server_conns.append(conn)

            server = await asyncio.start_server(accept, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            conn = await framing.connect("127.0.0.1", port, name="client")
            conn.wire_format = FORMAT_BINARY
            for _ in range(3):
                await conn.request(m.Info(), timeout=5.0)
            stats = conn.stats
            await conn.close()
            server.close()
            await server.wait_closed()
            return stats

        stats = asyncio.run(scenario())
        assert stats.frames_sent == 3 and stats.frames_received == 3
        assert stats.bytes_sent > 0 and stats.bytes_received > 0
