"""Tests for transaction ids and storage key naming."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.clock import CounterClock, LogicalClock
from repro.ids import (
    NULL_TRANSACTION_ID,
    TransactionId,
    TransactionIdGenerator,
    commit_record_key,
    data_key,
    is_commit_record_key,
    is_data_key,
    new_uuid,
    parse_commit_record_key,
    parse_data_key,
    validate_user_key,
)


class TestTransactionIdOrdering:
    def test_orders_by_timestamp_first(self):
        earlier = TransactionId(1.0, "zzz")
        later = TransactionId(2.0, "aaa")
        assert earlier < later
        assert later > earlier

    def test_breaks_ties_with_uuid(self):
        a = TransactionId(1.0, "aaa")
        b = TransactionId(1.0, "bbb")
        assert a < b

    def test_equality_and_hashing(self):
        a = TransactionId(1.0, "aaa")
        b = TransactionId(1.0, "aaa")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_null_id_is_older_than_everything(self):
        assert NULL_TRANSACTION_ID < TransactionId(-1e9, "a")

    @given(
        st.tuples(st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=8)),
        st.tuples(st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=8)),
    )
    def test_ordering_is_total_and_consistent(self, first, second):
        a = TransactionId(*first)
        b = TransactionId(*second)
        assert (a < b) + (b < a) + (a == b) == 1

    @given(st.floats(allow_nan=False, allow_infinity=False), st.text(min_size=1, max_size=32))
    def test_token_round_trip(self, timestamp, uuid):
        # Tokens use '|' as a separator, so uuids may not contain it.
        uuid = uuid.replace("|", "_")
        txid = TransactionId(timestamp, uuid)
        assert TransactionId.from_token(txid.to_token()) == txid


class TestKeyNaming:
    def test_data_key_round_trip(self):
        txid = TransactionId(12.5, new_uuid())
        storage_key = data_key("cart", txid)
        assert is_data_key(storage_key)
        user_key, parsed = parse_data_key(storage_key)
        assert user_key == "cart"
        assert parsed == txid

    def test_commit_record_key_round_trip(self):
        txid = TransactionId(3.25, new_uuid())
        storage_key = commit_record_key(txid)
        assert is_commit_record_key(storage_key)
        assert parse_commit_record_key(storage_key) == txid

    def test_data_and_commit_prefixes_are_disjoint(self):
        txid = TransactionId(1.0, "u")
        assert not is_commit_record_key(data_key("k", txid))
        assert not is_data_key(commit_record_key(txid))

    def test_parse_rejects_foreign_keys(self):
        with pytest.raises(ValueError):
            parse_data_key("some-user-key")
        with pytest.raises(ValueError):
            parse_commit_record_key("aft.data/k/1|u")

    def test_validate_user_key_accepts_normal_keys(self):
        assert validate_user_key("order-123") == "order-123"

    @pytest.mark.parametrize("bad", ["", "a/b", "aft.data", "aft.commit", 42, None])
    def test_validate_user_key_rejects_reserved_and_invalid(self, bad):
        with pytest.raises(ValueError):
            validate_user_key(bad)


class TestTransactionIdGenerator:
    def test_timestamps_never_go_backwards(self):
        clock = LogicalClock(start=10.0)
        generator = TransactionIdGenerator(clock)
        first = generator.next_id()
        # Even though the clock has not advanced, the next id must not regress.
        second = generator.next_id()
        assert second.timestamp >= first.timestamp
        assert first.uuid != second.uuid

    def test_ids_increase_with_counter_clock(self):
        generator = TransactionIdGenerator(CounterClock())
        ids = [generator.next_id() for _ in range(10)]
        assert ids == sorted(ids)
        assert len({txid.uuid for txid in ids}) == 10
