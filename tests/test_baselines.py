"""Tests for the baseline clients: plain storage, DynamoDB transactions, RAMP."""

from __future__ import annotations

import pytest

from repro.baselines.dynamo_txn import DynamoTransactionClient
from repro.baselines.plain import PlainStorageClient
from repro.baselines.ramp import RampFastStore, RampTransactionAborted
from repro.clock import LogicalClock
from repro.errors import TransactionConflictError
from repro.storage.dynamodb import SimulatedDynamoDB
from repro.storage.memory import InMemoryStorage


class TestPlainStorageClient:
    def test_writes_are_immediately_visible_to_everyone(self):
        storage = InMemoryStorage()
        client = PlainStorageClient(storage)
        txid = client.start_transaction()
        client.put(txid, "k", b"v")
        # No buffering: a completely unrelated reader sees the write at once.
        assert storage.get("k") == b"v"
        other = client.start_transaction()
        assert client.get(other, "k") == b"v"

    def test_abort_cannot_undo_writes(self):
        """This is precisely the fractional-update hazard AFT eliminates."""
        storage = InMemoryStorage()
        client = PlainStorageClient(storage)
        txid = client.start_transaction()
        client.put(txid, "k", b"partial")
        client.abort_transaction(txid)
        assert storage.get("k") == b"partial"

    def test_interleaved_requests_observe_fractional_updates(self):
        storage = InMemoryStorage()
        client = PlainStorageClient(storage)
        setup = client.start_transaction()
        client.put(setup, "k", b"k0")
        client.put(setup, "l", b"l0")
        client.commit_transaction(setup)

        writer = client.start_transaction()
        client.put(writer, "k", b"k1")
        # A reader that runs between the two writes sees the torn state.
        reader = client.start_transaction()
        assert client.get(reader, "k") == b"k1"
        assert client.get(reader, "l") == b"l0"
        client.put(writer, "l", b"l1")

    def test_accepts_string_values(self):
        client = PlainStorageClient(InMemoryStorage())
        txid = client.start_transaction()
        client.put(txid, "k", "text")
        assert client.get(txid, "k") == b"text"

    def test_commit_returns_an_id(self):
        client = PlainStorageClient(InMemoryStorage(), clock=LogicalClock(start=5.0))
        txid = client.start_transaction("fixed-id")
        commit_id = client.commit_transaction(txid)
        assert commit_id.uuid == "fixed-id"


class TestDynamoTransactionClient:
    def test_requires_dynamodb_engine(self):
        with pytest.raises(TypeError):
            DynamoTransactionClient(InMemoryStorage())  # type: ignore[arg-type]

    def test_transact_read_and_write(self):
        table = SimulatedDynamoDB(clock=LogicalClock())
        client = DynamoTransactionClient(table)
        client.transact_write({"a": b"1", "b": b"2"})
        assert client.transact_read(["a", "b"]) == {"a": b"1", "b": b"2"}
        assert client.stats.write_transactions == 1
        assert client.stats.read_transactions == 1

    def test_conflicts_are_retried(self):
        table = SimulatedDynamoDB(clock=LogicalClock())
        client = DynamoTransactionClient(table, max_retries=3)
        # An in-flight foreign transaction holds the item briefly.
        table.transact_begin(["a"], token="someone-else", mode="write")
        with pytest.raises(TransactionConflictError):
            client.transact_write({"a": b"1"})
        assert client.stats.conflicts >= 1
        assert client.stats.gave_up == 1
        table.transact_end("someone-else")
        client.transact_write({"a": b"1"})
        assert table.get("a", consistent=True) == b"1"

    def test_conflict_window_helpers(self):
        table = SimulatedDynamoDB(clock=LogicalClock())
        client = DynamoTransactionClient(table)
        token = client.begin_conflict_window(["a"], mode="write")
        with pytest.raises(TransactionConflictError):
            client.begin_conflict_window(["a"], mode="write")
        client.end_conflict_window(token)
        second = client.begin_conflict_window(["a"], mode="write")
        client.end_conflict_window(second)


class TestRampFast:
    def test_atomic_visibility_of_write_sets(self):
        store = RampFastStore(InMemoryStorage(), clock=LogicalClock(auto_step=0.001))
        store.write_transaction({"k": b"k1", "l": b"l1"})
        store.write_transaction({"k": b"k2", "l": b"l2"})
        result = store.read_transaction(["k", "l"])
        assert result in ({"k": b"k1", "l": b"l1"}, {"k": b"k2", "l": b"l2"})

    def test_missing_keys_read_none(self):
        store = RampFastStore(InMemoryStorage(), clock=LogicalClock(auto_step=0.001))
        assert store.read_transaction(["nope"]) == {"nope": None}

    def test_second_round_repair(self):
        """Force a torn first round by committing {k,l} partially by hand."""
        storage = InMemoryStorage()
        clock = LogicalClock(auto_step=0.001)
        store = RampFastStore(storage, clock=clock)
        store.write_transaction({"k": b"k1", "l": b"l1"})
        version = store.write_transaction({"k": b"k2", "l": b"l2"})

        # Roll the last-committed pointer of l back to simulate a reader that
        # raced the commit's pointer installation.
        from repro.baselines.ramp import _latest_key

        first_version = None
        for key in storage.list_keys("ramp.version/l/"):
            token = key.rsplit("/", 1)[1]
            from repro.ids import TransactionId

            candidate = TransactionId.from_token(token)
            if candidate != version:
                first_version = candidate
        assert first_version is not None
        storage.put(_latest_key("l"), first_version.to_token().encode())

        result = store.read_transaction(["k", "l"])
        assert result == {"k": b"k2", "l": b"l2"}
        assert store.second_round_reads == 1

    def test_empty_write_set_rejected(self):
        store = RampFastStore(InMemoryStorage())
        with pytest.raises(ValueError):
            store.write_transaction({})

    def test_repair_of_missing_version_aborts(self):
        storage = InMemoryStorage()
        store = RampFastStore(storage, clock=LogicalClock(auto_step=0.001))
        store.write_transaction({"k": b"k1", "l": b"l1"})
        version = store.write_transaction({"k": b"k2", "l": b"l2"})

        from repro.baselines.ramp import _latest_key, _version_key
        from repro.ids import TransactionId

        # Roll back l's pointer AND delete the version the repair would need.
        old = [
            TransactionId.from_token(key.rsplit("/", 1)[1])
            for key in storage.list_keys("ramp.version/l/")
            if TransactionId.from_token(key.rsplit("/", 1)[1]) != version
        ][0]
        storage.put(_latest_key("l"), old.to_token().encode())
        storage.delete(_version_key("l", version))
        with pytest.raises(RampTransactionAborted):
            store.read_transaction(["k", "l"])

    def test_ramp_requires_predeclared_read_sets_unlike_aft(self):
        """Documented behavioural difference: RAMP cannot extend a read set
        after the fact and stay atomic, whereas AFT's Algorithm 1 can."""
        store = RampFastStore(InMemoryStorage(), clock=LogicalClock(auto_step=0.001))
        store.write_transaction({"k": b"k1", "l": b"l1"})
        store.write_transaction({"k": b"k2", "l": b"l2"})
        first = store.read_transaction(["k"])
        second = store.read_transaction(["l"])
        # Issued as two separate RAMP transactions there is no guarantee the
        # two observations belong to the same atomic write set.
        assert set(first) == {"k"} and set(second) == {"l"}
