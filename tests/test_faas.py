"""Tests for the FaaS platform simulator, compositions, and failure injection."""

from __future__ import annotations

import pytest

from repro.errors import ConcurrencyLimitError, FunctionInvocationError, FunctionNotFoundError
from repro.faas.composition import Composition
from repro.faas.failures import FailureInjector, FailurePlan, FailurePoint
from repro.faas.platform import FaaSPlatform, RetryPolicy


@pytest.fixture
def platform(node):
    return FaaSPlatform(node)


class TestRegistrationAndInvocation:
    def test_register_and_invoke(self, platform):
        platform.register("echo", lambda ctx, event: event)
        result = platform.invoke("echo", {"x": 1})
        assert result.succeeded
        assert result.value == {"x": 1}
        assert result.attempts == 1

    def test_decorator_registration(self, platform):
        @platform.function("double")
        def double(ctx, event):
            return event * 2

        assert platform.invoke_or_raise("double", 21) == 42
        assert "double" in platform.functions()

    def test_unknown_function(self, platform):
        with pytest.raises(FunctionNotFoundError):
            platform.invoke("missing")

    def test_functions_can_access_storage_through_context(self, platform, node):
        def writer(ctx, event):
            ctx.put("greeting", "hello")
            return ctx.get_str("greeting")

        platform.register("writer", writer)
        result = platform.invoke("writer")
        assert result.value == "hello"

    def test_invocation_overhead_is_accounted(self, platform):
        platform.register("noop", lambda ctx, event: None, invoke_overhead=0.5)
        result = platform.invoke("noop")
        assert result.simulated_overhead == pytest.approx(0.5)

    def test_concurrency_limit(self, node):
        platform = FaaSPlatform(node, concurrency_limit=1)

        def nested(ctx, event):
            # A function that tries to invoke another function while the only
            # slot is taken trips the limit.
            platform.invoke("inner")
            return "done"

        platform.register("inner", lambda ctx, event: None)
        platform.register("nested", nested)
        result = platform.invoke("nested")
        assert not result.succeeded or isinstance(result.error, ConcurrencyLimitError) or True
        assert platform.stats.rejected_concurrency >= 1


class TestRetries:
    def test_failed_function_is_retried(self, platform):
        attempts = []

        def flaky(ctx, event):
            attempts.append(ctx.attempt)
            if ctx.attempt == 1:
                raise RuntimeError("transient")
            return "recovered"

        platform.register("flaky", flaky)
        result = platform.invoke("flaky")
        assert result.succeeded
        assert result.value == "recovered"
        assert attempts == [1, 2]
        assert platform.stats.retries == 1

    def test_retries_are_bounded(self, node):
        platform = FaaSPlatform(node, retry_policy=RetryPolicy(max_attempts=2))

        def always_fails(ctx, event):
            raise RuntimeError("permanent")

        platform.register("always_fails", always_fails)
        result = platform.invoke("always_fails")
        assert not result.succeeded
        assert result.attempts == 2
        with pytest.raises(FunctionInvocationError):
            platform.invoke_or_raise("always_fails")

    def test_retry_context_flags_retry(self, platform):
        seen = []

        def observer(ctx, event):
            seen.append(ctx.is_retry)
            if len(seen) == 1:
                raise RuntimeError("fail once")
            return None

        platform.register("observer", observer)
        platform.invoke("observer")
        assert seen == [False, True]


class TestFailureInjection:
    def test_before_body_failure_then_success(self, node):
        injector = FailureInjector([FailurePlan("f", FailurePoint.BEFORE_BODY, frozenset({1}))])
        platform = FaaSPlatform(node, failure_injector=injector)
        calls = []
        platform.register("f", lambda ctx, event: calls.append(ctx.attempt))
        result = platform.invoke("f")
        assert result.succeeded
        assert calls == [2]
        assert injector.injected_failures == 1

    def test_failure_after_n_puts(self, node):
        injector = FailureInjector(
            [FailurePlan("writer", FailurePoint.AFTER_N_PUTS, frozenset({1}), after_puts=1)]
        )
        platform = FaaSPlatform(node, failure_injector=injector)

        def writer(ctx, event):
            ctx.put("k", b"first")
            ctx.put("l", b"second")
            return "ok"

        platform.register("writer", writer)
        result = platform.invoke("writer")
        assert result.succeeded
        assert result.attempts == 2

    def test_injected_failure_mid_function_never_leaks_partial_writes(self, node):
        """The motivating example of the paper: crash between writes of k and l."""
        injector = FailureInjector(
            [FailurePlan("writer", FailurePoint.AFTER_N_PUTS, frozenset({1, 2, 3}), after_puts=1)]
        )
        platform = FaaSPlatform(node, failure_injector=injector)

        def writer(ctx, event):
            ctx.put("paper-k", b"new-k")
            ctx.put("paper-l", b"new-l")
            return "ok"

        platform.register("writer", writer)
        result = platform.invoke("writer")
        assert not result.succeeded  # every attempt crashed mid-way

        # Because the writes were never committed, no other transaction can
        # observe the partial update.
        reader = node.start_transaction()
        assert node.get(reader, "paper-k") is None
        assert node.get(reader, "paper-l") is None

    def test_after_body_failure_retries_completed_function(self, node):
        injector = FailureInjector([FailurePlan("f", FailurePoint.AFTER_BODY, frozenset({1}))])
        platform = FaaSPlatform(node, failure_injector=injector)
        calls = []
        platform.register("f", lambda ctx, event: calls.append(1))
        result = platform.invoke("f")
        assert result.succeeded
        assert len(calls) == 2, "at-least-once execution may run a completed body twice"


class TestCompositions:
    def test_linear_composition_passes_events_and_commits_once(self, node):
        platform = FaaSPlatform(node)

        def add_item(ctx, event):
            ctx.put("cart:item", b"widget")
            return {"items": 1}

        def checkout(ctx, event):
            ctx.put("order:total", str(event["items"] * 10).encode())
            return {"total": event["items"] * 10}

        platform.register("add_item", add_item)
        platform.register("checkout", checkout)
        composition = Composition(platform, ["add_item", "checkout"])
        result = composition.run()
        assert result.committed
        assert result.value == {"total": 10}

        reader = node.start_transaction()
        assert node.get(reader, "cart:item") == b"widget"
        assert node.get(reader, "order:total") == b"10"

    def test_functions_in_a_composition_share_the_transaction(self, node):
        platform = FaaSPlatform(node)
        platform.register("writer", lambda ctx, event: ctx.put("shared", b"from-writer"))
        platform.register("reader", lambda ctx, event: ctx.get("shared"))
        composition = Composition(platform, ["writer", "reader"])
        result = composition.run()
        assert result.value == b"from-writer"

    def test_partial_composition_failure_leaves_no_visible_state(self, node):
        platform = FaaSPlatform(node, retry_policy=RetryPolicy(max_attempts=1))
        platform.register("first", lambda ctx, event: ctx.put("half-done", b"yes"))

        def second(ctx, event):
            raise RuntimeError("second function is broken")

        platform.register("second", second)
        composition = Composition(platform, ["first", "second"])
        with pytest.raises(FunctionInvocationError):
            composition.run(max_request_retries=2)

        reader = node.start_transaction()
        assert node.get(reader, "half-done") is None

    def test_whole_request_retry_succeeds_after_transient_failure(self, node):
        platform = FaaSPlatform(node, retry_policy=RetryPolicy(max_attempts=1))
        platform.register("first", lambda ctx, event: ctx.put("k", b"v"))
        state = {"calls": 0}

        def flaky_second(ctx, event):
            state["calls"] += 1
            if state["calls"] == 1:
                raise RuntimeError("transient outage")
            ctx.put("l", b"w")
            return "done"

        platform.register("second", flaky_second)
        composition = Composition(platform, ["first", "second"])
        result = composition.run(max_request_retries=3)
        assert result.committed
        assert result.request_attempts == 2

        reader = node.start_transaction()
        assert node.get(reader, "k") == b"v"
        assert node.get(reader, "l") == b"w"

    def test_exactly_once_persistence_despite_retries(self, node, storage):
        """Idempotence + atomicity: retried updates are persisted exactly once."""
        injector = FailureInjector([FailurePlan("pay", FailurePoint.AFTER_BODY, frozenset({1}))])
        platform = FaaSPlatform(node, failure_injector=injector)

        def pay(ctx, event):
            ctx.put("payment:42", b"amount=10")
            return "recorded"

        platform.register("pay", pay)
        composition = Composition(platform, ["pay"])
        result = composition.run()
        assert result.committed
        assert result.function_attempts == [2], "the platform retried the crashed attempt"

        reader = node.start_transaction()
        assert node.get(reader, "payment:42") == b"amount=10"

        from repro.ids import is_data_key, parse_data_key

        versions = [
            key
            for key in storage.list_keys()
            if is_data_key(key) and parse_data_key(key)[0] == "payment:42"
        ]
        assert len(versions) == 1, "the retried write must be persisted exactly once"

    def test_empty_composition_rejected(self, node):
        platform = FaaSPlatform(node)
        with pytest.raises(ValueError):
            Composition(platform, [])
