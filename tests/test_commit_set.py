"""Tests for commit records and the Transaction Commit Set store."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.commit_set import CommitRecord, CommitSetStore, records_by_id
from repro.ids import TransactionId, data_key
from repro.storage.memory import InMemoryStorage


def make_record(timestamp: float, uuid: str, keys: list[str]) -> CommitRecord:
    txid = TransactionId(timestamp, uuid)
    return CommitRecord(
        txid=txid,
        write_set={key: data_key(key, txid) for key in keys},
        committed_at=timestamp,
        node_id="node-a",
    )


class TestCommitRecord:
    def test_serialisation_round_trip(self):
        record = make_record(12.5, "abc", ["k", "l"])
        restored = CommitRecord.from_bytes(record.to_bytes())
        assert restored.txid == record.txid
        assert dict(restored.write_set) == dict(record.write_set)
        assert restored.node_id == "node-a"

    def test_cowritten_set_is_the_write_set_keys(self):
        record = make_record(1.0, "abc", ["x", "y", "z"])
        assert record.cowritten == frozenset({"x", "y", "z"})

    def test_storage_key_for(self):
        record = make_record(1.0, "abc", ["x"])
        assert record.storage_key_for("x") == data_key("x", record.txid)

    @given(
        st.floats(min_value=0, max_value=1e9),
        st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=5), min_size=0, max_size=8, unique=True),
    )
    def test_round_trip_arbitrary_records(self, timestamp, keys):
        record = make_record(timestamp, "uid", keys)
        restored = CommitRecord.from_bytes(record.to_bytes())
        assert restored.txid == record.txid
        assert restored.cowritten == record.cowritten


class TestCommitSetStore:
    @pytest.fixture
    def store(self):
        return CommitSetStore(InMemoryStorage())

    def test_write_then_read(self, store):
        record = make_record(1.0, "a", ["k"])
        store.write_record(record)
        assert store.read_record(record.txid).write_set == record.write_set

    def test_read_missing_returns_none(self, store):
        assert store.read_record(TransactionId(9.9, "nope")) is None

    def test_contains_and_count(self, store):
        assert store.count() == 0
        record = make_record(1.0, "a", ["k"])
        store.write_record(record)
        assert store.contains(record.txid)
        assert store.count() == 1

    def test_delete_record(self, store):
        record = make_record(1.0, "a", ["k"])
        store.write_record(record)
        store.delete_record(record.txid)
        assert not store.contains(record.txid)

    def test_list_transaction_ids_sorted_oldest_first(self, store):
        ids = []
        for timestamp in (3.0, 1.0, 2.0):
            record = make_record(timestamp, f"u{timestamp}", ["k"])
            store.write_record(record)
            ids.append(record.txid)
        assert store.list_transaction_ids() == sorted(ids)

    def test_scan_newest_first_with_limit(self, store):
        for timestamp in range(10):
            store.write_record(make_record(float(timestamp), f"u{timestamp}", ["k"]))
        newest_three = store.scan(limit=3)
        assert [record.txid.timestamp for record in newest_three] == [9.0, 8.0, 7.0]

    def test_scan_oldest_first(self, store):
        for timestamp in range(5):
            store.write_record(make_record(float(timestamp), f"u{timestamp}", ["k"]))
        oldest = store.scan(newest_first=False, limit=2)
        assert [record.txid.timestamp for record in oldest] == [0.0, 1.0]

    def test_records_by_id_helper(self):
        records = [make_record(1.0, "a", ["k"]), make_record(2.0, "b", ["l"])]
        indexed = records_by_id(records)
        assert set(indexed) == {records[0].txid, records[1].txid}

    def test_commit_records_do_not_collide_with_user_data(self, store):
        # The store shares its engine with user data; prefixes keep them apart.
        engine = store.engine
        engine.put("aft.data/k/1.0|x", b"payload")
        record = make_record(1.0, "a", ["k"])
        store.write_record(record)
        assert store.count() == 1
