"""Tests for the Zipfian sampler and workload generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import OpType, TransactionSpec, WorkloadSpec
from repro.workloads.zipf import UniformKeySampler, ZipfKeySampler


class TestZipfKeySampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfKeySampler(num_keys=100, theta=1.0)
        total = sum(sampler.probability(rank) for rank in range(100))
        assert total == pytest.approx(1.0)

    def test_probabilities_decrease_with_rank(self):
        sampler = ZipfKeySampler(num_keys=50, theta=1.2)
        probabilities = [sampler.probability(rank) for rank in range(50)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_higher_theta_is_more_skewed(self):
        light = ZipfKeySampler(num_keys=1000, theta=1.0)
        heavy = ZipfKeySampler(num_keys=1000, theta=2.0)
        assert heavy.probability(0) > light.probability(0)

    def test_uniform_sampler_is_flat(self):
        sampler = UniformKeySampler(num_keys=10)
        assert sampler.probability(0) == pytest.approx(sampler.probability(9))

    def test_samples_are_valid_keys(self):
        sampler = ZipfKeySampler(num_keys=20, theta=1.5, seed=1)
        population = set(sampler.all_keys())
        assert all(sampler.sample() in population for _ in range(200))

    def test_sampling_is_reproducible_with_seed(self):
        a = ZipfKeySampler(num_keys=100, theta=1.0, seed=9)
        b = ZipfKeySampler(num_keys=100, theta=1.0, seed=9)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_sample_distinct(self):
        sampler = ZipfKeySampler(num_keys=10, theta=1.0, seed=0)
        keys = sampler.sample_distinct(10)
        assert len(set(keys)) == 10
        with pytest.raises(ValueError):
            sampler.sample_distinct(11)

    def test_empirical_skew(self):
        sampler = ZipfKeySampler(num_keys=100, theta=1.5, seed=3)
        counts: dict[str, int] = {}
        for _ in range(5000):
            key = sampler.sample()
            counts[key] = counts.get(key, 0) + 1
        hottest = sampler.key_name(0)
        assert counts[hottest] == max(counts.values())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfKeySampler(num_keys=0)
        with pytest.raises(ValueError):
            ZipfKeySampler(num_keys=10, theta=-1.0)
        with pytest.raises(IndexError):
            ZipfKeySampler(num_keys=10).probability(10)


class TestTransactionSpec:
    def test_paper_default_shape(self):
        spec = TransactionSpec.paper_default()
        assert spec.num_functions == 2
        assert spec.ios_per_transaction == 6
        assert spec.value_size_bytes == 4096

    def test_total_ios_with_read_fraction(self):
        spec = TransactionSpec(num_functions=2, total_ios=10, read_fraction=0.8)
        assert spec.ios_per_transaction == 10

    def test_read_fraction_requires_total_ios(self):
        with pytest.raises(ValueError):
            TransactionSpec(read_fraction=0.5)
        with pytest.raises(ValueError):
            TransactionSpec(total_ios=10)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TransactionSpec(num_functions=0)
        with pytest.raises(ValueError):
            TransactionSpec(total_ios=10, read_fraction=1.5)


class TestWorkloadGenerator:
    def test_default_plan_shape(self):
        generator = WorkloadGenerator(WorkloadSpec.figure3_default())
        plan = generator.next_transaction()
        assert len(plan) == 2
        for function in plan:
            assert len(function.reads) == 2
            assert len(function.writes) == 1
            assert all(op.value_size_bytes == 4096 for op in function.writes)

    def test_read_fraction_plan(self):
        spec = WorkloadSpec(
            transaction=TransactionSpec(num_functions=2, total_ios=10, read_fraction=0.8),
            num_keys=100,
        )
        plan = WorkloadGenerator(spec).next_transaction()
        reads = sum(len(f.reads) for f in plan)
        writes = sum(len(f.writes) for f in plan)
        assert reads == 8 and writes == 2

    def test_all_reads_and_all_writes(self):
        for fraction, expected_reads in ((0.0, 0), (1.0, 10)):
            spec = WorkloadSpec(
                transaction=TransactionSpec(num_functions=2, total_ios=10, read_fraction=fraction),
                num_keys=100,
            )
            plan = WorkloadGenerator(spec).next_transaction()
            assert sum(len(f.reads) for f in plan) == expected_reads

    def test_long_compositions_spread_ops_across_functions(self):
        spec = WorkloadSpec(
            transaction=TransactionSpec(num_functions=10, reads_per_function=2, writes_per_function=1),
            num_keys=1000,
        )
        plan = WorkloadGenerator(spec).next_transaction()
        assert len(plan) == 10
        assert sum(len(f.operations) for f in plan) == 30

    def test_distinct_keys_per_transaction(self):
        spec = WorkloadSpec(num_keys=100, distinct_keys_per_transaction=True)
        plan = WorkloadGenerator(spec).next_transaction()
        keys = [op.key for f in plan for op in f.operations]
        assert len(keys) == len(set(keys))

    def test_with_replacement_allows_repeats_eventually(self):
        spec = WorkloadSpec(num_keys=2, zipf_theta=1.0, distinct_keys_per_transaction=False)
        generator = WorkloadGenerator(spec)
        saw_repeat = False
        for _ in range(20):
            plan = generator.next_transaction()
            keys = [op.key for f in plan for op in f.operations]
            if len(keys) != len(set(keys)):
                saw_repeat = True
                break
        assert saw_repeat

    def test_too_many_distinct_keys_raises(self):
        spec = WorkloadSpec(
            transaction=TransactionSpec(num_functions=2, reads_per_function=2, writes_per_function=1),
            num_keys=3,
            distinct_keys_per_transaction=True,
        )
        with pytest.raises(WorkloadError):
            WorkloadGenerator(spec).next_transaction()

    def test_payloads_have_requested_size(self):
        generator = WorkloadGenerator(WorkloadSpec.figure3_default())
        assert len(generator.make_payload()) == 4096
        assert len(generator.make_payload(10)) == 10
        assert generator.make_payload(0) == b""

    def test_payloads_differ_between_calls(self):
        generator = WorkloadGenerator(WorkloadSpec.figure3_default())
        assert generator.make_payload() != generator.make_payload()

    def test_preload_items_cover_population(self):
        spec = WorkloadSpec(num_keys=25)
        generator = WorkloadGenerator(spec)
        items = generator.preload_items(value_size_bytes=16)
        assert len(items) == 25
        assert all(len(value) == 16 for value in items.values())

    def test_generator_is_deterministic_given_seed(self):
        spec = WorkloadSpec(num_keys=100, seed=5, distinct_keys_per_transaction=False)
        a = [op.key for f in WorkloadGenerator(spec).next_transaction() for op in f.operations]
        b = [op.key for f in WorkloadGenerator(spec).next_transaction() for op in f.operations]
        assert a == b

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=3),
    )
    def test_plan_counts_match_spec(self, functions, reads, writes):
        spec = WorkloadSpec(
            transaction=TransactionSpec(
                num_functions=functions, reads_per_function=reads, writes_per_function=writes
            ),
            num_keys=500,
            distinct_keys_per_transaction=False,
        )
        plan = WorkloadGenerator(spec).next_transaction()
        assert len(plan) == functions
        assert sum(len(f.reads) for f in plan) == functions * reads
        assert sum(len(f.writes) for f in plan) == functions * writes
        for function in plan:
            read_ops = [op for op in function.operations if op.op_type is OpType.READ]
            assert function.operations[: len(read_ops)] == tuple(read_ops)
