"""Tests for the pluggable metadata plane: commit streams, lease membership,
the partitioned commit keyspace, and the hypothesis oracle proving the
sharded/lease/partitioned plane converges to the direct/polling/flat
singleton state."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import LogicalClock
from repro.config import AftConfig, ClusterConfig, FaultManagerConfig, MetadataPlaneConfig
from repro.core.cluster import AftCluster
from repro.core.commit_set import CommitRecord, CommitSetStore
from repro.core.fault_manager import FaultManager
from repro.core.garbage_collector import LocalMetadataGC
from repro.core.metadata_plane import (
    DirectCommitStream,
    LeaseMembership,
    PollingMembership,
    RelayFault,
    ShardedCommitStream,
    make_commit_keyspace,
    make_commit_stream,
    make_membership,
)
from repro.core.metadata_plane.keyspace import (
    FlatCommitKeyspace,
    PartitionedCommitKeyspace,
    fault_manager_partition_ids,
)
from repro.core.multicast import MulticastService
from repro.core.node import AftNode
from repro.ids import TransactionId, data_key
from repro.storage.memory import InMemoryStorage


@pytest.fixture
def clock():
    return LogicalClock(start=100.0, auto_step=0.001)


@pytest.fixture
def storage():
    return InMemoryStorage()


def make_node(storage, commit_store, clock, node_id, **config_overrides) -> AftNode:
    node = AftNode(
        storage,
        commit_store=commit_store,
        config=AftConfig(**config_overrides),
        clock=clock,
        node_id=node_id,
    )
    node.start()
    return node


def make_record(index: int, keys: list[str] | None = None, node_id: str = "n0") -> CommitRecord:
    txid = TransactionId(timestamp=float(index), uuid=f"u{index:04d}")
    keys = keys if keys is not None else [f"k{index % 4}"]
    return CommitRecord(
        txid=txid,
        write_set={key: data_key(key, txid) for key in keys},
        committed_at=float(index),
        node_id=node_id,
    )


# --------------------------------------------------------------------------- #
# Commit streams
# --------------------------------------------------------------------------- #
class TestCommitStreams:
    def _fleet(self, storage, clock, count: int) -> tuple[CommitSetStore, list[AftNode]]:
        store = CommitSetStore(storage)
        return store, [make_node(storage, store, clock, f"n{i}") for i in range(count)]

    def test_direct_stream_delivers_to_every_live_peer(self, storage, clock):
        store, nodes = self._fleet(storage, clock, 4)
        stream = DirectCommitStream()
        for node in nodes:
            stream.register(node)
        nodes[3].fail()
        records = [make_record(0)]
        reached = stream.publish(records, exclude=nodes[0])
        assert reached == 2  # two live peers (sender and dead node excluded)
        assert stream.stats.sender_deliveries == 2
        assert stream.stats.relay_deliveries == 0
        for receiver in nodes[1:3]:
            assert records[0].txid in receiver.metadata_cache
        assert records[0].txid not in nodes[0].metadata_cache

    def test_sharded_sender_fanout_bounded_by_relay_degree(self, storage, clock):
        """The counting satellite: at 64 receivers the publisher hands the
        batch to at most ``relay_fanout`` relay roots; relays carry the rest,
        and every live receiver still gets every record exactly once."""
        store, nodes = self._fleet(storage, clock, 65)
        stream = ShardedCommitStream(relay_fanout=4)
        for node in nodes:
            stream.register(node)
        sender = nodes[0]
        records = [make_record(i) for i in range(3)]
        reached = stream.publish(records, exclude=sender)

        assert reached == 64
        assert stream.stats.sender_deliveries <= 4
        assert stream.stats.sender_records_on_wire <= 4 * len(records)
        assert stream.stats.relay_deliveries == 64 - stream.stats.sender_deliveries
        assert stream.stats.records_delivered == 64 * len(records)
        for receiver in nodes[1:]:
            for record in records:
                assert record.txid in receiver.metadata_cache
        # Exactly once: every delivery was counted, none duplicated.
        applied = sum(node.stats.remote_commits_applied for node in nodes[1:])
        assert applied == 64 * len(records)

    def test_sharded_stream_skips_dead_receivers(self, storage, clock):
        store, nodes = self._fleet(storage, clock, 9)
        stream = ShardedCommitStream(relay_fanout=2)
        for node in nodes:
            stream.register(node)
        for dead in nodes[5:8]:
            dead.fail()
        records = [make_record(0)]
        reached = stream.publish(records, exclude=nodes[0])
        assert reached == 5  # 8 peers minus 3 dead
        for receiver in nodes[1:5] + [nodes[8]]:
            assert records[0].txid in receiver.metadata_cache

    def test_relay_death_mid_round_reroutes_orphans_exactly_once(self, storage, clock):
        """A relay that dies after delivering part of its subtree no longer
        leaks the remainder: orphaned hand-offs re-route up the ancestor
        chain and every live receiver still gets the batch exactly once."""
        store, nodes = self._fleet(storage, clock, 9)
        stream = ShardedCommitStream(relay_fanout=2)
        for node in nodes:
            stream.register(node)
        sender = nodes[0]
        live = {n.node_id: n for n in nodes if n is not sender}
        order = [live[nid] for nid in stream._ring_order if nid in live]
        # Ring position 0 carries positions 2 and 3; kill it after its first
        # hand-off, so position 3 is orphaned mid-round.
        relay = order[0]
        died: list[str] = []
        stream.inject_relay_fault(
            RelayFault(
                node_id=relay.node_id,
                after_handoffs=1,
                on_death=lambda n: (died.append(n.node_id), n.fail()),
            )
        )
        records = [make_record(i) for i in range(2)]
        reached = stream.publish(records, exclude=sender)

        assert died == [relay.node_id]
        # The relay itself was delivered to (parents before children) and so
        # were all seven other receivers, despite the mid-round death.
        assert reached == 8
        assert stream.stats.relay_deaths == 1
        assert stream.stats.rerouted_deliveries == 1
        assert stream.stats.orphaned_receivers == 0
        for receiver in order:
            if receiver is relay:
                continue
            for record in records:
                assert record.txid in receiver.metadata_cache
        # Exactly once even under re-routing.
        applied = sum(node.stats.remote_commits_applied for node in order)
        assert applied == 8 * len(records)

    def test_relay_death_before_first_handoff_reroutes_whole_subtree(self, storage, clock):
        """Killing a relay before any hand-off re-routes its entire subtree
        (children *and* their descendants, via the now-delivered children)."""
        store, nodes = self._fleet(storage, clock, 9)
        stream = ShardedCommitStream(relay_fanout=2)
        for node in nodes:
            stream.register(node)
        sender = nodes[0]
        live = {n.node_id: n for n in nodes if n is not sender}
        order = [live[nid] for nid in stream._ring_order if nid in live]
        relay = order[0]
        stream.inject_relay_fault(RelayFault(node_id=relay.node_id, after_handoffs=0))
        reached = stream.publish([make_record(0)], exclude=sender)
        assert reached == 8
        assert stream.stats.relay_deaths == 1
        # Both direct children of position 0 (positions 2 and 3) re-routed.
        assert stream.stats.rerouted_deliveries == 2
        assert stream.stats.orphaned_receivers == 0

    def test_relay_death_without_reroute_leaks_subtree(self, storage, clock):
        """The pre-fix accounting, kept behind ``reroute_orphans=False`` for
        the nemesis mutant check: a dead relay's undelivered receivers — and
        transitively their subtrees — never see the batch."""
        store, nodes = self._fleet(storage, clock, 9)
        stream = ShardedCommitStream(relay_fanout=2, reroute_orphans=False)
        for node in nodes:
            stream.register(node)
        sender = nodes[0]
        live = {n.node_id: n for n in nodes if n is not sender}
        order = [live[nid] for nid in stream._ring_order if nid in live]
        relay = order[0]
        stream.inject_relay_fault(RelayFault(node_id=relay.node_id, after_handoffs=0))
        records = [make_record(0)]
        reached = stream.publish(records, exclude=sender)
        # Positions 2 and 3 (children of the dead relay) are orphaned, and so
        # is position 2's own subtree (positions 6 and 7).
        assert reached == 4
        assert stream.stats.orphaned_receivers == 4
        leaked = [r for r in order if records[0].txid not in r.metadata_cache]
        assert len(leaked) == 4

    def test_relay_fault_is_one_shot(self, storage, clock):
        """An armed fault is consumed by the next publish; the round after is
        clean (no further deaths, no re-routing)."""
        store, nodes = self._fleet(storage, clock, 9)
        stream = ShardedCommitStream(relay_fanout=2)
        for node in nodes:
            stream.register(node)
        sender = nodes[0]
        live = {n.node_id: n for n in nodes if n is not sender}
        order = [live[nid] for nid in stream._ring_order if nid in live]
        stream.inject_relay_fault(RelayFault(node_id=order[0].node_id, after_handoffs=0))
        stream.publish([make_record(0)], exclude=sender)
        assert stream.stats.relay_deaths == 1
        stream.publish([make_record(1)], exclude=sender)
        assert stream.stats.relay_deaths == 1
        assert stream.stats.orphaned_receivers == 0

    def test_multicast_round_identical_under_both_transports(self, clock):
        """One committed transaction reaches every peer's cache regardless of
        transport; only *who pays the deliveries* differs."""
        outcomes = {}
        for transport in ("direct", "sharded"):
            storage = InMemoryStorage()
            store = CommitSetStore(storage)
            nodes = [make_node(storage, store, clock, f"{transport}{i}") for i in range(6)]
            multicast = MulticastService(stream=make_commit_stream(transport, relay_fanout=2))
            for node in nodes:
                multicast.register_node(node)
            txid = nodes[0].start_transaction("t0")
            nodes[0].put(txid, "k", b"v")
            commit_id = nodes[0].commit_transaction(txid)
            multicast.run_once()
            outcomes[transport] = {
                "caches": [commit_id in node.metadata_cache for node in nodes],
                "deliveries": multicast.stats.deliveries,
            }
            if transport == "sharded":
                assert multicast.stream.stats.sender_deliveries <= 2
                assert multicast.stream.stats.relay_deliveries == 5 - multicast.stream.stats.sender_deliveries
        assert outcomes["direct"] == outcomes["sharded"]

    def test_membership_changes_are_constant_time_lookups(self, storage, clock):
        """Satellite: register/unregister key the node dict by id (no list
        scans), and double registration is idempotent."""
        store, nodes = self._fleet(storage, clock, 3)
        multicast = MulticastService()
        for node in nodes:
            multicast.register_node(node)
            multicast.register_node(node)
        assert [n.node_id for n in multicast.nodes] == ["n0", "n1", "n2"]
        multicast.unregister_node(nodes[1])
        multicast.unregister_node(nodes[1])
        assert [n.node_id for n in multicast.nodes] == ["n0", "n2"]
        assert not multicast.stream.is_registered(nodes[1])


# --------------------------------------------------------------------------- #
# Membership
# --------------------------------------------------------------------------- #
class TestLeaseMembership:
    def test_heartbeats_keep_a_node_alive(self, storage, clock):
        store = CommitSetStore(storage)
        node = make_node(storage, store, clock, "a")
        membership = LeaseMembership(lease_duration=5.0, clock=clock)
        membership.register(node)
        for _ in range(4):
            clock.advance(3.0)
            membership.heartbeat(node)
            assert membership.detect_failures([node]) == []

    def test_lease_expiry_declares_failure_even_without_ground_truth(self, storage, clock):
        """Lease detection is observation, not omniscience: a node that
        merely stops heartbeating is declared failed once its lease lapses."""
        store = CommitSetStore(storage)
        node = make_node(storage, store, clock, "a")
        membership = LeaseMembership(lease_duration=5.0, clock=clock)
        membership.register(node)
        assert membership.detect_failures([node]) == []
        clock.advance(5.1)
        assert membership.detect_failures([node]) == [node]
        events = membership.poll_events()
        assert len(events) == 1 and events[0].node_id == "a" and events[0].kind == "failed"
        # Declared once: repeated detection does not re-emit the event.
        assert membership.detect_failures([node]) == [node]
        assert membership.poll_events() == []

    def test_draining_node_is_not_declared_failed_mid_drain(self, storage, clock):
        """The lease-expiry-vs-retirement race satellite: a node inside
        ``begin_drain`` must never be declared failed, even if its lease
        lapses before retirement completes."""
        store = CommitSetStore(storage)
        node = make_node(storage, store, clock, "a")
        membership = LeaseMembership(lease_duration=2.0, clock=clock)
        membership.register(node)
        node.begin_drain()
        clock.advance(10.0)  # the drain outlives the lease
        assert membership.detect_failures([node]) == []
        # ...and the retirement path finishes normally.
        node.retire()
        assert membership.detect_failures([node]) == []

    def test_retired_and_deregistered_nodes_are_exempt(self, storage, clock):
        store = CommitSetStore(storage)
        a = make_node(storage, store, clock, "a")
        b = make_node(storage, store, clock, "b")
        membership = LeaseMembership(lease_duration=2.0, clock=clock)
        membership.register(a)
        membership.register(b)
        a.begin_drain()
        a.retire()
        membership.deregister(b)
        clock.advance(10.0)
        assert membership.detect_failures([a, b]) == []

    def test_unregistered_node_has_no_lease_to_expire(self, storage, clock):
        store = CommitSetStore(storage)
        node = make_node(storage, store, clock, "a")
        membership = LeaseMembership(lease_duration=1.0, clock=clock)
        clock.advance(100.0)
        assert membership.detect_failures([node]) == []

    def test_polling_membership_matches_seed_semantics(self, storage, clock):
        store = CommitSetStore(storage)
        a = make_node(storage, store, clock, "a")
        b = make_node(storage, store, clock, "b")
        c = make_node(storage, store, clock, "c")
        membership = PollingMembership(clock=clock)
        b.fail()
        c.begin_drain()
        c.retire()
        assert membership.detect_failures([a, b, c]) == [b]

    def test_crash_mid_drain_contract_per_strategy(self, storage, clock):
        """A node that crashes mid-drain: polling (ground truth, the seed
        semantics) declares it failed so recovery replaces it and reclaims
        its spills; lease cannot distinguish the crash from a quiet drain,
        defers to the retirement path — which must reclaim the orphaned
        spills itself so nothing leaks either way."""
        store = CommitSetStore(storage)
        polling = PollingMembership(clock=clock)
        crashed = make_node(storage, store, clock, "dc-poll")
        polling.register(crashed)
        crashed.begin_drain()
        crashed.fail()
        assert polling.detect_failures([crashed]) == [crashed]

        lease = LeaseMembership(lease_duration=2.0, clock=clock)
        quiet = make_node(storage, store, clock, "dc-lease")
        lease.register(quiet)
        quiet.begin_drain()
        quiet.fail()
        clock.advance(10.0)
        assert lease.detect_failures([quiet]) == []

        # Lease path cleanup: force-retire reclaims the crashed node's
        # orphaned spills (durable keys no commit record references).
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(
                num_nodes=2,
                node_config=AftConfig(write_buffer_spill_bytes=16),
                metadata_plane=MetadataPlaneConfig(membership="lease", lease_duration=5.0),
            ),
            clock=clock,
        )
        victim = cluster.nodes[0]
        txid = victim.start_transaction()
        victim.put(txid, "big", b"x" * 64)  # spills immediately
        spilled = list(victim.write_buffer.spilled_keys(txid).values())
        assert spilled and cluster.storage.get(spilled[0]) is not None
        cluster.begin_drain(victim)
        victim.fail()
        clock.advance(6.0)
        cluster.run_multicast_round()
        assert cluster.replace_failed_nodes() == []  # drain exemption holds
        retired = cluster.retire_drained_nodes(force=True)
        assert retired == [victim]
        assert len(cluster.nodes) == 1
        assert cluster.storage.get(spilled[0]) is None  # spill reclaimed
        assert cluster.fault_manager.stats.orphan_spills_reclaimed >= 1

    def test_lease_cluster_failover_end_to_end(self, clock):
        """An AftCluster on lease membership detects a crash only after the
        lease lapses, then recovers and promotes exactly as polling does."""
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(
                num_nodes=3,
                standby_nodes=1,
                metadata_plane=MetadataPlaneConfig(
                    membership="lease", lease_duration=5.0, heartbeat_interval=1.0
                ),
            ),
            clock=clock,
        )
        client = cluster.client()
        txid = client.start_transaction()
        owner = client.node_for(txid)
        client.put(txid, "k", b"survives-lease-detection")
        client.commit_transaction(txid)
        cluster.fail_node(owner)

        # The lease has not lapsed: nothing is detected, nothing replaced.
        assert cluster.replace_failed_nodes() == []
        assert len(cluster.nodes) == 3

        clock.advance(5.1)
        # Heartbeats ride the multicast cadence: the survivors renew their
        # leases, the victim cannot — only its lease lapses.
        cluster.run_multicast_round()
        replacements = cluster.replace_failed_nodes()
        assert len(replacements) == 1
        assert cluster.stats.extra["membership_failure_events"] == 1
        assert cluster.fault_manager.stats.node_recoveries == 1
        survivor = [n for n in cluster.live_nodes() if n is not replacements[0]][0]
        reader = survivor.start_transaction()
        assert survivor.get(reader, "k") == b"survives-lease-detection"

    def test_heartbeats_piggyback_on_multicast_rounds(self, clock):
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(
                num_nodes=2,
                metadata_plane=MetadataPlaneConfig(
                    membership="lease", lease_duration=3.0, heartbeat_interval=1.0
                ),
            ),
            clock=clock,
        )
        # Without rounds the initial lease would lapse at +3s; rounds renew it.
        for _ in range(5):
            clock.advance(2.0)
            cluster.run_multicast_round()
            assert cluster.fault_manager.detect_failures(cluster.nodes) == []

    def test_lease_shorter_than_multicast_cadence_is_rejected(self):
        """Renewal rides the multicast cadence: a lease that lapses between
        rounds would flap every live node failed, so the cluster refuses it."""
        with pytest.raises(ValueError):
            AftCluster(
                InMemoryStorage(),
                cluster_config=ClusterConfig(
                    num_nodes=1,
                    node_config=AftConfig(multicast_interval=2.0),
                    metadata_plane=MetadataPlaneConfig(
                        membership="lease", lease_duration=1.5, heartbeat_interval=0.1
                    ),
                ),
            )

    def test_invalid_plane_configs_are_rejected(self):
        with pytest.raises(ValueError):
            MetadataPlaneConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            MetadataPlaneConfig(membership="oracle")
        with pytest.raises(ValueError):
            MetadataPlaneConfig(keyspace="striped")
        with pytest.raises(ValueError):
            MetadataPlaneConfig(membership="lease", lease_duration=0.5, heartbeat_interval=1.0)
        with pytest.raises(ValueError):
            make_commit_stream("smoke-signals")


# --------------------------------------------------------------------------- #
# Commit keyspace
# --------------------------------------------------------------------------- #
class TestCommitKeyspace:
    def test_partition_assignment_agrees_with_fault_manager(self, storage):
        config = FaultManagerConfig(num_shards=4)
        keyspace = make_commit_keyspace(
            "partitioned", num_partitions=4, hash_ring_replicas=config.hash_ring_replicas
        )
        store = CommitSetStore(storage, keyspace=keyspace)
        manager = FaultManager(storage, store, MulticastService(), config=config)
        for index in range(100):
            txid = make_record(index).txid
            assert keyspace.partition_for(txid) == manager.shard_for(txid).shard_id

    def test_records_round_trip_through_partition_prefixes(self, storage):
        keyspace = make_commit_keyspace("partitioned", num_partitions=4)
        store = CommitSetStore(storage, keyspace=keyspace)
        records = [make_record(i) for i in range(40)]
        for record in records:
            store.write_record(record)
        # Every partition listing returns exactly its own ids, and the union
        # over partitions is the whole set.
        seen: list[TransactionId] = []
        for partition in store.partitions():
            ids = store.list_transaction_ids(partition=partition)
            assert all(keyspace.partition_for(txid) == partition for txid in ids)
            seen.extend(ids)
        assert sorted(seen) == [record.txid for record in records]
        assert store.list_transaction_ids() == [record.txid for record in records]
        for record in records:
            assert store.read_record(record.txid).txid == record.txid
            assert store.contains(record.txid)

    def test_migration_shim_keeps_flat_records_readable(self, storage):
        """The migration satellite: records written under the legacy flat
        prefix remain readable — point reads, batch reads, listings — after
        partitioning is enabled, and deletes cover both positions."""
        flat_store = CommitSetStore(storage)  # the pre-migration writer
        legacy = [make_record(i) for i in range(10)]
        for record in legacy:
            flat_store.write_record(record)

        keyspace = make_commit_keyspace("partitioned", num_partitions=2)
        store = CommitSetStore(storage, keyspace=keyspace)
        fresh = [make_record(100 + i) for i in range(5)]
        for record in fresh:
            store.write_record(record)

        everything = sorted(record.txid for record in legacy + fresh)
        assert store.list_transaction_ids() == everything
        per_partition: list[TransactionId] = []
        for partition in store.partitions():
            per_partition.extend(store.list_transaction_ids(partition=partition))
        assert sorted(per_partition) == everything

        for record in legacy:
            assert store.read_record(record.txid).write_set == dict(record.write_set)
            assert store.contains(record.txid)
        batch = store.read_records_batch([record.txid for record in legacy + fresh])
        assert all(batch[txid] is not None for txid in batch)
        assert store.stats.legacy_fallback_reads > 0

        # Deleting a legacy record removes it from the flat prefix too.
        store.delete_record(legacy[0].txid)
        assert not store.contains(legacy[0].txid)
        assert flat_store.read_record(legacy[0].txid) is None

    def test_sweep_pays_one_legacy_listing_not_one_per_shard(self, storage):
        """While unmigrated flat records remain, a 4-shard sweep must list the
        legacy prefix once, not once per shard."""
        flat_store = CommitSetStore(storage)
        for index in range(8):
            flat_store.write_record(make_record(index))
        config = FaultManagerConfig(num_shards=4)
        keyspace = make_commit_keyspace(
            "partitioned", num_partitions=4, hash_ring_replicas=config.hash_ring_replicas
        )
        store = CommitSetStore(storage, keyspace=keyspace)
        manager = FaultManager(storage, store, MulticastService(), config=config)

        recovered = manager.scan_commit_set()
        assert len(recovered) == 8
        assert store.stats.partition_listings == 4
        # One construction-time probe plus one listing for the sweep itself —
        # not one per shard.
        assert store.stats.legacy_listings == 2

    def test_shim_latches_off_once_legacy_prefix_empties(self, storage):
        keyspace = make_commit_keyspace("partitioned", num_partitions=2)
        store = CommitSetStore(storage, keyspace=keyspace)
        for index in range(4):
            store.write_record(make_record(index))
        assert store.list_transaction_ids() == [make_record(i).txid for i in range(4)]
        listings_after_first = store.stats.legacy_listings
        assert listings_after_first >= 1
        # The first listing saw an empty legacy prefix; later listings and
        # deletes pay nothing for the shim.
        store.list_transaction_ids()
        assert store.stats.legacy_listings == listings_after_first
        assert store.record_delete_keys(make_record(0).txid) == [
            store.record_storage_key(make_record(0).txid)
        ]

    def test_partitioned_sweeps_issue_prefix_scoped_listings(self, storage):
        """Acceptance criterion: per-shard sweeps are prefix listings, not
        client-side partitions of a full-keyspace scan (asserted via the
        store's listing counters)."""
        config = FaultManagerConfig(num_shards=4)
        keyspace = make_commit_keyspace(
            "partitioned", num_partitions=4, hash_ring_replicas=config.hash_ring_replicas
        )
        store = CommitSetStore(storage, keyspace=keyspace)
        multicast = MulticastService()
        manager = FaultManager(storage, store, multicast, config=config)
        records = [make_record(i) for i in range(30)]
        for record in records:
            store.write_record(record)

        recovered = manager.scan_commit_set()
        assert {record.txid for record in recovered} == {record.txid for record in records}
        assert store.stats.partition_listings == 4  # one prefix listing per shard
        assert store.stats.full_listings == 0
        # Subsequent sweeps stay prefix-scoped.
        assert manager.scan_commit_set() == []
        assert store.stats.partition_listings == 8
        assert store.stats.full_listings == 0

    def test_flat_store_semantics_unchanged(self, storage):
        store = CommitSetStore(storage)
        assert isinstance(store.keyspace, FlatCommitKeyspace)
        record = make_record(1)
        store.write_record(record)
        assert storage.get(f"aft.commit/{record.txid.to_token()}") is not None
        assert store.list_transaction_ids(partition="flat") == [record.txid]
        assert store.record_delete_keys(record.txid) == [f"aft.commit/{record.txid.to_token()}"]

    def test_partitioned_cluster_recovers_unbroadcast_commits(self, clock):
        """End-to-end: a cluster on the partitioned keyspace commits through
        the partition prefixes and the fault scan still finds what a crashed
        node never broadcast."""
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(
                num_nodes=2,
                standby_nodes=1,
                metadata_plane=MetadataPlaneConfig(keyspace="partitioned"),
            ),
            clock=clock,
        )
        client = cluster.client()
        txid = client.start_transaction()
        owner = client.node_for(txid)
        client.put(txid, "k", b"partitioned-survival")
        client.commit_transaction(txid)
        cluster.fail_node(owner)

        # Node bootstraps legitimately scan the full keyspace; the *sweeps*
        # must not.
        full_before = cluster.commit_store.stats.full_listings
        assert cluster.run_fault_scan() == 1
        survivor = cluster.live_nodes()[0]
        reader = survivor.start_transaction()
        assert survivor.get(reader, "k") == b"partitioned-survival"
        assert cluster.commit_store.stats.partition_listings > 0
        assert cluster.commit_store.stats.full_listings == full_before

    def test_multi_digit_partition_prefixes_do_not_collide(self, storage):
        """Regression: engines match listing prefixes by plain startswith, so
        without a trailing separator partition ``fm-shard-1`` would swallow
        ``fm-shard-10``..``fm-shard-19``'s records."""
        keyspace = make_commit_keyspace("partitioned", num_partitions=12)
        store = CommitSetStore(storage, keyspace=keyspace)
        records = [make_record(i) for i in range(120)]
        for record in records:
            store.write_record(record)
        seen: list[TransactionId] = []
        for partition in store.partitions():
            ids = store.list_transaction_ids(partition=partition)
            assert all(keyspace.partition_for(txid) == partition for txid in ids)
            seen.extend(ids)
        # Disjoint and complete: every record listed exactly once.
        assert len(seen) == len(records)
        assert sorted(seen) == [record.txid for record in records]

    def test_single_partition_keyspace_degenerates(self):
        keyspace = PartitionedCommitKeyspace(fault_manager_partition_ids(1))
        txid = make_record(3).txid
        assert keyspace.partition_for(txid) == "fm-shard-0"
        assert keyspace.parse(keyspace.record_key(txid)) == txid
        assert keyspace.parse("aft.commit/whatever") is None
        flat = FlatCommitKeyspace()
        assert flat.parse(flat.record_key(txid)) == txid
        assert flat.parse(keyspace.record_key(txid)) is None


# --------------------------------------------------------------------------- #
# Hypothesis oracle: sharded stream + lease membership + partitioned keyspace
# converge to the direct/polling/flat singleton state.
# --------------------------------------------------------------------------- #
ORACLE_KEYS = [f"pk{i}" for i in range(5)]
#: Long enough that the lease never lapses mid-run (the clock advances 1s per
#: commit); the terminal detection check advances past it explicitly.
ORACLE_LEASE = 1e6


class _PlaneUniverse:
    """One metadata-plane configuration over its own nodes and storage.

    Both universes share one ``LogicalClock`` with ``auto_step=0`` and are
    driven with *explicit* transaction ids, so the commit ids they mint are
    identical — which is what makes their metadata caches, recovered sets,
    and GC decisions directly comparable.
    """

    def __init__(self, clock, num_nodes, transport, membership_mode, keyspace_mode, num_shards, relay_fanout):
        self.storage = InMemoryStorage()
        self.clock = clock
        config = FaultManagerConfig(num_shards=num_shards)
        keyspace = make_commit_keyspace(
            keyspace_mode, num_partitions=num_shards, hash_ring_replicas=config.hash_ring_replicas
        )
        self.store = CommitSetStore(self.storage, keyspace=keyspace)
        self.membership = make_membership(
            membership_mode, clock=clock, lease_duration=ORACLE_LEASE
        )
        self.multicast = MulticastService(
            stream=make_commit_stream(transport, relay_fanout=relay_fanout)
        )
        self.manager = FaultManager(
            self.storage, self.store, self.multicast, config=config, membership=self.membership
        )
        self.nodes: list[AftNode] = []
        self.local_gcs: list[LocalMetadataGC] = []
        for index in range(num_nodes):
            node = AftNode(
                self.storage,
                commit_store=self.store,
                config=AftConfig(),
                clock=clock,
                node_id=f"n{index}",
            )
            node.start()
            self.multicast.register_node(node)
            self.membership.register(node)
            self.nodes.append(node)
            self.local_gcs.append(LocalMetadataGC(node))

    # ------------------------------------------------------------------ #
    def commit(self, node_index: int, txid: str, keys: list[str]) -> bool:
        node = self.nodes[node_index]
        if not node.is_running:
            return False
        open_txid = node.start_transaction(txid)
        for key in keys:
            node.put(open_txid, key, f"{txid}:{key}".encode())
        node.commit_transaction(open_txid)
        return True

    def round(self) -> None:
        now = self.clock.now()
        for node in self.nodes:
            if node.is_running:
                self.membership.heartbeat(node, now)
        self.multicast.run_once()

    def crash(self, node_index: int) -> None:
        self.nodes[node_index].fail()

    def scan(self) -> list[TransactionId]:
        return sorted(record.txid for record in self.manager.scan_commit_set())

    def local_gc(self) -> list[TransactionId]:
        collected: list[TransactionId] = []
        for node, collector in zip(self.nodes, self.local_gcs):
            if node.is_running:
                collected.extend(collector.run_once())
        return sorted(collected)

    def gc(self) -> list[TransactionId]:
        live = [node for node in self.nodes if node.is_running]
        return self.manager.run_global_gc(live)

    # ------------------------------------------------------------------ #
    def cache_states(self) -> list[dict]:
        return [
            {record.txid: sorted(record.write_set) for record in node.metadata_cache.records()}
            for node in self.nodes
        ]

    def data_keys(self) -> set[str]:
        return set(self.storage.list_keys(prefix="aft.data"))

    def detect_after_lease_expiry(self) -> set[str]:
        for node in self.nodes:
            if node.is_running:
                self.membership.heartbeat(node, self.clock.now())
        return {node.node_id for node in self.manager.detect_failures(self.nodes)}


@st.composite
def plane_interleavings(draw):
    num_nodes = draw(st.integers(min_value=3, max_value=5))
    num_commits = draw(st.integers(min_value=3, max_value=12))
    commits = [
        (
            draw(st.integers(min_value=0, max_value=num_nodes - 1)),
            draw(st.lists(st.sampled_from(ORACLE_KEYS), min_size=1, max_size=3, unique=True)),
        )
        for _ in range(num_commits)
    ]
    crashes = draw(
        st.lists(st.integers(min_value=0, max_value=num_nodes - 1), max_size=2, unique=True)
    )
    actions = draw(
        st.lists(
            st.sampled_from(["commit", "round", "crash", "scan", "local_gc", "gc"]),
            min_size=num_commits,
            max_size=num_commits * 3,
        )
    )
    num_shards = draw(st.integers(min_value=2, max_value=4))
    relay_fanout = draw(st.integers(min_value=1, max_value=3))
    return num_nodes, commits, crashes, actions, num_shards, relay_fanout


class TestPlaneOracle:
    @settings(max_examples=50, deadline=None)
    @given(plane_interleavings())
    def test_new_plane_converges_to_singleton_state(self, interleaving):
        """The tentpole oracle: across random commit/round/crash/scan/GC
        interleavings, the sharded stream + lease membership + partitioned
        keyspace plane produces metadata caches, recovered-commit sets, GC
        deletions, data-key footprints, and (post-lease-expiry) failure
        declarations identical to the direct/polling/flat singleton."""
        num_nodes, commits, crashes, actions, num_shards, relay_fanout = interleaving
        clock = LogicalClock(start=100.0, auto_step=0.0)
        singleton = _PlaneUniverse(
            clock, num_nodes, "direct", "polling", "flat", num_shards=1, relay_fanout=relay_fanout
        )
        plane = _PlaneUniverse(
            clock,
            num_nodes,
            "sharded",
            "lease",
            "partitioned",
            num_shards=num_shards,
            relay_fanout=relay_fanout,
        )
        universes = (singleton, plane)

        commit_queue = list(enumerate(commits))
        crash_queue = list(crashes)
        # Tail guarantees every scripted commit and crash happens, followed by
        # a final round and settling scans.
        tail = (
            ["commit"] * len(commit_queue)
            + ["crash"] * len(crash_queue)
            + ["round", "scan", "scan", "local_gc", "gc"]
        )
        for action in actions + tail:
            if action == "commit":
                if not commit_queue:
                    continue
                index, (node_index, keys) = commit_queue.pop(0)
                clock.advance(1.0)  # distinct commit timestamps, shared by both
                done = [u.commit(node_index, f"t{index}", keys) for u in universes]
                assert done[0] == done[1]
            elif action == "round":
                for universe in universes:
                    universe.round()
            elif action == "crash":
                if not crash_queue:
                    continue
                node_index = crash_queue.pop(0)
                for universe in universes:
                    universe.crash(node_index)
            elif action == "scan":
                assert singleton.scan() == plane.scan()
            elif action == "local_gc":
                assert singleton.local_gc() == plane.local_gc()
            elif action == "gc":
                assert singleton.gc() == plane.gc()

        # Terminal convergence: every node's metadata cache is identical, the
        # durable data footprint is identical, and liveness knowledge agrees
        # for every id still in the Commit Set.
        assert singleton.cache_states() == plane.cache_states()
        assert singleton.data_keys() == plane.data_keys()
        for store_ids in (singleton.store.list_transaction_ids(),):
            for txid in store_ids:
                assert singleton.manager.has_seen(txid) == plane.manager.has_seen(txid)
        assert (
            singleton.manager.global_gc.known_transactions()
            == plane.manager.global_gc.known_transactions()
        )
        # Failure declarations converge once the lease lapses: the lease
        # detector (delayed, observational) ends up agreeing with the
        # ground-truth poll on exactly the crashed nodes.
        clock.advance(ORACLE_LEASE + 1.0)
        assert singleton.detect_after_lease_expiry() == plane.detect_after_lease_expiry()
