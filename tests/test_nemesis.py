"""Nemesis harness tests: schedules, fault injectors, targets, and the
falsely-benign mutant checks.

The two mutant tests are the teeth of this suite: they re-enable known
bugs (the relay hand-off leak via ``reroute_orphans=False``, and a §3.3
write-ordering violation via ``torn_mode="silent"``) and prove the
harness *fails* on them — while the unmodified tree survives a seeded
schedule sweep with zero anomalies from both checkers.
"""

from __future__ import annotations

import json

import pytest

from repro.ids import DATA_PREFIX
from repro.nemesis import (
    FAULT_KINDS,
    FaultAction,
    InprocTarget,
    Schedule,
    SimTarget,
    SocketTarget,
    TornWriteError,
    TornWriteStorage,
    generate_schedule,
    run_schedule,
    shrink_schedule,
)
from repro.nemesis.schedule import HEAL_KINDS
from repro.storage.memory import InMemoryStorage


# ---------------------------------------------------------------------- #
# Schedules
# ---------------------------------------------------------------------- #
class TestSchedule:
    def test_generation_is_deterministic(self):
        a = generate_schedule(7, duration=20.0)
        b = generate_schedule(7, duration=20.0)
        assert a == b
        assert a != generate_schedule(8, duration=20.0)

    def test_actions_sorted_and_heals_paired(self):
        for seed in range(20):
            schedule = generate_schedule(seed, duration=20.0)
            times = [action.at for action in schedule.actions]
            assert times == sorted(times)
            for action in schedule.actions:
                heal_kind = HEAL_KINDS.get(action.kind)
                if heal_kind is None:
                    continue
                heal = next(
                    h
                    for h in schedule.actions
                    if h.kind == heal_kind and h.node_index == action.node_index and h.at >= action.at
                )
                assert heal.at <= 0.85 * schedule.duration

    def test_json_round_trip(self):
        schedule = generate_schedule(3, duration=20.0)
        blob = json.dumps(schedule.to_dict())
        assert Schedule.from_dict(json.loads(blob)) == schedule

    def test_unknown_kinds_respected(self):
        schedule = generate_schedule(5, kinds=("crash",), duration=20.0)
        assert set(schedule.fault_kinds) <= {"crash", "stall_heartbeats", "torn_write"}

    def test_shrink_isolates_failing_atom(self):
        schedule = Schedule(
            seed=0,
            duration=20.0,
            actions=(
                FaultAction(at=3.0, kind="stall_heartbeats", node_index=0),
                FaultAction(at=6.0, kind="resume_heartbeats", node_index=0),
                FaultAction(at=5.0, kind="torn_write"),
                FaultAction(at=9.0, kind="relay_death", node_index=1),
            ),
        )
        fails = lambda s: any(a.kind == "relay_death" for a in s.actions)
        minimal = shrink_schedule(schedule, fails)
        assert [a.kind for a in minimal.actions] == ["relay_death"]

    def test_shrink_keeps_fault_heal_atoms_together(self):
        schedule = Schedule(
            seed=0,
            duration=20.0,
            actions=(
                FaultAction(at=2.0, kind="crash", node_index=0),
                FaultAction(at=4.0, kind="partition", node_index=1),
                FaultAction(at=8.0, kind="heal_partition", node_index=1),
            ),
        )
        fails = lambda s: any(a.kind == "partition" for a in s.actions)
        minimal = shrink_schedule(schedule, fails)
        assert [a.kind for a in minimal.actions] == ["partition", "heal_partition"]


# ---------------------------------------------------------------------- #
# Torn-write injector
# ---------------------------------------------------------------------- #
class TestTornWriteStorage:
    def _data(self, key: str) -> str:
        return f"{DATA_PREFIX}/{key}/1.0|abc"

    def test_abort_mode_tears_and_raises(self):
        storage = TornWriteStorage(InMemoryStorage(), mode="abort")
        storage.arm()
        items = {self._data("a"): b"1", self._data("b"): b"2", "aft.commit/x": b"r"}
        with pytest.raises(TornWriteError):
            storage.multi_put(items)
        assert storage.inner.get(self._data("a")) == b"1"
        assert storage.inner.get(self._data("b")) is None
        assert not storage.armed and storage.torn_writes == 1
        # Disarmed: the next batch goes through whole.
        storage.multi_put(items)
        assert storage.inner.get(self._data("b")) == b"2"

    def test_silent_mode_drops_tail_and_succeeds(self):
        storage = TornWriteStorage(InMemoryStorage(), mode="silent")
        storage.arm()
        storage.multi_put({self._data("a"): b"1", self._data("b"): b"2"})
        assert storage.inner.get(self._data("a")) == b"1"
        assert storage.inner.get(self._data("b")) is None
        assert storage.torn_writes == 1

    def test_non_data_writes_pass_through(self):
        storage = TornWriteStorage(InMemoryStorage(), mode="abort")
        storage.arm()
        storage.multi_put({"aft.commit/x": b"r", "aft.commit/y": b"s"})
        assert storage.inner.get("aft.commit/x") == b"r"
        assert storage.armed  # only data writes can tear

    def test_single_put_path_tears_second_data_write(self):
        storage = TornWriteStorage(InMemoryStorage(), mode="abort")
        storage.arm()
        storage.put(self._data("a"), b"1")
        with pytest.raises(TornWriteError):
            storage.put(self._data("b"), b"2")
        assert storage.inner.get(self._data("a")) == b"1"
        assert storage.inner.get(self._data("b")) is None


# ---------------------------------------------------------------------- #
# Clean sweeps (the unmodified tree must survive)
# ---------------------------------------------------------------------- #
class TestCleanSweeps:
    def test_inproc_survives_twenty_seeded_schedules(self):
        failures = []
        for seed in range(20):
            schedule = generate_schedule(
                seed, kinds=InprocTarget.supported_kinds, duration=20.0
            )
            result = run_schedule(InprocTarget(), schedule)
            if not result.ok:
                failures.append((seed, result.verdict()))
        assert failures == []

    def test_inproc_result_is_json_serializable(self):
        schedule = generate_schedule(0, kinds=("crash",), duration=20.0)
        result = run_schedule(InprocTarget(), schedule)
        blob = json.dumps(result.as_dict())
        assert json.loads(blob)["ok"] is True

    def test_crash_schedule_yields_recovery_samples(self):
        schedule = Schedule(
            seed=4, duration=20.0, actions=(FaultAction(at=5.0, kind="crash", node_index=1),)
        )
        result = run_schedule(InprocTarget(), schedule)
        assert result.ok
        assert result.recovery_samples
        assert result.recovery_p99 >= 0.0

    def test_simulator_target_runs_crash_schedule(self):
        schedule = generate_schedule(2, kinds=SimTarget.supported_kinds, duration=20.0)
        result = run_schedule(SimTarget(num_clients=3, requests_per_client=30), schedule)
        assert result.ok
        assert result.cycles["violations"] == 0


@pytest.mark.slow
class TestSocketSweeps:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_socket_cluster_survives_seeded_schedule(self, seed):
        schedule = generate_schedule(
            seed, kinds=SocketTarget.supported_kinds, duration=20.0
        )
        result = run_schedule(SocketTarget(), schedule)
        assert result.ok, result.verdict()
        assert result.committed > 0


# ---------------------------------------------------------------------- #
# Falsely-benign mutants (the harness must catch re-introduced bugs)
# ---------------------------------------------------------------------- #
class TestMutantsAreCaught:
    RELAY_SCHEDULE = Schedule(
        seed=0,
        duration=20.0,
        actions=(FaultAction(at=18.0, kind="relay_death", node_index=1),),
    )
    TORN_SCHEDULE = Schedule(
        seed=2, duration=20.0, actions=(FaultAction(at=5.0, kind="torn_write"),)
    )

    def test_relay_leak_mutant_fails_convergence(self):
        """Reverting the relay reroute fix leaks the dead relay's subtree;
        a death aimed at the final broadcast round leaves those replicas
        permanently stale (the fault manager's feed marked the records seen,
        so anti-entropy never re-broadcasts them)."""
        result = run_schedule(InprocTarget(reroute_orphans=False), self.RELAY_SCHEDULE)
        assert not result.ok
        assert result.convergence_violations

    def test_relay_schedule_passes_on_fixed_tree(self):
        result = run_schedule(InprocTarget(reroute_orphans=True), self.RELAY_SCHEDULE)
        assert result.ok, result.verdict()

    def test_relay_mutant_shrinks_to_minimal_schedule(self):
        noisy = Schedule(
            seed=0,
            duration=20.0,
            actions=self.RELAY_SCHEDULE.actions
            + (FaultAction(at=4.0, kind="torn_write"),),
        )
        fails = lambda s: not run_schedule(InprocTarget(reroute_orphans=False), s).ok
        assert fails(noisy)
        minimal = shrink_schedule(noisy, fails)
        assert minimal.actions  # non-empty reproducing artifact
        assert [a.kind for a in minimal.actions] == ["relay_death"]
        assert json.dumps(minimal.to_dict())  # uploadable as-is

    def test_silent_torn_write_mutant_fails_durability_audit(self):
        """A torn write that reports success breaks §3.3: a commit record
        lands whose data never did.  The convergence probe's durability
        audit (every advertised version must have durable data) flags it."""
        result = run_schedule(InprocTarget(torn_mode="silent"), self.TORN_SCHEDULE)
        assert not result.ok
        assert any("torn write" in v for v in result.convergence_violations)

    def test_abort_torn_write_is_tolerated(self):
        """The same tear in ``abort`` mode is the failure AFT is engineered
        for: the commit never acks, no record lands, nothing is visible."""
        result = run_schedule(InprocTarget(torn_mode="abort"), self.TORN_SCHEDULE)
        assert result.ok, result.verdict()
        assert result.failed >= 1  # the torn transaction failed loudly
