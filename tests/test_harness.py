"""Tests for the experiment harness (reporting + small experiment runs)."""

from __future__ import annotations


from repro.harness import paper_data
from repro.harness.experiments import (
    run_end_to_end_experiment,
    run_io_latency_experiment,
    run_read_write_ratio_experiment,
    run_transaction_length_experiment,
)
from repro.harness.report import format_rows, format_table, ratio


class TestReporting:
    def test_format_table_renders_all_rows(self):
        text = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]], title="demo")
        assert "demo" in text
        assert "| a" in text and "| 2.5" in text
        assert text.count("\n") == 4  # title + header + separator + 2 rows - 1

    def test_format_rows_selects_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_rows(rows, ["a", "c"])
        assert "b" not in text.splitlines()[0]

    def test_ratio(self):
        assert ratio(2.0, 4.0) == 0.5
        assert ratio(0.0, 0.0) == 1.0
        assert ratio(1.0, 0.0) == float("inf")


class TestPaperData:
    def test_every_figure2_configuration_is_present(self):
        configs = {config for config, _ in paper_data.FIGURE2_IO_LATENCY}
        assert configs == {"aft_sequential", "aft_batch", "dynamodb_sequential", "dynamodb_batch"}

    def test_table2_covers_all_systems(self):
        assert set(paper_data.TABLE2_ANOMALIES) == {"aft", "s3", "dynamodb", "dynamodb_txn", "redis"}
        assert paper_data.TABLE2_ANOMALIES["aft"] == (0, 0)


class TestExperiments:
    """Smoke-scale runs of the harness functions (full scale lives in benchmarks/)."""

    def test_io_latency_experiment_shape(self):
        rows = run_io_latency_experiment(num_requests=50, write_counts=(1, 5))
        assert len(rows) == 8
        batch_10 = next(r for r in rows if r["configuration"] == "dynamodb_batch" and r["writes"] == 5)
        sequential_10 = next(
            r for r in rows if r["configuration"] == "dynamodb_sequential" and r["writes"] == 5
        )
        assert batch_10["median_ms"] < sequential_10["median_ms"]
        aft_seq_1 = next(r for r in rows if r["configuration"] == "aft_sequential" and r["writes"] == 1)
        assert aft_seq_1["median_ms"] > 0
        assert all("paper_median_ms" in row for row in rows)

    def test_end_to_end_experiment_rows(self):
        results = run_end_to_end_experiment(
            num_clients=4, requests_per_client=20, backends=("dynamodb",)
        )
        labels = {row["configuration"] for row in results.latency_rows}
        assert labels == {"dynamodb/plain", "dynamodb/transactional", "dynamodb/aft"}
        aft_row = next(r for r in results.anomaly_rows if r["system"].startswith("aft"))
        assert aft_row["ryw_anomalies"] == 0
        assert aft_row["fr_anomalies"] == 0
        plain_row = next(r for r in results.anomaly_rows if r["system"] == "dynamodb/plain")
        assert plain_row["transactions"] == 80

    def test_read_write_ratio_rows(self):
        rows = run_read_write_ratio_experiment(
            read_fractions=(0.0, 1.0), backends=("redis",), num_clients=3, requests_per_client=15
        )
        assert len(rows) == 2
        assert all(row["median_ms"] > 0 for row in rows)

    def test_transaction_length_scales_roughly_linearly(self):
        rows = run_transaction_length_experiment(
            lengths=(1, 4), backends=("redis",), num_clients=3, requests_per_client=15
        )
        short = next(r for r in rows if r["functions"] == 1)
        long = next(r for r in rows if r["functions"] == 4)
        assert 2.0 < long["median_ms"] / short["median_ms"] < 6.0
