"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.commit_set import CommitSetStore
from repro.core.node import AftNode
from repro.storage.memory import InMemoryStorage


@pytest.fixture
def clock() -> LogicalClock:
    """A deterministic clock that advances a little on every read."""
    return LogicalClock(start=1000.0, auto_step=0.001)


@pytest.fixture
def storage() -> InMemoryStorage:
    return InMemoryStorage()


@pytest.fixture
def commit_store(storage: InMemoryStorage) -> CommitSetStore:
    return CommitSetStore(storage)


@pytest.fixture
def node(storage: InMemoryStorage, clock: LogicalClock) -> AftNode:
    """A started single AFT node over in-memory storage."""
    aft_node = AftNode(storage, config=AftConfig(), clock=clock, node_id="test-node")
    aft_node.start()
    return aft_node


@pytest.fixture
def node_factory(storage: InMemoryStorage, clock: LogicalClock):
    """Create additional nodes sharing the same storage engine."""

    def factory(node_id: str = "extra-node", config: AftConfig | None = None) -> AftNode:
        extra = AftNode(storage, config=config or AftConfig(), clock=clock, node_id=node_id)
        extra.start()
        return extra

    return factory
