"""Tests for distributed AFT deployments: cluster, load balancer, client routing."""

from __future__ import annotations

import pytest

from repro.clock import LogicalClock
from repro.config import AftConfig, ClusterConfig
from repro.core.cluster import AftCluster
from repro.core.load_balancer import LeastLoadedLoadBalancer, RoundRobinLoadBalancer
from repro.core.node import AftNode
from repro.errors import NoAvailableNodeError, UnknownTransactionError
from repro.storage.memory import InMemoryStorage


@pytest.fixture
def cluster():
    return AftCluster(
        InMemoryStorage(),
        cluster_config=ClusterConfig(num_nodes=3),
        node_config=AftConfig(),
        clock=LogicalClock(start=0.0, auto_step=0.001),
    )


class TestLoadBalancers:
    def _nodes(self, count=3):
        storage = InMemoryStorage()
        clock = LogicalClock(auto_step=0.001)
        nodes = [AftNode(storage, clock=clock, node_id=f"n{i}") for i in range(count)]
        for node in nodes:
            node.start()
        return nodes

    def test_round_robin_cycles_through_nodes(self):
        nodes = self._nodes(3)
        balancer = RoundRobinLoadBalancer(nodes)
        chosen = [balancer.next_node() for _ in range(6)]
        assert chosen == nodes + nodes

    def test_round_robin_skips_failed_nodes(self):
        nodes = self._nodes(3)
        nodes[1].fail()
        balancer = RoundRobinLoadBalancer(nodes)
        chosen = {balancer.next_node().node_id for _ in range(6)}
        assert chosen == {"n0", "n2"}

    def test_round_robin_with_no_nodes_raises(self):
        balancer = RoundRobinLoadBalancer()
        with pytest.raises(NoAvailableNodeError):
            balancer.next_node()

    def test_round_robin_with_all_failed_raises(self):
        nodes = self._nodes(2)
        for node in nodes:
            node.fail()
        balancer = RoundRobinLoadBalancer(nodes)
        with pytest.raises(NoAvailableNodeError):
            balancer.next_node()

    def test_least_loaded_prefers_idle_nodes(self):
        nodes = self._nodes(2)
        busy, idle = nodes
        for _ in range(3):
            busy.start_transaction()
        balancer = LeastLoadedLoadBalancer(nodes)
        assert balancer.next_node() is idle

    def test_add_and_remove_node(self):
        nodes = self._nodes(1)
        balancer = RoundRobinLoadBalancer(nodes)
        extra = self._nodes(1)[0]
        balancer.add_node(extra)
        assert len(balancer.nodes) == 2
        balancer.remove_node(extra)
        assert balancer.nodes == nodes


class TestClusterBasics:
    def test_cluster_creates_requested_nodes(self, cluster):
        assert len(cluster.nodes) == 3
        assert all(node.is_running for node in cluster.nodes)

    def test_commits_become_visible_cluster_wide_after_multicast(self, cluster):
        client = cluster.client()
        with client.transaction() as txn:
            txn.put("k", b"v")
            txn.put("l", b"w")
        cluster.run_multicast_round()

        # Every node can now serve the data, whichever one the LB picks next.
        for _ in range(3):
            with client.transaction() as txn:
                assert txn.get("k") == b"v"
                assert txn.get("l") == b"w"

    def test_transactions_are_pinned_to_one_node(self, cluster):
        client = cluster.client()
        txid = client.start_transaction()
        owner = client.node_for(txid)
        client.put(txid, "k", b"v")
        assert client.node_for(txid) is owner
        client.commit_transaction(txid)
        with pytest.raises(UnknownTransactionError):
            client.node_for(txid)

    def test_unknown_transaction_routing_raises(self, cluster):
        client = cluster.client()
        with pytest.raises(UnknownTransactionError):
            client.get("not-routed", "k")

    def test_session_abort_on_exception(self, cluster):
        client = cluster.client()
        with pytest.raises(RuntimeError):
            with client.transaction() as txn:
                txn.put("k", b"should-be-discarded")
                raise RuntimeError("function crashed")
        cluster.run_multicast_round()
        with client.transaction() as txn:
            assert txn.get("k") is None


class TestClusterFailureHandling:
    def test_failed_node_is_replaced_and_bootstrapped(self, cluster):
        client = cluster.client()
        with client.transaction() as txn:
            txn.put("durable", b"value")
        cluster.run_multicast_round()

        victim = cluster.nodes[0]
        cluster.fail_node(victim)
        replacements = cluster.replace_failed_nodes()
        assert len(replacements) == 1
        assert victim not in cluster.nodes
        assert len(cluster.nodes) == 3

        # The replacement warmed its metadata cache from the Commit Set and
        # can serve the old data immediately.
        replacement = replacements[0]
        reader = replacement.start_transaction()
        assert replacement.get(reader, "durable") == b"value"

    def test_commit_on_surviving_nodes_continues_during_failure(self, cluster):
        client = cluster.client()
        cluster.fail_node(cluster.nodes[0])
        with client.transaction() as txn:
            txn.put("k", b"still-works")
        assert cluster.stats.nodes_failed == 1

    def test_fault_scan_recovers_unbroadcast_commit(self, cluster):
        client = cluster.client()
        txid = client.start_transaction()
        owner = client.node_for(txid)
        client.put(txid, "k", b"survives")
        client.commit_transaction(txid)
        # The owner dies before any multicast round.
        cluster.fail_node(owner)
        cluster.run_fault_scan()

        survivor = next(node for node in cluster.live_nodes())
        reader = survivor.start_transaction()
        assert survivor.get(reader, "k") == b"survives"

    def test_tick_runs_all_background_work(self, cluster):
        client = cluster.client()
        with client.transaction() as txn:
            txn.put("k", b"v")
        cluster.tick()
        assert cluster.stats.multicast_rounds == 1
        assert cluster.stats.local_gc_rounds == 1
        assert cluster.stats.global_gc_rounds == 1
        assert cluster.stats.fault_scans == 1

    def test_shutdown_stops_all_nodes(self, cluster):
        cluster.shutdown()
        assert all(not node.is_running for node in cluster.nodes)


class TestClusterGarbageCollectionFlow:
    def test_end_to_end_gc_removes_superseded_data(self, cluster):
        client = cluster.client()
        for value in (b"v1", b"v2", b"v3"):
            with client.transaction() as txn:
                txn.put("hot-key", value)
        # Propagate, locally collect, then globally collect.
        for node in cluster.nodes:
            node.forget_finished_transactions()
        cluster.run_multicast_round()
        cluster.run_local_gc()
        deleted = cluster.run_global_gc()
        assert len(deleted) >= 1

        with client.transaction() as txn:
            assert txn.get("hot-key") == b"v3"


class TestBackgroundThreads:
    def test_background_threads_start_and_stop(self):
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(num_nodes=1),
            node_config=AftConfig(
                multicast_interval=0.01,
                gc_interval=0.01,
                global_gc_interval=0.01,
                fault_scan_interval=0.01,
            ),
        )
        client = cluster.client()
        with client.transaction() as txn:
            txn.put("k", b"v")
        cluster.start_background()
        import time

        time.sleep(0.15)
        cluster.stop_background()
        cluster.shutdown()
        assert cluster.stats.multicast_rounds >= 1
