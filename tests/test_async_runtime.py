"""Tests for the async IO runtime (PR 6).

Three properties anchor the runtime:

* **parity** — the async core and the sync facade are the same protocol:
  one plan on identical engines yields identical values, stage latencies,
  request counts, and stats counters either way;
* **ordering** — §3.3 survives the fan-out: a stage is a barrier, so no
  commit record is ever issued before the whole data stage finished, even
  with requests overlapping inside a stage;
* **cancellation** — a client timeout mid-plan kills the transaction, not
  the invariant: the commit-record stage simply never starts, so storage
  holds at most invisible (unreferenced) data.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import runtime
from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.io_plan import IOPlan
from repro.core.node import AftNode
from repro.core.transaction import TransactionStatus
from repro.ids import is_commit_record_key
from repro.storage.dynamodb import SimulatedDynamoDB
from repro.storage.latency import ConstantLatency, ZeroLatency
from repro.storage.latency_injected import LatencyInjectedStorage
from repro.storage.memory import InMemoryStorage
from repro.storage.rediscluster import SimulatedRedisCluster
from repro.storage.s3 import SimulatedS3


def make_engine(kind: str):
    clock = LogicalClock(start=10.0, auto_step=0.001)
    latency = ConstantLatency(0.004)
    if kind == "memory":
        return InMemoryStorage(latency_model=latency, clock=clock)
    if kind == "dynamodb":
        return SimulatedDynamoDB(latency_model=latency, clock=clock, seed=3)
    if kind == "s3":
        return SimulatedS3(latency_model=latency, clock=clock, seed=3)
    if kind == "redis":
        return SimulatedRedisCluster(latency_model=latency, clock=clock, shard_count=2)
    raise ValueError(kind)


def commit_shaped_plan() -> IOPlan:
    data = {f"data/k{i}": f"v{i}".encode() for i in range(7)}
    records = {"commit/r1": b"record"}
    return IOPlan.commit(data, records)


class TestSyncAsyncParity:
    """One plan, two execution modes, identical observable outcomes."""

    @pytest.mark.parametrize("kind", ["memory", "dynamodb", "s3", "redis"])
    def test_plan_results_and_stats_match(self, kind):
        sync_engine = make_engine(kind)
        async_engine = make_engine(kind)

        sync_result = sync_engine.execute_plan(commit_shaped_plan())
        async_result = asyncio.run(async_engine.execute_plan_async(commit_shaped_plan()))

        assert async_result.values == sync_result.values
        assert async_result.stage_latencies == sync_result.stage_latencies
        assert async_result.requests_issued == sync_result.requests_issued
        assert async_result.total_latency == sync_result.total_latency
        assert async_engine.stats.snapshot() == sync_engine.stats.snapshot()

    @pytest.mark.parametrize("kind", ["memory", "s3"])
    def test_read_plan_parity(self, kind):
        sync_engine = make_engine(kind)
        async_engine = make_engine(kind)
        for engine in (sync_engine, async_engine):
            engine.multi_put({f"k{i}": b"x" * (i + 1) for i in range(5)})

        plan = IOPlan.reads([f"k{i}" for i in range(5)], name="parity-read")
        sync_result = sync_engine.execute_plan(plan)
        plan2 = IOPlan.reads([f"k{i}" for i in range(5)], name="parity-read")
        async_result = asyncio.run(async_engine.execute_plan_async(plan2))

        assert async_result.values == sync_result.values
        assert async_result.stage_latencies == sync_result.stage_latencies
        assert async_engine.stats.snapshot() == sync_engine.stats.snapshot()

    def test_node_level_read_parity(self):
        def build():
            node = AftNode(
                InMemoryStorage(),
                config=AftConfig(enable_data_cache=False),
                clock=LogicalClock(start=50.0, auto_step=0.001),
                node_id="parity-node",
            )
            node.start()
            txid = node.start_transaction("seed")
            for i in range(6):
                node.put(txid, f"key-{i}", f"value-{i}".encode())
            node.commit_transaction(txid)
            return node

        keys = [f"key-{i}" for i in range(6)]
        sync_node = build()
        t1 = sync_node.start_transaction("read")
        sync_values = sync_node.get_many(t1, keys)

        async_node = build()
        t2 = async_node.start_transaction("read")
        async_values = asyncio.run(async_node.get_many_async(t2, keys))

        assert async_values == sync_values
        assert async_node.stats.storage_value_reads == sync_node.stats.storage_value_reads


class TestWallClockOverlap:
    """Wall-clock engines really overlap requests — in both facades."""

    def overlap_engine(self, sleep_s: float = 0.02) -> LatencyInjectedStorage:
        # SimulatedS3 has no batch APIs, so an 8-key stage fans out as 8
        # request groups; the injected sleeps are real.
        inner = SimulatedS3(latency_model=ZeroLatency(), clock=LogicalClock(auto_step=1e-6))
        return LatencyInjectedStorage(inner, injected=ConstantLatency(sleep_s))

    def test_sync_facade_overlaps_groups(self):
        engine = self.overlap_engine()
        items = {f"k{i}": b"v" for i in range(8)}
        start = time.monotonic()
        engine.execute_plan(IOPlan.writes(items, name="overlap"))
        elapsed = time.monotonic() - start
        # Serial would sleep 8 x 20 ms = 160 ms; overlapped is ~20-40 ms.
        assert elapsed < 0.120
        assert engine.stats.writes == 8

    def test_async_core_overlaps_groups(self):
        engine = self.overlap_engine()
        items = {f"k{i}": b"v" for i in range(8)}

        async def run():
            start = time.monotonic()
            await engine.execute_plan_async(IOPlan.writes(items, name="overlap"))
            return time.monotonic() - start

        assert asyncio.run(run()) < 0.120

    def test_io_concurrency_bounds_the_fanout(self):
        engine = self.overlap_engine(sleep_s=0.02)
        engine.io_concurrency = 1
        items = {f"k{i}": b"v" for i in range(4)}
        start = time.monotonic()
        engine.execute_plan(IOPlan.writes(items, name="bounded"))
        elapsed = time.monotonic() - start
        # A concurrency bound of one degenerates to the serial sum.
        assert elapsed >= 0.065


class RecordingStorage(LatencyInjectedStorage):
    """Timestamps the completion of every put for ordering assertions."""

    def __init__(self, sleep_s: float = 0.01) -> None:
        inner = SimulatedS3(latency_model=ZeroLatency(), clock=LogicalClock(auto_step=1e-6))
        super().__init__(inner, injected=ConstantLatency(sleep_s))
        self.completions: list[tuple[str, float]] = []
        self._completions_lock = threading.Lock()

    def put(self, key, value):
        super().put(key, value)
        with self._completions_lock:
            self.completions.append((key, time.monotonic()))


class TestWriteOrderingUnderFanout:
    def test_commit_record_lands_after_all_data(self):
        engine = RecordingStorage()
        data = {f"data/k{i}": b"v" for i in range(6)}
        records = {"commit/r": b"record"}

        asyncio.run(engine.execute_plan_async(IOPlan.commit(data, records)))

        data_times = [t for key, t in engine.completions if key in data]
        record_times = [t for key, t in engine.completions if key in records]
        assert len(data_times) == 6 and len(record_times) == 1
        # The stage barrier: every data write completed before the record
        # write even started (completion-before-completion is implied).
        assert max(data_times) <= min(record_times)


class TestCancellation:
    def make_slow_node(self, sleep_s: float = 0.05) -> tuple[AftNode, RecordingStorage]:
        engine = RecordingStorage(sleep_s=sleep_s)
        node = AftNode(
            engine,
            config=AftConfig(enable_data_cache=False),
            node_id="cancel-node",
        )
        node.start()
        return node, engine

    def test_client_timeout_mid_commit_leaves_no_record(self):
        node, engine = self.make_slow_node()

        async def run():
            txid = node.start_transaction("doomed")
            for i in range(4):
                node.put(txid, f"key-{i}", b"value")
            with pytest.raises(asyncio.TimeoutError):
                # The data stage alone sleeps ~50 ms; cancel long before.
                await asyncio.wait_for(node.commit_transaction_async(txid), timeout=0.01)
            return txid

        txid = asyncio.run(run())
        # Let any already-dispatched data writes drain, then check: the
        # record stage never ran, so the transaction is invisible.
        time.sleep(0.3)
        assert not any(is_commit_record_key(key) for key, _ in engine.completions)
        transaction = node._transactions[txid]
        assert transaction.status is not TransactionStatus.COMMITTED


class TestAsyncGroupCommit:
    def make_group_node(self) -> AftNode:
        node = AftNode(
            InMemoryStorage(),
            config=AftConfig(
                enable_group_commit=True,
                group_commit_window=0.005,
                group_commit_max_txns=8,
            ),
            node_id="async-gc-node",
        )
        node.start()
        return node

    def test_concurrent_commits_share_flushes(self):
        node = self.make_group_node()

        async def one(i: int):
            txid = node.start_transaction(f"t{i}")
            await node.put_async(txid, f"key-{i}", b"v")
            return await node.commit_transaction_async(txid)

        async def run():
            return await asyncio.gather(*[one(i) for i in range(8)])

        commit_ids = asyncio.run(run())
        assert len(commit_ids) == 8
        assert node.stats.group_commit_batched_txns == 8
        # Coalescing happened: strictly fewer flushes than transactions.
        assert 0 < node.stats.group_commits < 8
        # All committed data is durably visible afterwards.
        txid = node.start_transaction("check")
        values = node.get_many(txid, [f"key-{i}" for i in range(8)])
        assert all(value == b"v" for value in values.values())

    def test_commit_transactions_async_batches(self):
        node = self.make_group_node()

        async def run():
            txids = []
            for i in range(5):
                txid = node.start_transaction(f"b{i}")
                await node.put_async(txid, f"bk-{i}", b"w")
                txids.append(txid)
            return await node.commit_transactions_async(txids)

        results = asyncio.run(run())
        assert len(results) == 5
        assert node.stats.group_commit_batched_txns == 5


class TestLatencyInjectedStorage:
    def make(self, sleep_s: float = 0.0) -> LatencyInjectedStorage:
        return LatencyInjectedStorage(InMemoryStorage(), injected=ConstantLatency(sleep_s))

    def test_full_engine_surface_delegates(self):
        engine = self.make()
        assert engine.wall_clock_io
        # Batch capabilities mirror the inner engine.
        assert engine.supports_batch_writes and engine.supports_batch_reads

        engine.put("a/1", b"x")
        engine.multi_put({"a/2": b"y", "b/1": b"z"})
        assert engine.get("a/1") == b"x"
        fetched = engine.multi_get(["a/2", "b/1", "missing"])
        assert fetched["a/2"] == b"y" and fetched["b/1"] == b"z"
        assert fetched.get("missing") is None
        assert sorted(engine.list_keys("a/")) == ["a/1", "a/2"]
        assert engine.size() == 3
        engine.delete("a/1")
        engine.multi_delete(["a/2", "b/1"])
        assert engine.size() == 0
        assert engine.stats.writes == 1 and engine.stats.batch_writes == 1
        assert engine.stats.reads == 1 and engine.stats.batch_reads == 1
        # One point delete + one multi_delete request (3 items total).
        assert engine.stats.deletes == 2 and engine.stats.items_deleted == 3
        assert engine.stats.lists == 1

    def test_injected_latency_really_sleeps(self):
        engine = self.make(sleep_s=0.02)
        start = time.monotonic()
        engine.put("k", b"v")
        assert time.monotonic() - start >= 0.015
        # Charged latency stays zero: the cost ledger sees nothing.
        assert engine.latency_model.sample("write", 1, 1) == 0.0


class TestRuntimeHelpers:
    def test_configure_io_executor_validates(self):
        with pytest.raises(ValueError):
            runtime.configure_io_executor(0)

    def test_worker_flag_marks_pool_threads(self):
        assert not runtime.in_io_worker()
        flags = runtime.run_blocking_group([runtime.in_io_worker] * 3)
        assert all(flags)
        assert not runtime.in_io_worker()

    def test_nested_dispatch_runs_inline(self):
        def outer():
            # A nested fan-out from inside a worker must not wait on the
            # same pool it occupies — it degrades to inline execution.
            return runtime.run_blocking_group([lambda: threading.current_thread().name] * 2)

        (names,) = runtime.run_blocking_group([outer])
        assert len(set(names)) == 1  # both inner thunks ran on the one worker

    def test_config_validates_io_concurrency(self):
        with pytest.raises(ValueError):
            AftConfig(io_concurrency=0)
        config = AftConfig(io_concurrency=4, async_runtime=True)
        assert config.as_dict()["io_concurrency"] == 4
        assert config.as_dict()["async_runtime"] is True

    def test_node_applies_io_concurrency_to_engines(self):
        engine = InMemoryStorage()
        node = AftNode(engine, config=AftConfig(io_concurrency=3), node_id="knob-node")
        assert engine.io_concurrency == 3
        assert engine.effective_io_concurrency == 3
        assert node.config.io_concurrency == 3
