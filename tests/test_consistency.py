"""Tests for tagged values and the anomaly checker."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.consistency.checker import AnomalyChecker, TransactionLog
from repro.consistency.metadata import TaggedValue
from repro.ids import TransactionId


def tag(ts: float, uuid: str, cowritten: set[str] = frozenset(), payload: bytes = b"p") -> TaggedValue:
    return TaggedValue(payload=payload, timestamp=ts, uuid=uuid, cowritten=frozenset(cowritten))


class TestTaggedValue:
    def test_round_trip(self):
        original = tag(1.5, "abc", {"k", "l"}, payload=b"\x00\xff binary")
        restored = TaggedValue.from_bytes(original.to_bytes())
        assert restored == original
        assert restored.version == TransactionId(1.5, "abc")

    def test_try_from_bytes_handles_untagged_values(self):
        assert TaggedValue.try_from_bytes(None) is None
        assert TaggedValue.try_from_bytes(b"not json at all") is None
        assert TaggedValue.try_from_bytes(b'{"missing": "fields"}') is None

    def test_overhead_is_modest(self):
        payload = b"x" * 4096
        tagged = tag(1.0, "u" * 32, {"key-1", "key-2", "key-3"}, payload=payload)
        # The paper reports roughly 70 bytes of metadata on a 4 KB payload;
        # base64 framing makes ours a bit larger but it stays small.
        assert tagged.overhead_bytes() < 1500

    @given(
        st.binary(max_size=64),
        st.floats(min_value=0, max_value=1e6),
        st.sets(st.text(alphabet="abcxyz", min_size=1, max_size=4), max_size=5),
    )
    def test_round_trip_arbitrary(self, payload, ts, cowritten):
        original = TaggedValue(payload=payload, timestamp=ts, uuid="uid", cowritten=frozenset(cowritten))
        assert TaggedValue.from_bytes(original.to_bytes()) == original


class TestRywAnomalies:
    def test_reading_own_version_is_clean(self):
        log = TransactionLog(txn_uuid="t1")
        version = TransactionId(5.0, "t1")
        log.record_write("k", version, op_index=0)
        log.record_read("k", tag(5.0, "t1"), op_index=1)
        checker = AnomalyChecker()
        assert not checker.transaction_has_ryw_anomaly(log)

    def test_reading_foreign_version_after_own_write_is_an_anomaly(self):
        log = TransactionLog(txn_uuid="t1")
        log.record_write("k", TransactionId(5.0, "t1"), op_index=0)
        log.record_read("k", tag(4.0, "other"), op_index=1)
        checker = AnomalyChecker()
        assert checker.transaction_has_ryw_anomaly(log)

    def test_missing_read_after_own_write_is_an_anomaly(self):
        log = TransactionLog(txn_uuid="t1")
        log.record_write("k", TransactionId(5.0, "t1"), op_index=0)
        log.record_read("k", None, op_index=1)
        checker = AnomalyChecker()
        assert checker.transaction_has_ryw_anomaly(log)

    def test_read_before_write_is_not_checked(self):
        log = TransactionLog(txn_uuid="t1")
        log.record_read("k", tag(1.0, "other"), op_index=0)
        log.record_write("k", TransactionId(5.0, "t1"), op_index=1)
        checker = AnomalyChecker()
        assert not checker.transaction_has_ryw_anomaly(log)


class TestFracturedReads:
    def test_partial_view_of_a_cowritten_pair_is_fractured(self):
        """T_i wrote {k, l}; reading new k with old l is a fractured read."""
        log = TransactionLog(txn_uuid="reader")
        log.record_read("k", tag(5.0, "writer", {"k", "l"}), op_index=0)
        log.record_read("l", tag(1.0, "older", {"l"}), op_index=1)
        checker = AnomalyChecker()
        assert checker.transaction_has_fractured_read(log)

    def test_consistent_view_is_clean(self):
        log = TransactionLog(txn_uuid="reader")
        log.record_read("k", tag(5.0, "writer", {"k", "l"}), op_index=0)
        log.record_read("l", tag(5.0, "writer", {"k", "l"}), op_index=1)
        checker = AnomalyChecker()
        assert not checker.transaction_has_fractured_read(log)

    def test_newer_sibling_is_allowed(self):
        log = TransactionLog(txn_uuid="reader")
        log.record_read("k", tag(5.0, "writer", {"k", "l"}), op_index=0)
        log.record_read("l", tag(7.0, "newer", {"l"}), op_index=1)
        checker = AnomalyChecker()
        assert not checker.transaction_has_fractured_read(log)

    def test_repeatable_read_violation_counts_as_fractured(self):
        log = TransactionLog(txn_uuid="reader")
        log.record_read("k", tag(1.0, "a", {"k"}), op_index=0)
        log.record_read("k", tag(2.0, "b", {"k"}), op_index=1)
        checker = AnomalyChecker()
        assert checker.transaction_has_fractured_read(log)

    def test_own_writes_are_excluded_from_fracture_checks(self):
        log = TransactionLog(txn_uuid="t1")
        log.record_write("k", TransactionId(9.0, "t1"), op_index=0)
        log.record_read("k", tag(9.0, "t1", {"k", "l"}), op_index=1)
        log.record_read("l", tag(1.0, "old", {"l"}), op_index=2)
        checker = AnomalyChecker()
        assert not checker.transaction_has_fractured_read(log)

    def test_commit_order_override_prevents_false_positives(self):
        """A transaction that started earlier but committed later must be
        ordered by its commit id, not its write timestamps (the AFT case)."""
        checker = AnomalyChecker()
        # writer-B wrote l at t=12 and committed at 15; writer-A wrote k at
        # t=10 but committed at 20 (so A is *newer* in commit order).
        checker.register_commit_order("writer-A", TransactionId(20.0, "writer-A"))
        checker.register_commit_order("writer-B", TransactionId(15.0, "writer-B"))
        log = TransactionLog(txn_uuid="reader")
        log.record_read("l", tag(12.0, "writer-B", {"k", "l"}), op_index=0)
        log.record_read("k", tag(10.0, "writer-A", {"k"}), op_index=1)
        assert not checker.transaction_has_fractured_read(log)
        # Without the commit-order registration the same history is flagged.
        naive = AnomalyChecker()
        assert naive.transaction_has_fractured_read(log)


class TestAggregateCounts:
    def test_counts_are_per_transaction(self):
        checker = AnomalyChecker()
        clean = TransactionLog(txn_uuid="clean")
        clean.record_read("k", tag(1.0, "w", {"k"}), op_index=0)
        checker.add(clean)

        bad = TransactionLog(txn_uuid="bad")
        bad.record_write("k", TransactionId(5.0, "bad"), op_index=0)
        bad.record_read("k", tag(1.0, "other"), op_index=1)
        bad.record_read("a", tag(5.0, "w2", {"a", "b"}), op_index=2)
        bad.record_read("b", tag(1.0, "w3", {"b"}), op_index=3)
        checker.add(bad)

        counts = checker.counts()
        assert counts.transactions == 2
        assert counts.ryw_anomalies == 1
        assert counts.fractured_read_anomalies == 1
        assert counts.ryw_rate == 0.5

    def test_uncommitted_transactions_are_excluded(self):
        checker = AnomalyChecker()
        aborted = TransactionLog(txn_uuid="aborted", committed=False)
        aborted.record_write("k", TransactionId(5.0, "aborted"), op_index=0)
        aborted.record_read("k", None, op_index=1)
        checker.add(aborted)
        counts = checker.counts()
        assert counts.committed_transactions == 0
        assert counts.ryw_anomalies == 0

    def test_null_reads_counted(self):
        checker = AnomalyChecker()
        log = TransactionLog(txn_uuid="t")
        log.record_read("missing", None, op_index=0)
        checker.add(log)
        assert checker.counts().null_reads == 1
