"""Tests for latency models and calibrated profiles."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.storage.latency import (
    ConstantLatency,
    LogNormalLatency,
    OperationProfile,
    ZeroLatency,
    dynamodb_latency_profile,
    dynamodb_vm_latency_profile,
    redis_latency_profile,
    s3_latency_profile,
)


class TestSimpleModels:
    def test_zero_latency_is_always_zero(self):
        model = ZeroLatency()
        assert model.sample("read") == 0.0
        assert model.sample("batch_write", n_items=100, total_bytes=10**6) == 0.0

    def test_constant_latency(self):
        model = ConstantLatency(0.004)
        assert model.sample("read") == 0.004
        assert model.sample("write", n_items=10) == 0.004


class TestLogNormalLatency:
    def test_requires_read_and_write_profiles(self):
        with pytest.raises(ValueError):
            LogNormalLatency({"read": OperationProfile(median=0.001)})

    def test_samples_are_positive(self):
        model = dynamodb_latency_profile(seed=1)
        for op in ("read", "write", "batch_write", "delete", "list", "transact"):
            assert model.sample(op, n_items=3, total_bytes=4096) > 0.0

    def test_unknown_operation_falls_back_to_generic_class(self):
        model = LogNormalLatency(
            {"read": OperationProfile(median=0.001, sigma=0.0), "write": OperationProfile(median=0.01, sigma=0.0)}
        )
        assert model.sample("delete") == pytest.approx(0.01)
        assert model.sample("exotic-read-ish") == pytest.approx(0.001)

    def test_seeded_models_are_reproducible(self):
        a = dynamodb_latency_profile(seed=42)
        b = dynamodb_latency_profile(seed=42)
        assert [a.sample("read") for _ in range(10)] == [b.sample("read") for _ in range(10)]

    def test_reseed_resets_the_stream(self):
        model = redis_latency_profile(seed=5)
        first = [model.sample("read") for _ in range(5)]
        model.reseed(5)
        assert [model.sample("read") for _ in range(5)] == first

    def test_per_item_cost_grows_with_batch_size(self):
        profile = OperationProfile(median=0.005, sigma=0.0, per_item=0.001)
        model = LogNormalLatency({"read": profile, "write": profile, "batch_write": profile})
        small = model.sample("batch_write", n_items=1)
        large = model.sample("batch_write", n_items=10)
        assert large == pytest.approx(small + 9 * 0.001)

    @given(st.integers(min_value=1, max_value=64))
    def test_sampling_never_returns_negative(self, n_items):
        model = s3_latency_profile(seed=0)
        assert model.sample("write", n_items=n_items, total_bytes=n_items * 1024) >= 0.0


class TestCalibratedProfiles:
    def test_backend_ordering_of_medians(self):
        """Redis is memory-speed, DynamoDB is milliseconds, S3 is tens of ms."""
        redis = redis_latency_profile(seed=0)
        dynamo = dynamodb_latency_profile(seed=0)
        s3 = s3_latency_profile(seed=0)
        redis_median = sorted(redis.sample("read") for _ in range(500))[250]
        dynamo_median = sorted(dynamo.sample("read") for _ in range(500))[250]
        s3_median = sorted(s3.sample("read") for _ in range(500))[250]
        assert redis_median < dynamo_median < s3_median

    def test_vm_profile_is_faster_than_lambda_profile(self):
        vm = dynamodb_vm_latency_profile(seed=0)
        lam = dynamodb_latency_profile(seed=0)
        vm_median = sorted(vm.sample("write") for _ in range(500))[250]
        lam_median = sorted(lam.sample("write") for _ in range(500))[250]
        assert vm_median < lam_median

    def test_batching_is_cheaper_than_sequential_writes(self):
        model = dynamodb_latency_profile(seed=0)
        sequential = sum(sorted(model.sample("write") for _ in range(10)))
        batched = sorted(model.sample("batch_write", n_items=10) for _ in range(10))[5]
        assert batched < sequential
