"""Tests for the Atomic Write Buffer."""

from __future__ import annotations

import pytest

from repro.core.write_buffer import AtomicWriteBuffer
from repro.errors import UnknownTransactionError
from repro.ids import TransactionId, data_key
from repro.storage.memory import InMemoryStorage


class TestBuffering:
    def test_put_and_get_pending_value(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.put("t1", "k", b"v")
        assert buffer.get("t1", "k") == b"v"
        assert buffer.has_write("t1", "k")
        assert not buffer.has_write("t1", "other")

    def test_get_missing_key_returns_none(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        assert buffer.get("t1", "k") is None

    def test_overwrite_keeps_latest_value(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.put("t1", "k", b"v1")
        buffer.put("t1", "k", b"v2")
        assert buffer.get("t1", "k") == b"v2"
        assert buffer.pending_writes("t1") == {"k": b"v2"}

    def test_write_set_and_pending_writes(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.put("t1", "a", b"1")
        buffer.put("t1", "b", b"2")
        assert buffer.write_set("t1") == {"a", "b"}
        assert buffer.pending_writes("t1") == {"a": b"1", "b": b"2"}

    def test_transactions_are_isolated(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.open("t2")
        buffer.put("t1", "k", b"from-t1")
        assert buffer.get("t2", "k") is None

    def test_unknown_transaction_raises(self):
        buffer = AtomicWriteBuffer()
        with pytest.raises(UnknownTransactionError):
            buffer.put("nope", "k", b"v")
        with pytest.raises(UnknownTransactionError):
            buffer.get("nope", "k")
        with pytest.raises(UnknownTransactionError):
            buffer.pending_writes("nope")

    def test_discard_drops_state(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.put("t1", "k", b"v")
        buffer.discard("t1")
        assert "t1" not in buffer.open_transactions()

    def test_open_is_idempotent(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.put("t1", "k", b"v")
        buffer.open("t1")
        assert buffer.get("t1", "k") == b"v"

    def test_buffered_bytes_tracking(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.put("t1", "k", b"1234")
        buffer.put("t1", "l", b"56")
        assert buffer.buffered_bytes("t1") == 6
        buffer.put("t1", "k", b"1")
        assert buffer.buffered_bytes("t1") == 3


class TestSpilling:
    def test_spill_writes_to_storage_under_provisional_keys(self):
        storage = InMemoryStorage()
        buffer = AtomicWriteBuffer(storage=storage)
        buffer.open("t1")
        buffer.put("t1", "k", b"big-value")
        provisional = TransactionId(1.0, "t1")
        written = buffer.spill("t1", provisional)
        assert written == [data_key("k", provisional)]
        assert storage.get(data_key("k", provisional)) == b"big-value"
        assert buffer.spilled_keys("t1") == {"k": data_key("k", provisional)}

    def test_automatic_spill_over_threshold(self):
        storage = InMemoryStorage()
        buffer = AtomicWriteBuffer(storage=storage, spill_threshold_bytes=10)
        buffer.open("t1")
        provisional = TransactionId(1.0, "t1")
        buffer.put("t1", "k", b"x" * 20, provisional_id=provisional)
        assert buffer.spills == 1
        assert storage.get(data_key("k", provisional)) == b"x" * 20

    def test_spill_without_storage_raises(self):
        buffer = AtomicWriteBuffer()
        buffer.open("t1")
        buffer.put("t1", "k", b"v")
        with pytest.raises(RuntimeError):
            buffer.spill("t1", TransactionId(1.0, "t1"))

    def test_discard_returns_spilled_keys_for_cleanup(self):
        storage = InMemoryStorage()
        buffer = AtomicWriteBuffer(storage=storage)
        buffer.open("t1")
        buffer.put("t1", "k", b"v")
        provisional = TransactionId(1.0, "t1")
        buffer.spill("t1", provisional)
        orphans = buffer.discard("t1")
        assert orphans == [data_key("k", provisional)]

    def test_spill_skips_already_spilled_values(self):
        storage = InMemoryStorage()
        buffer = AtomicWriteBuffer(storage=storage)
        buffer.open("t1")
        provisional = TransactionId(1.0, "t1")
        buffer.put("t1", "k", b"v")
        first = buffer.spill("t1", provisional)
        second = buffer.spill("t1", provisional)
        assert first and not second
