"""The distributed runtime end to end: router + node servers on sockets.

Everything here boots a real asyncio-TCP cluster — a :class:`RouterServer`
plus :class:`NodeServer` processes' worth of state, in-process but over
genuine localhost sockets — and drives it through the client API.  The
acceptance bar from the paper's perspective:

* transactions commit *through the router* and their effects are visible
  from sibling nodes (commit-stream delivery);
* a concurrent tagged workload passes the read-atomicity consistency
  checker (zero RYW / fractured-read anomalies — Table 2 methodology);
* the nemesis scenario: a node whose heartbeats are paused is declared
  failed, a standby is promoted, and the old node's late commit-record
  write is rejected by its stale epoch token;
* both negotiated wire formats (JSON and binary) carry all of the above,
  and mixed-version pairings (a binary-capable node against a JSON-only
  router, and vice versa) fall back cleanly.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.consistency.checker import AnomalyChecker, TransactionLog
from repro.consistency.metadata import TaggedValue
from repro.errors import FencedNodeError, UnknownTransactionError
from repro.ids import TransactionId
from repro.rpc.client import AsyncRouterClient
from repro.rpc.framing import FORMAT_BINARY, FORMAT_JSON, SUPPORTED_WIRE_FORMATS
from repro.rpc.node_server import NodeServer
from repro.rpc.router import RouterServer


class SocketCluster:
    """Test harness: one router + N node servers + a client, one event loop."""

    def __init__(
        self,
        n_nodes: int = 3,
        standbys: int = 0,
        lease_duration: float = 0.6,
        heartbeat_interval: float = 0.1,
        router_wire_formats: tuple[str, ...] = (FORMAT_JSON, FORMAT_BINARY),
        node_wire_formats: tuple[str, ...] = SUPPORTED_WIRE_FORMATS,
        enable_storage_batches: bool = True,
    ) -> None:
        self.router = RouterServer(
            port=0,
            lease_duration=lease_duration,
            heartbeat_interval=heartbeat_interval,
            wire_formats=router_wire_formats,
            enable_storage_batches=enable_storage_batches,
        )
        self.n_nodes = n_nodes
        self.n_standbys = standbys
        self.node_wire_formats = node_wire_formats
        self.nodes: list[NodeServer] = []
        self.standbys: list[NodeServer] = []
        self.client: AsyncRouterClient | None = None

    async def __aenter__(self) -> "SocketCluster":
        await self.router.start()
        for i in range(self.n_nodes):
            node = NodeServer(
                f"n{i}", router_port=self.router.port, wire_formats=self.node_wire_formats
            )
            await node.start()
            self.nodes.append(node)
        for i in range(self.n_standbys):
            standby = NodeServer(
                f"s{i}",
                router_port=self.router.port,
                kind="standby",
                wire_formats=self.node_wire_formats,
            )
            await standby.start()
            self.standbys.append(standby)
        self.client = await AsyncRouterClient.connect("127.0.0.1", self.router.port)
        await self.client.wait_ready(self.n_nodes)
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if self.client is not None:
            await self.client.close()
        for server in self.nodes + self.standbys:
            await server.stop()
        await self.router.stop()


#: Wire pairings every end-to-end scenario must survive: the negotiated
#: binary fast path, a forced-JSON cluster (both sides old), and the two
#: mixed-version pairings (one side old, negotiation falls back to JSON).
WIRE_MATRIX = {
    "binary": dict(),
    "json": dict(
        router_wire_formats=(FORMAT_JSON,),
        node_wire_formats=(FORMAT_JSON,),
        enable_storage_batches=False,
    ),
    "new-node-old-router": dict(router_wire_formats=(FORMAT_JSON,), enable_storage_batches=False),
    "old-node-new-router": dict(node_wire_formats=(FORMAT_JSON,)),
}


class TestCommitsThroughRouter:
    @pytest.mark.parametrize("wire", list(WIRE_MATRIX), ids=str)
    def test_commit_and_cross_node_read(self, wire):
        async def scenario():
            async with SocketCluster(n_nodes=3, **WIRE_MATRIX[wire]) as cluster:
                client = cluster.client
                # Several transactions: round-robin spreads them over nodes.
                for i in range(6):
                    tx = await client.start_transaction()
                    await client.put(tx, f"item:{i}", f"value-{i}".encode())
                    token = await client.commit_transaction(tx)
                    assert token  # a TransactionId token string
                # Every value readable regardless of which node serves.
                for i in range(6):
                    tx = await client.start_transaction()
                    value = await client.get(tx, f"item:{i}")
                    assert value == f"value-{i}".encode()
                    await client.commit_transaction(tx)
                info = await client.info()
                assert sorted(info.nodes) == ["n0", "n1", "n2"]
                assert info.commits > 0

        asyncio.run(scenario())

    def test_abort_discards_and_errors_cross_the_wire(self):
        async def scenario():
            async with SocketCluster(n_nodes=2) as cluster:
                client = cluster.client
                tx = await client.start_transaction()
                await client.put(tx, "doomed", b"x")
                await client.abort_transaction(tx)
                check = await client.start_transaction()
                assert await client.get(check, "doomed") is None
                await client.commit_transaction(check)
                # An op on the aborted (unrouted) txid surfaces as the same
                # exception class the node would raise locally.
                with pytest.raises(UnknownTransactionError):
                    await client.get(tx, "doomed")

        asyncio.run(scenario())

    def test_multi_key_commit_is_atomic_across_nodes(self):
        async def scenario():
            async with SocketCluster(n_nodes=3) as cluster:
                client = cluster.client
                tx = await client.start_transaction()
                await client.put_many(tx, {"pair:a": b"1", "pair:b": b"1"})
                await client.commit_transaction(tx)
                # Readers on any node see the pair together.
                for _ in range(4):
                    tx = await client.start_transaction()
                    values = await client.get_many(tx, ["pair:a", "pair:b"])
                    assert values["pair:a"] == values["pair:b"] == b"1"
                    await client.commit_transaction(tx)

        asyncio.run(scenario())


class TestReadAtomicity:
    def test_concurrent_tagged_workload_has_no_anomalies(self):
        """The acceptance-criteria checker run: Table-2 methodology on sockets."""

        KEYS = [f"acct:{i}" for i in range(8)]

        async def worker(client: AsyncRouterClient, worker_id: int, checker_logs: list):
            for round_no in range(5):
                txid = await client.start_transaction()
                log = TransactionLog(txn_uuid=txid)
                op_index = 0
                # Read two keys, then write two keys (cowritten together).
                reads = [KEYS[(worker_id + round_no + j) % len(KEYS)] for j in range(2)]
                for key in reads:
                    raw = await client.get(txid, key)
                    log.record_read(key, TaggedValue.try_from_bytes(raw), op_index)
                    op_index += 1
                writes = [KEYS[(worker_id * 3 + round_no + j) % len(KEYS)] for j in range(2)]
                write_set = frozenset(writes)
                stamp = time.time()
                for key in writes:
                    tag = TaggedValue(
                        payload=f"w{worker_id}r{round_no}".encode(),
                        timestamp=stamp,
                        uuid=txid,
                        cowritten=write_set,
                    )
                    await client.put(txid, key, tag.to_bytes())
                    log.record_write(key, tag.version, op_index)
                    op_index += 1
                token = await client.commit_transaction(txid)
                checker_logs.append((log, txid, token))

        async def scenario():
            async with SocketCluster(n_nodes=3) as cluster:
                collected: list = []
                await asyncio.gather(
                    *(worker(cluster.client, w, collected) for w in range(6))
                )
                return collected

        collected = asyncio.run(scenario())
        checker = AnomalyChecker()
        for log, txid, token in collected:
            # AFT orders versions by commit timestamp (Section 6.1.2).
            checker.register_commit_order(txid, TransactionId.from_token(token))
            checker.add(log)
        counts = checker.counts()
        assert counts.committed_transactions == 30
        assert counts.ryw_anomalies == 0
        assert counts.fractured_read_anomalies == 0


class TestNemesisFencing:
    def test_partitioned_node_is_fenced_and_standby_serves(self):
        async def scenario():
            async with SocketCluster(
                n_nodes=2, standbys=1, lease_duration=0.5, heartbeat_interval=0.1
            ) as cluster:
                client = cluster.client
                for i in range(4):
                    tx = await client.start_transaction()
                    await client.put(tx, f"pre:{i}", b"stable")
                    await client.commit_transaction(tx)

                # The victim opens a transaction before the partition.
                victim = cluster.nodes[0].node
                late_txid = victim.start_transaction()
                await victim.put_async(late_txid, "late-key", b"late")

                # Nemesis: pause heartbeats only; the data path stays up.
                await client.nemesis("n0", pause_heartbeats=True)
                deadline = asyncio.get_running_loop().time() + 5.0
                while True:
                    info = await client.info()
                    if "n0" not in info.nodes and "s0" in info.nodes:
                        break
                    assert asyncio.get_running_loop().time() < deadline, info
                    await asyncio.sleep(0.05)
                assert victim.is_running  # false positive: never crashed

                # The late commit's record write is fenced at the router.
                with pytest.raises(FencedNodeError, match="stale epoch"):
                    await victim.commit_transaction_async(late_txid)

                # The promoted cluster still serves, and the fenced write
                # never became visible.
                tx = await client.start_transaction()
                values = await client.get_many(tx, ["pre:1", "late-key"])
                assert values["pre:1"] == b"stable"
                assert values["late-key"] is None
                await client.commit_transaction(tx)

                info = await client.info()
                assert len(info.nodes) == 2 and "s0" in info.nodes

        asyncio.run(scenario())

    def test_epoch_advances_on_each_membership_change(self):
        async def scenario():
            async with SocketCluster(n_nodes=2, standbys=1) as cluster:
                first = (await cluster.client.info()).epoch
                await cluster.client.nemesis("n1", pause_heartbeats=True)
                deadline = asyncio.get_running_loop().time() + 5.0
                while "n1" in (await cluster.client.info()).nodes:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
                second = (await cluster.client.info()).epoch
                # Revocation + standby grant: at least two bumps.
                assert second >= first + 2

        asyncio.run(scenario())


class TestWireNegotiation:
    def test_binary_and_batching_negotiated_by_default(self):
        async def scenario():
            async with SocketCluster(n_nodes=2) as cluster:
                client = cluster.client
                for i in range(4):
                    tx = await client.start_transaction()
                    await client.put(tx, f"neg:{i}", b"x" * 64)
                    await client.commit_transaction(tx)
                for node in cluster.nodes:
                    assert node.conn.wire_format == FORMAT_BINARY
                    assert node.storage.supports_storage_batches
                info = await client.info()
                # Router-side counters prove ops actually crossed batched.
                assert set(info.wire) == {"n0", "n1"}
                for counters in info.wire.values():
                    assert counters["format"] == FORMAT_BINARY
                    assert counters["frames_in"] > 0 and counters["frames_out"] > 0
                    assert counters["bytes_in"] > 0 and counters["bytes_out"] > 0
                assert sum(c["batched_ops_in"] for c in info.wire.values()) > 0

        asyncio.run(scenario())

    def test_binary_capable_node_falls_back_against_json_only_router(self):
        """The mixed-version pairing: new node, old (PR 7-era) router."""

        async def scenario():
            async with SocketCluster(
                n_nodes=2,
                router_wire_formats=(FORMAT_JSON,),
                enable_storage_batches=False,
            ) as cluster:
                client = cluster.client
                tx = await client.start_transaction()
                await client.put(tx, "fallback", b"still works")
                await client.commit_transaction(tx)
                tx = await client.start_transaction()
                assert await client.get(tx, "fallback") == b"still works"
                await client.commit_transaction(tx)
                for node in cluster.nodes:
                    assert node.conn.wire_format == FORMAT_JSON
                    assert not node.storage.supports_storage_batches
                info = await client.info()
                assert all(c["format"] == FORMAT_JSON for c in info.wire.values())
                assert all(c["batched_ops_in"] == 0 for c in info.wire.values())

        asyncio.run(scenario())

    def test_json_only_node_against_binary_router(self):
        """The other mixed-version pairing: old node, new router."""

        async def scenario():
            async with SocketCluster(
                n_nodes=2, node_wire_formats=(FORMAT_JSON,)
            ) as cluster:
                client = cluster.client
                tx = await client.start_transaction()
                await client.put(tx, "old-node", b"ok")
                await client.commit_transaction(tx)
                for node in cluster.nodes:
                    assert node.conn.wire_format == FORMAT_JSON

        asyncio.run(scenario())

    def test_batching_disabled_still_serves(self):
        async def scenario():
            async with SocketCluster(n_nodes=2, enable_storage_batches=False) as cluster:
                client = cluster.client
                tx = await client.start_transaction()
                await client.put_many(tx, {"a": b"1", "b": b"2"})
                await client.commit_transaction(tx)
                tx = await client.start_transaction()
                values = await client.get_many(tx, ["a", "b"])
                assert values == {"a": b"1", "b": b"2"}
                await client.commit_transaction(tx)
                # Binary wire still negotiated; only the batch feature is off.
                for node in cluster.nodes:
                    assert node.conn.wire_format == FORMAT_BINARY
                    assert not node.storage.supports_storage_batches

        asyncio.run(scenario())
