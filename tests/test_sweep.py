"""Tests for the amortized sweep infrastructure (SortedTxidLog / SweepCursor)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.sweep import SortedTxidLog, SweepCursor
from repro.ids import TransactionId


def tid(n: float, uuid: str = "") -> TransactionId:
    return TransactionId(float(n), uuid or f"u{n}")


class TestSortedTxidLog:
    def test_out_of_order_adds_iterate_sorted(self):
        log = SortedTxidLog()
        for n in (5, 1, 3, 2, 4):
            log.add(tid(n))
        assert list(log) == [tid(n) for n in (1, 2, 3, 4, 5)]
        assert len(log) == 5

    def test_add_is_idempotent(self):
        log = SortedTxidLog()
        log.add(tid(1))
        log.add(tid(2))
        log.add(tid(1))
        assert len(log) == 2

    def test_discard_is_lazy_but_invisible(self):
        log = SortedTxidLog()
        for n in (1, 2, 3):
            log.add(tid(n))
        log.discard(tid(2))
        assert list(log) == [tid(1), tid(3)]
        assert tid(2) not in log
        assert len(log) == 2
        # Discarding an unknown or already-dead id is a no-op.
        log.discard(tid(2))
        log.discard(tid(9))
        assert len(log) == 2

    def test_discarded_id_can_be_revived(self):
        log = SortedTxidLog()
        log.add(tid(1))
        log.discard(tid(1))
        log.add(tid(1))
        assert list(log) == [tid(1)]

    def test_tombstones_are_compacted(self):
        log = SortedTxidLog()
        for n in range(10):
            log.add(tid(n))
        for n in range(6):
            log.discard(tid(n))
        # More than half dead would have triggered compaction along the way.
        assert len(log._items) == len(log)

    def test_range_after(self):
        log = SortedTxidLog()
        for n in range(1, 8):
            log.add(tid(n))
        log.discard(tid(3))
        assert log.range_after(None, 3) == [tid(1), tid(2), tid(4)]
        assert log.range_after(tid(4), 10) == [tid(5), tid(6), tid(7)]
        assert log.range_after(tid(7), 10) == []

    def test_oldest_skips_tombstones(self):
        log = SortedTxidLog()
        log.add(tid(1))
        log.add(tid(2))
        log.discard(tid(1))
        assert log.oldest() == tid(2)
        log.discard(tid(2))
        assert log.oldest() is None

    def test_clear(self):
        log = SortedTxidLog()
        log.add(tid(1))
        log.clear()
        assert len(log) == 0 and list(log) == []

    @given(
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=60),
        st.lists(st.integers(min_value=0, max_value=40), max_size=30),
    )
    def test_matches_sorted_set_model(self, adds, removes):
        log = SortedTxidLog()
        model: set[TransactionId] = set()
        for n in adds:
            log.add(tid(n))
            model.add(tid(n))
        for n in removes:
            log.discard(tid(n))
            model.discard(tid(n))
        assert list(log) == sorted(model)
        assert len(log) == len(model)


class TestSweepCursor:
    def test_advance_wrap_reset(self):
        cursor = SweepCursor()
        assert cursor.position is None
        cursor.advance(tid(3))
        assert cursor.position == tid(3)
        cursor.wrap()
        assert cursor.position is None
        assert cursor.wraps == 1
        cursor.advance(tid(5))
        cursor.reset()
        assert cursor.position is None
        assert cursor.wraps == 1
