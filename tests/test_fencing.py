"""Epoch fencing: a falsely-declared node's late commits are rejected.

Lease membership buys failure detection without the simulator's omniscience,
at the price of *false positives*: a slow or partitioned node can be
declared dead while still running.  Fencing is what makes that safe — every
membership change bumps a global epoch, serving nodes stamp their epoch
into commit records, and the commit-record write path (the one place a late
writer cannot bypass) rejects stale stamps.

Three layers under test:

* the :class:`EpochFence` primitive itself,
* the commit-record epoch stamp's byte-level compatibility (fencing off
  must stay byte-identical — simulated latency charges by size),
* the full in-process nemesis scenario: a live node whose heartbeats are
  partitioned away is declared failed, a standby takes over, and the old
  node's late commit is rejected by its stale token while the promoted
  node serves on.
"""

from __future__ import annotations

import json

import pytest

from repro.clock import LogicalClock
from repro.config import ClusterConfig, MetadataPlaneConfig
from repro.core.cluster import AftCluster
from repro.core.commit_set import CommitRecord
from repro.core.metadata_plane.fencing import EpochFence, FenceToken
from repro.errors import FencedNodeError
from repro.ids import TransactionId
from repro.storage.memory import InMemoryStorage


class TestEpochFence:
    def test_grant_bumps_epoch_and_records_holder(self):
        fence = EpochFence()
        t0 = fence.grant("n0")
        t1 = fence.grant("n1")
        assert t0 == FenceToken(node_id="n0", epoch=1)
        assert t1.epoch == 2
        assert fence.granted_epoch("n0") == 1
        fence.check("n0", 1)  # still current despite later grants
        fence.check("n1", 2)

    def test_revoke_invalidates_and_bumps(self):
        fence = EpochFence()
        token = fence.grant("n0")
        assert fence.revoke("n0") == 2
        assert fence.granted_epoch("n0") is None
        with pytest.raises(FencedNodeError, match="stale epoch"):
            fence.check("n0", token.epoch)

    def test_regrant_after_revoke_issues_fresh_epoch(self):
        fence = EpochFence()
        old = fence.grant("n0")
        fence.revoke("n0")
        new = fence.grant("n0")
        assert new.epoch > old.epoch
        fence.check("n0", new.epoch)
        with pytest.raises(FencedNodeError):
            fence.check("n0", old.epoch)

    def test_revoking_unknown_node_still_bumps_epoch(self):
        # The bump is the point: any membership change invalidates in-flight
        # assumptions, even one about a node the fence never granted to.
        fence = EpochFence()
        before = fence.epoch
        fence.revoke("ghost")
        assert fence.epoch == before + 1

    def test_unstamped_write_from_non_member_is_rejected(self):
        # In a fenced deployment every admitted node holds a token, so an
        # epoch-0 stamp can only come from a writer that bypassed membership
        # — strictness here is the guarantee, not an accident.
        fence = EpochFence()
        fence.grant("n0")
        fence.revoke("n0")
        with pytest.raises(FencedNodeError):
            fence.check("n0", 0)


class TestRecordEpochCompatibility:
    def record(self, epoch: int) -> CommitRecord:
        return CommitRecord(
            txid=TransactionId(timestamp=3.25, uuid="u1"),
            write_set={"k": "aft.data/k/3.25|u1"},
            committed_at=3.25,
            node_id="n0",
            epoch=epoch,
        )

    def test_epoch_zero_serializes_byte_identically_to_pre_fencing(self):
        blob = self.record(0).to_bytes()
        assert b"epoch" not in blob  # unfenced deployments: same bytes as before
        assert CommitRecord.from_bytes(blob).epoch == 0

    def test_nonzero_epoch_round_trips(self):
        blob = self.record(5).to_bytes()
        assert json.loads(blob.decode("utf-8"))["epoch"] == 5
        assert CommitRecord.from_bytes(blob) == self.record(5)


def make_cluster(clock: LogicalClock, lease: float = 5.0) -> AftCluster:
    return AftCluster(
        InMemoryStorage(),
        cluster_config=ClusterConfig(
            num_nodes=2,
            standby_nodes=1,
            metadata_plane=MetadataPlaneConfig(
                membership="lease", lease_duration=lease, fencing=True
            ),
        ),
        clock=clock,
    )


class TestClusterFencing:
    def test_nodes_hold_tokens_and_stamp_records(self):
        clock = LogicalClock(start=100.0, auto_step=0.001)
        cluster = make_cluster(clock)
        try:
            assert all(node.fence_token is not None for node in cluster.nodes)
            node = cluster.nodes[0]
            txid = node.start_transaction()
            node.put(txid, "k", b"v")
            commit_id = node.commit_transaction(txid)
            record = cluster.commit_store.read_record(commit_id)
            assert record is not None
            assert record.epoch == node.fence_token.epoch
        finally:
            cluster.shutdown()

    def test_lease_false_positive_fences_late_commit(self):
        """The nemesis scenario, in-process.

        The victim node is alive the whole time — only its heartbeats stop
        (an asymmetric partition / GC pause).  The lease expires, the
        cluster replaces it with a standby, and the victim's already-open
        transaction commits *after* the declaration: the §3.3 data writes
        land (harmless, unreferenced), but the commit-record write is
        rejected by the stale epoch stamp, so the commit never becomes
        visible.
        """
        clock = LogicalClock(start=100.0, auto_step=0.001)
        cluster = make_cluster(clock, lease=5.0)
        try:
            client = cluster.client()
            for i in range(6):
                with client.transaction() as txn:
                    txn.put(f"k{i}", f"v{i}")
            cluster.run_multicast_round()

            victim = cluster.nodes[0]
            survivor = cluster.nodes[1]

            # The victim opens a transaction before the partition hits.
            late_txid = victim.start_transaction()
            victim.put(late_txid, "late-key", b"late-value")

            # Partition: everyone else heartbeats, the victim stays silent
            # past its lease.
            for _ in range(8):
                clock.advance(1.0)
                cluster.membership.heartbeat(survivor, clock.now())

            replacements = cluster.replace_failed_nodes()
            assert len(replacements) == 1
            assert victim.is_running  # false positive: it never crashed
            assert victim not in cluster.nodes

            # The late commit is fenced at the record write.
            with pytest.raises(FencedNodeError, match="stale epoch"):
                victim.commit_transaction(late_txid)

            # ... and really never became visible.
            check_tx = client.start_transaction()
            assert client.get(check_tx, "late-key") is None
            assert client.get(check_tx, "k3") == b"v3"
            client.commit_transaction(check_tx)

            # The replacement serves writes under its fresh token.
            promoted = replacements[0]
            txid = promoted.start_transaction()
            promoted.put(txid, "after-failover", b"ok")
            promoted.commit_transaction(txid)
        finally:
            cluster.shutdown()

    def test_fencing_disabled_keeps_seed_semantics(self):
        clock = LogicalClock(start=100.0, auto_step=0.001)
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(num_nodes=2),
            clock=clock,
        )
        try:
            assert cluster.fence is None
            assert all(node.fence_token is None for node in cluster.nodes)
            node = cluster.nodes[0]
            txid = node.start_transaction()
            node.put(txid, "k", b"v")
            commit_id = node.commit_transaction(txid)
            record = cluster.commit_store.read_record(commit_id)
            assert record.epoch == 0
        finally:
            cluster.shutdown()
