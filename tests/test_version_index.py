"""Tests for the key version index (master and snapshot views)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.version_index import KeyVersionIndex
from repro.ids import TransactionId


def tid(n: float, uuid: str = "") -> TransactionId:
    return TransactionId(float(n), uuid or f"u{n}")


class TestKeyVersionIndex:
    def test_latest_of_unknown_key_is_none(self):
        index = KeyVersionIndex()
        assert index.latest("k") is None

    def test_add_and_latest(self):
        index = KeyVersionIndex()
        index.add("k", tid(1))
        index.add("k", tid(3))
        index.add("k", tid(2))
        assert index.latest("k") == tid(3)
        assert index.versions("k") == (tid(1), tid(2), tid(3))

    def test_duplicate_add_is_idempotent(self):
        index = KeyVersionIndex()
        index.add("k", tid(1))
        index.add("k", tid(1))
        assert index.version_count("k") == 1

    def test_versions_at_least(self):
        index = KeyVersionIndex()
        for n in (1, 2, 3, 4):
            index.add("k", tid(n))
        assert index.versions_at_least("k", tid(3)) == (tid(3), tid(4))
        assert index.versions_at_least("k", None) == (tid(1), tid(2), tid(3), tid(4))
        assert index.versions_at_least("missing", tid(1)) == ()

    def test_latest_at_most(self):
        index = KeyVersionIndex()
        for n in (1, 3, 5):
            index.add("k", tid(n))
        assert index.latest_at_most("k", tid(4)) == tid(3)
        assert index.latest_at_most("k", tid(3)) == tid(3)
        assert index.latest_at_most("k", tid(0.5)) is None
        assert index.latest_at_most("missing", tid(9)) is None

    def test_remove_specific_version(self):
        index = KeyVersionIndex()
        index.add("k", tid(1))
        index.add("k", tid(2))
        index.remove("k", tid(1))
        assert index.versions("k") == (tid(2),)
        index.remove("k", tid(2))
        assert "k" not in index
        # Removing from an empty/unknown key is a no-op.
        index.remove("k", tid(2))

    def test_add_and_remove_record(self):
        index = KeyVersionIndex()
        index.add_record(["a", "b"], tid(5))
        assert index.has_version("a", tid(5))
        assert index.has_version("b", tid(5))
        index.remove_record(["a", "b"], tid(5))
        assert len(index) == 0

    def test_version_count_totals(self):
        index = KeyVersionIndex()
        index.add_record(["a", "b"], tid(1))
        index.add("a", tid(2))
        assert index.version_count("a") == 2
        assert index.version_count() == 3

    def test_keys_iteration(self):
        index = KeyVersionIndex()
        index.add_record(["a", "b", "c"], tid(1))
        assert sorted(index.keys()) == ["a", "b", "c"]

    def test_clear(self):
        index = KeyVersionIndex()
        index.add_record(["a", "b"], tid(1))
        index.clear()
        assert len(index) == 0

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_versions_always_sorted_and_latest_is_max(self, numbers):
        index = KeyVersionIndex()
        ids = [tid(n, uuid=f"u{i}") for i, n in enumerate(numbers)]
        for txid in ids:
            index.add("k", txid)
        versions = index.versions("k")
        assert list(versions) == sorted(versions)
        assert index.latest("k") == max(ids)

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=30, unique=True),
        st.integers(min_value=0, max_value=30),
    )
    def test_versions_at_least_matches_filter(self, numbers, lower_n):
        index = KeyVersionIndex()
        ids = [tid(n) for n in numbers]
        for txid in ids:
            index.add("k", txid)
        lower = tid(lower_n)
        expected = tuple(sorted(txid for txid in ids if txid >= lower))
        assert index.versions_at_least("k", lower) == expected


class TestKeyVersionSnapshot:
    def test_snapshot_is_immutable_under_later_mutation(self):
        index = KeyVersionIndex()
        index.add("k", tid(1))
        snap = index.snapshot()
        index.add("k", tid(2))
        index.add("l", tid(3))
        # The old view still answers from its epoch...
        assert snap.versions("k") == (tid(1),)
        assert snap.latest("l") is None
        # ...and a fresh snapshot sees the new state.
        fresh = index.snapshot()
        assert fresh.versions("k") == (tid(1), tid(2))
        assert fresh.latest("l") == tid(3)

    def test_snapshot_queries_match_master(self):
        index = KeyVersionIndex()
        for n in (1, 2, 4, 8):
            index.add("k", tid(n))
        index.add_record(["a", "b"], tid(3))
        snap = index.snapshot()
        assert snap.latest("k") == index.latest("k")
        assert snap.versions("k") == index.versions("k")
        assert snap.versions_at_least("k", tid(3)) == index.versions_at_least("k", tid(3))
        assert snap.latest_at_most("k", tid(5)) == index.latest_at_most("k", tid(5))
        assert snap.has_version("a", tid(3)) and not snap.has_version("a", tid(4))
        assert "k" in snap and "missing" not in snap
        assert sorted(snap.keys()) == sorted(index.keys())
        assert snap.version_count("k") == index.version_count("k")
        assert snap.version_count() == index.version_count()
        assert len(snap) == len(index)

    def test_removal_is_visible_in_fresh_snapshots(self):
        index = KeyVersionIndex()
        index.add("k", tid(1))
        index.snapshot()
        index.remove("k", tid(1))
        assert index.snapshot().versions("k") == ()
        assert "k" not in index.snapshot()

    def test_delta_compaction_preserves_answers(self):
        index = KeyVersionIndex()
        index.snapshot()  # activate incremental publication
        ids = {}
        for n in range(3 * KeyVersionIndex.COMPACT_DELTA_KEYS):
            key = f"key-{n}"
            ids[key] = tid(n)
            index.add(key, ids[key])
        snap = index.snapshot()
        for key, txid in ids.items():
            assert snap.latest(key) == txid

    def test_versions_are_zero_copy_tuples(self):
        index = KeyVersionIndex()
        index.add("k", tid(1))
        snap = index.snapshot()
        first = snap.versions("k")
        assert first is snap.versions("k"), "snapshot entries are shared, not copied per call"
        assert isinstance(first, tuple)
