"""Tests for clock abstractions."""

from __future__ import annotations

import pytest

from repro.clock import CounterClock, LogicalClock, OffsetClock, SystemClock


class TestLogicalClock:
    def test_starts_at_given_time(self):
        clock = LogicalClock(start=5.0)
        assert clock.now() == 5.0

    def test_advance_moves_forward(self):
        clock = LogicalClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_auto_step_advances_on_each_read(self):
        clock = LogicalClock(start=0.0, auto_step=0.5)
        assert clock.now() == 0.0
        assert clock.now() == 0.5
        assert clock.now() == 1.0

    def test_cannot_move_backwards(self):
        clock = LogicalClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(5.0)

    def test_set_forward_is_allowed(self):
        clock = LogicalClock(start=1.0)
        clock.set(7.0)
        assert clock.now() == 7.0

    def test_tick_default_step(self):
        clock = LogicalClock()
        clock.tick()
        assert clock.now() == 1.0


class TestCounterClock:
    def test_produces_increasing_integers(self):
        clock = CounterClock()
        assert [clock.now() for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_start_offset(self):
        clock = CounterClock(start=100)
        assert clock.now() == 101.0


class TestOffsetClock:
    def test_applies_skew(self):
        base = LogicalClock(start=50.0)
        skewed = OffsetClock(base, offset=-3.0)
        assert skewed.now() == 47.0

    def test_tracks_base_clock(self):
        base = LogicalClock(start=0.0)
        skewed = OffsetClock(base, offset=10.0)
        base.advance(5.0)
        assert skewed.now() == 15.0


class TestSystemClock:
    def test_now_is_monotonic_enough(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first
