"""Elasticity tests: consistent hashing, graceful drain, and the autoscaler.

Covers the correctness-critical paths of scale events:

* routing is drain-aware and pinning is atomic with drain state (a
  transaction can never land on a node that no longer accepts work);
* in-flight transactions on a draining node commit successfully;
* a retired node hands its unbroadcast commits and its locally-deleted GC
  set to the fault manager, and global GC still converges afterwards;
* the autoscaler's policy machinery (hysteresis, cooldown, floors/ceilings)
  and its end-to-end behaviour inside the discrete-event simulator.
"""

from __future__ import annotations

import pytest

from repro.clock import LogicalClock
from repro.config import AftConfig, AutoscalerPolicy, ClusterConfig
from repro.core.autoscaler import HOLD, SCALE_DOWN, SCALE_UP, Autoscaler
from repro.core.cluster import AftCluster
from repro.core.load_balancer import (
    ConsistentHashLoadBalancer,
    RoundRobinLoadBalancer,
    make_load_balancer,
)
from repro.core.node import AftNode
from repro.errors import NoAvailableNodeError, NodeDrainingError
from repro.storage.memory import InMemoryStorage


def make_nodes(count: int, storage=None, clock=None) -> list[AftNode]:
    storage = storage if storage is not None else InMemoryStorage()
    clock = clock if clock is not None else LogicalClock(auto_step=0.001)
    nodes = [AftNode(storage, clock=clock, node_id=f"n{i}") for i in range(count)]
    for node in nodes:
        node.start()
    return nodes


@pytest.fixture
def cluster():
    return AftCluster(
        InMemoryStorage(),
        cluster_config=ClusterConfig(num_nodes=3, standby_nodes=1, balancer="consistent_hash"),
        node_config=AftConfig(),
        clock=LogicalClock(start=0.0, auto_step=0.001),
    )


class TestConsistentHashing:
    def test_same_key_routes_to_same_node(self):
        balancer = ConsistentHashLoadBalancer(make_nodes(4))
        owners = {balancer.next_node(affinity_key=f"key-{i}").node_id for _ in range(5) for i in (7,)}
        assert len(owners) == 1

    def test_keys_spread_across_nodes(self):
        balancer = ConsistentHashLoadBalancer(make_nodes(4))
        owners = {balancer.next_node(affinity_key=f"key-{i}").node_id for i in range(200)}
        assert len(owners) == 4

    def test_scale_event_remaps_only_a_fraction_of_keys(self):
        nodes = make_nodes(5)
        balancer = ConsistentHashLoadBalancer(nodes[:4])
        keys = [f"key-{i}" for i in range(500)]
        before = {key: balancer.next_node(affinity_key=key).node_id for key in keys}
        balancer.add_node(nodes[4])
        after = {key: balancer.next_node(affinity_key=key).node_id for key in keys}
        moved = sum(1 for key in keys if before[key] != after[key])
        # Consistency: only the segments claimed by the new node move
        # (~1/5 of keys), not a wholesale reshuffle.
        assert 0 < moved < len(keys) * 0.4
        # Every moved key moved *to* the new node, never between old nodes.
        assert all(after[key] == nodes[4].node_id for key in keys if before[key] != after[key])

    def test_key_set_routes_to_majority_owner(self):
        balancer = ConsistentHashLoadBalancer(make_nodes(4))
        keys = [f"key-{i}" for i in range(9)]
        owners = [balancer.next_node(affinity_key=key).node_id for key in keys]
        chosen = balancer.next_node(affinity_key=keys)
        counts = {node_id: owners.count(node_id) for node_id in set(owners)}
        assert counts[chosen.node_id] == max(counts.values())

    def test_draining_node_is_not_routable(self):
        nodes = make_nodes(3)
        balancer = ConsistentHashLoadBalancer(nodes)
        key = next(f"k{i}" for i in range(100) if balancer.next_node(affinity_key=f"k{i}") is nodes[1])
        nodes[1].begin_drain()
        assert balancer.next_node(affinity_key=key) is not nodes[1]
        assert nodes[1] not in balancer.routable_nodes()
        assert nodes[1] in balancer.live_nodes()

    def test_no_affinity_hint_spreads_round_robin(self):
        nodes = make_nodes(3)
        balancer = ConsistentHashLoadBalancer(nodes)
        chosen = {balancer.next_node().node_id for _ in range(3)}
        assert chosen == {"n0", "n1", "n2"}

    def test_all_nodes_draining_raises(self):
        nodes = make_nodes(2)
        balancer = ConsistentHashLoadBalancer(nodes)
        for node in nodes:
            node.begin_drain()
        with pytest.raises(NoAvailableNodeError):
            balancer.next_node(affinity_key="k")

    def test_make_load_balancer_factory(self):
        assert isinstance(make_load_balancer("round_robin"), RoundRobinLoadBalancer)
        assert isinstance(make_load_balancer("consistent_hash"), ConsistentHashLoadBalancer)
        with pytest.raises(ValueError):
            make_load_balancer("nope")


class TestDrainAtomicPinning:
    def test_draining_node_rejects_new_transactions(self):
        (node,) = make_nodes(1)
        node.begin_drain()
        with pytest.raises(NodeDrainingError):
            node.start_transaction()

    def test_draining_node_lets_inflight_transactions_finish(self):
        (node,) = make_nodes(1)
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        node.begin_drain()
        # The multi-function case: re-joining the pinned transaction and
        # finishing it must work during a drain.
        assert node.start_transaction(txid) == txid
        node.put(txid, "l", b"w")
        node.commit_transaction(txid)
        assert node.is_drained()

    def test_pin_transaction_retries_past_node_that_began_draining(self):
        nodes = make_nodes(2)
        balancer = RoundRobinLoadBalancer(nodes)
        # Simulate the race: selection happens, then the selected node begins
        # draining before the transaction is registered.
        victim = balancer.next_node()
        victim.begin_drain()
        balancer._cursor -= 1  # rewind so pinning re-selects the victim first
        node, txid = balancer.pin_transaction()
        assert node is not victim
        assert node.transaction_status(txid) is not None

    def test_pin_transaction_raises_when_everything_drains(self):
        nodes = make_nodes(2)
        balancer = RoundRobinLoadBalancer(nodes)
        for node in nodes:
            node.begin_drain()
        with pytest.raises(NoAvailableNodeError):
            balancer.pin_transaction()


class TestGracefulScaleDown:
    def test_inflight_transaction_on_draining_node_commits(self, cluster):
        client = cluster.client()
        txid = client.start_transaction(affinity_key="hot")
        owner = client.node_for(txid)
        client.put(txid, "hot", b"v1")
        cluster.begin_drain(owner)
        # New work avoids the draining node...
        other_txid = client.start_transaction(affinity_key="hot")
        assert client.node_for(other_txid) is not owner
        client.abort_transaction(other_txid)
        # ...while the pinned transaction finishes and its write is durable.
        client.commit_transaction(txid)
        cluster.run_multicast_round()
        retired = cluster.retire_drained_nodes()
        assert retired == [owner]
        with client.transaction() as txn:
            assert txn.get("hot") == b"v1"

    def test_retirement_flushes_unbroadcast_commits(self, cluster):
        client = cluster.client()
        txid = client.start_transaction()
        owner = client.node_for(txid)
        client.put(txid, "k", b"survives-drain")
        client.commit_transaction(txid)
        # No multicast round runs before the drain: the commit is only known
        # to the owner.  Retirement must push it to the peers and the fault
        # manager rather than dropping it.
        cluster.begin_drain(owner)
        retired = cluster.retire_drained_nodes()
        assert retired == [owner]
        for node in cluster.nodes:
            reader = node.start_transaction()
            assert node.get(reader, "k") == b"survives-drain"
            node.abort_transaction(reader)
        assert cluster.fault_manager.stats.nodes_retired == 1

    def test_retirement_hands_gc_set_to_fault_manager(self, cluster):
        client = cluster.client()
        for value in (b"v1", b"v2"):
            with client.transaction() as txn:
                txn.put("contended", value)
        for node in cluster.nodes:
            node.forget_finished_transactions()
        cluster.run_multicast_round()
        cluster.run_local_gc()

        victim = cluster.nodes[0]
        deleted_before = victim.metadata_cache.locally_deleted()
        assert deleted_before  # the superseded v1 commit was locally collected
        cluster.begin_drain(victim)
        cluster.retire_drained_nodes()
        assert cluster.fault_manager.retired_node_deletions(victim.node_id) == deleted_before

    def test_global_gc_converges_after_retirement(self, cluster):
        client = cluster.client()
        for value in (b"v1", b"v2", b"v3"):
            with client.transaction() as txn:
                txn.put("hot-key", value)
        for node in cluster.nodes:
            node.forget_finished_transactions()
        cluster.run_multicast_round()

        victim = cluster.nodes[0]
        cluster.begin_drain(victim)
        assert cluster.retire_drained_nodes() == [victim]
        # The survivors locally collect the superseded versions; the global
        # GC must not dead-lock on the departed node's agreement.
        cluster.run_local_gc()
        deleted = cluster.run_global_gc()
        assert len(deleted) >= 1
        with client.transaction() as txn:
            assert txn.get("hot-key") == b"v3"

    def test_drain_grace_period_force_aborts_stragglers(self):
        clock = LogicalClock(start=0.0, auto_step=0.001)
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(
                num_nodes=2, node_config=AftConfig(drain_grace_period=5.0)
            ),
            clock=clock,
        )
        node = cluster.nodes[0]
        txid = node.start_transaction()
        node.put(txid, "k", b"never-committed")
        cluster.begin_drain(node)
        assert cluster.retire_drained_nodes() == []  # still waiting
        clock.advance(10.0)
        retired = cluster.retire_drained_nodes()
        assert retired == [node]
        assert node.stats.transactions_aborted == 1

    def test_retire_can_be_restricted_to_specific_nodes(self, cluster):
        first, second = cluster.nodes[0], cluster.nodes[1]
        cluster.begin_drain(first)
        cluster.begin_drain(second)
        # Both are drained (no in-flight work), but only the named node
        # retires — the simulator relies on this to charge each node its own
        # stop delay.
        assert cluster.retire_drained_nodes(nodes=[first]) == [first]
        assert second in cluster.nodes and second.is_draining
        assert cluster.retire_drained_nodes() == [second]

    def test_global_gc_prunes_retired_bookkeeping(self, cluster):
        client = cluster.client()
        for value in (b"v1", b"v2"):
            with client.transaction() as txn:
                txn.put("contended", value)
        for node in cluster.nodes:
            node.forget_finished_transactions()
        cluster.run_multicast_round()
        cluster.run_local_gc()
        victim = cluster.nodes[0]
        cluster.begin_drain(victim)
        cluster.retire_drained_nodes()
        assert cluster.fault_manager.retired_node_deletions(victim.node_id)
        cluster.run_global_gc()
        # The superseded transaction was globally deleted, so the retired
        # node's absorbed set no longer needs to remember it.
        assert not cluster.fault_manager.retired_node_deletions(victim.node_id)

    def test_retired_node_is_replaced_in_standby_pool(self, cluster):
        before = cluster.standby_count()
        victim = cluster.nodes[0]
        cluster.begin_drain(victim)
        cluster.retire_drained_nodes()
        assert cluster.standby_count() == before + 1
        assert victim in cluster.retired_nodes


class TestAutoscalerPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_nodes=3, max_nodes=2)
        with pytest.raises(ValueError):
            AutoscalerPolicy(scale_down_threshold=0.8, scale_up_threshold=0.7)
        with pytest.raises(ValueError):
            AutoscalerPolicy(scale_up_after=0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(evaluation_interval=0.0)

    def _cluster(self, num_nodes=2, **policy_overrides):
        policy = AutoscalerPolicy(
            min_nodes=1,
            max_nodes=4,
            node_capacity=2,
            scale_up_threshold=0.75,
            scale_down_threshold=0.25,
            scale_up_after=2,
            scale_down_after=2,
            cooldown=5.0,
        ).with_overrides(**policy_overrides)
        clock = LogicalClock(start=0.0, auto_step=0.001)
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(
                num_nodes=num_nodes, standby_nodes=1, balancer="consistent_hash", autoscaler=policy
            ),
            clock=clock,
        )
        return cluster, cluster.autoscaler, clock

    def test_hysteresis_requires_consecutive_breaches(self):
        cluster, scaler, _ = self._cluster()
        # Saturate both nodes: utilization 4 / (2*2) = 1.0 >= threshold.
        for node in cluster.nodes:
            node.start_transaction()
            node.start_transaction()
        assert scaler.evaluate(now=1.0) == HOLD  # first breach arms the streak
        assert scaler.evaluate(now=2.0) == SCALE_UP

    def test_cooldown_suppresses_back_to_back_scaling(self):
        cluster, scaler, _ = self._cluster()
        for node in cluster.nodes:
            node.start_transaction()
            node.start_transaction()
        scaler.evaluate(now=1.0)
        assert scaler.evaluate(now=2.0) == SCALE_UP
        scaler.record_scale(SCALE_UP, now=2.0)
        assert scaler.evaluate(now=3.0) == HOLD
        assert scaler.evaluate(now=4.0) == HOLD
        assert scaler.stats.held_by_cooldown >= 1
        # After the cooldown expires the streak has rebuilt and fires again.
        assert scaler.evaluate(now=8.0) == SCALE_UP

    def test_scale_up_held_at_max_nodes(self):
        cluster, scaler, _ = self._cluster(num_nodes=2, max_nodes=2)
        for node in cluster.nodes:
            node.start_transaction()
            node.start_transaction()
        scaler.evaluate(now=1.0)
        assert scaler.evaluate(now=2.0) == HOLD
        assert scaler.stats.held_at_max == 1

    def test_scale_down_held_at_min_nodes(self):
        cluster, scaler, _ = self._cluster(num_nodes=1, min_nodes=1)
        assert scaler.evaluate(now=1.0) == HOLD
        assert scaler.evaluate(now=2.0) == HOLD
        assert scaler.stats.held_at_min == 1

    def test_run_once_promotes_standby_under_load(self):
        cluster, scaler, _ = self._cluster()
        for node in cluster.nodes:
            node.start_transaction()
            node.start_transaction()
        assert cluster.run_autoscaler() == HOLD
        assert cluster.run_autoscaler() == SCALE_UP
        assert len(cluster.routable_nodes()) == 3
        assert cluster.stats.nodes_promoted == 1
        # The promoted node bootstrapped and is immediately routable.
        assert all(node.is_accepting for node in cluster.routable_nodes())

    def test_run_once_drains_idle_node_and_retires_it(self):
        cluster, scaler, clock = self._cluster(num_nodes=2, cooldown=0.0)
        assert cluster.run_autoscaler() == HOLD  # idle: breach 1 of 2
        assert cluster.run_autoscaler() == SCALE_DOWN
        draining = [node for node in cluster.nodes if node.is_draining]
        assert len(draining) == 1
        # The next tick retires the (empty) drained node.
        cluster.run_autoscaler()
        assert len(cluster.nodes) == 1
        assert cluster.stats.nodes_retired == 1

    def test_floor_recovers_below_min_nodes(self):
        cluster, scaler, _ = self._cluster(num_nodes=2, min_nodes=2)
        cluster.remove_node(cluster.nodes[0])
        assert scaler.evaluate(now=1.0) == SCALE_UP

    def test_floor_recovery_respects_cooldown_of_inflight_join(self):
        cluster, scaler, _ = self._cluster(num_nodes=2, min_nodes=2, cooldown=5.0)
        cluster.remove_node(cluster.nodes[0])
        assert scaler.evaluate(now=1.0) == SCALE_UP
        scaler.record_scale(SCALE_UP, now=1.0)
        # The promotion is still starting up; don't issue another one.
        assert scaler.evaluate(now=2.0) == HOLD
        assert scaler.evaluate(now=7.0) == SCALE_UP

    def test_utilization_is_inf_with_no_routable_nodes(self):
        cluster, scaler, _ = self._cluster(num_nodes=1)
        cluster.nodes[0].begin_drain()
        assert scaler.utilization() == float("inf")


class TestAutoscaledDeployment:
    def test_autoscaled_simulation_tracks_load(self):
        from repro.simulation.cluster_sim import DeploymentSpec, run_deployment

        spec = DeploymentSpec(
            mode="aft",
            backend="dynamodb",
            num_nodes=1,
            num_clients=16,
            requests_per_client=None,
            duration=15.0,
            balancer="consistent_hash",
            autoscaler=AutoscalerPolicy(
                min_nodes=1,
                max_nodes=4,
                node_capacity=4,
                scale_up_after=2,
                scale_down_after=3,
                cooldown=2.0,
            ),
            offered_clients_fn=lambda t: 16 if 2.0 <= t < 8.0 else 2,
            standby_nodes=1,
        )
        result = run_deployment(spec)
        counts = [count for _, count in result.node_count_timeline]
        assert max(counts) > 1  # scaled out under the burst
        assert counts[-1] < max(counts)  # scaled back in afterwards
        assert result.autoscaler_summary["scale_ups"] >= 1
        assert result.autoscaler_summary["scale_downs"] >= 1
        assert result.client_result.stats.requests_failed == 0
        assert result.anomaly_counts.ryw_anomalies == 0
        assert result.anomaly_counts.fractured_read_anomalies == 0

    def test_spec_validation(self):
        from repro.simulation.cluster_sim import DeploymentSpec

        with pytest.raises(ValueError):
            DeploymentSpec(autoscaler=AutoscalerPolicy(), balancer="static")
        with pytest.raises(ValueError):
            DeploymentSpec(balancer="zigzag")
        with pytest.raises(ValueError):
            DeploymentSpec(offered_clients_fn=lambda t: 1, duration=None)
