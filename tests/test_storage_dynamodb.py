"""Tests for the simulated DynamoDB table."""

from __future__ import annotations

import pytest

from repro.clock import LogicalClock
from repro.errors import BatchTooLargeError, TransactionConflictError
from repro.storage.dynamodb import SimulatedDynamoDB


@pytest.fixture
def clock() -> LogicalClock:
    return LogicalClock(start=0.0)


@pytest.fixture
def table(clock: LogicalClock) -> SimulatedDynamoDB:
    return SimulatedDynamoDB(clock=clock, inconsistency_window=1.0, seed=7)


class TestEventualConsistency:
    def test_first_write_is_immediately_visible(self, table):
        table.put("k", b"v1")
        assert table.get("k") == b"v1"

    def test_overwrite_may_be_stale_until_window_passes(self, table, clock):
        table.put("k", b"old")
        clock.advance(5.0)
        table.put("k", b"new")
        # Immediately after the overwrite an eventually-consistent read may
        # return the old value (the visibility delay is sampled in (0, 1]).
        stale_read = table.get("k")
        assert stale_read in (b"old", b"new")
        clock.advance(2.0)
        assert table.get("k") == b"new"

    def test_strongly_consistent_read_sees_latest(self, table, clock):
        table.put("k", b"old")
        clock.advance(5.0)
        table.put("k", b"new")
        assert table.get("k", consistent=True) == b"new"

    def test_consistent_reads_flag_applies_to_all_reads(self, clock):
        table = SimulatedDynamoDB(clock=clock, consistent_reads=True, inconsistency_window=10.0)
        table.put("k", b"old")
        table.put("k", b"new")
        assert table.get("k") == b"new"

    def test_zero_window_behaves_linearizably(self, clock):
        table = SimulatedDynamoDB(clock=clock, inconsistency_window=0.0)
        table.put("k", b"a")
        table.put("k", b"b")
        assert table.get("k") == b"b"

    def test_history_is_bounded(self, table, clock):
        for index in range(50):
            table.put("k", f"v{index}".encode())
            clock.advance(10.0)
        assert len(table._versions["k"]) <= table.history_limit


class TestBatchLimits:
    def test_batch_write_limit_is_25(self, table):
        items = {f"k{i}": b"v" for i in range(26)}
        with pytest.raises(BatchTooLargeError):
            table.multi_put(items)

    def test_batch_get_limit_is_100(self, table):
        with pytest.raises(BatchTooLargeError):
            table.multi_get([f"k{i}" for i in range(101)])

    def test_batch_write_within_limit(self, table):
        items = {f"k{i}": str(i).encode() for i in range(25)}
        table.multi_put(items)
        assert table.multi_get(items.keys()) == items


class TestTransactMode:
    def test_transact_write_items_is_visible_atomically(self, table):
        table.transact_write_items({"a": b"1", "b": b"2"})
        result = table.transact_get_items(["a", "b"])
        assert result == {"a": b"1", "b": b"2"}

    def test_transact_size_limit(self, table):
        with pytest.raises(BatchTooLargeError):
            table.transact_write_items({f"k{i}": b"v" for i in range(26)})

    def test_conflicting_write_windows_raise(self, table):
        table.transact_begin(["a", "b"], token="t1", mode="write")
        with pytest.raises(TransactionConflictError):
            table.transact_begin(["b", "c"], token="t2", mode="write")

    def test_read_windows_do_not_conflict_with_each_other(self, table):
        table.transact_begin(["a"], token="t1", mode="read")
        table.transact_begin(["a"], token="t2", mode="read")
        table.transact_end("t1")
        table.transact_end("t2")

    def test_read_window_conflicts_with_write_window(self, table):
        table.transact_begin(["a"], token="writer", mode="write")
        with pytest.raises(TransactionConflictError):
            table.transact_begin(["a"], token="reader", mode="read")

    def test_end_releases_claims(self, table):
        table.transact_begin(["a"], token="t1", mode="write")
        table.transact_end("t1")
        table.transact_begin(["a"], token="t2", mode="write")
        table.transact_end("t2")

    def test_same_token_does_not_conflict_with_itself(self, table):
        table.transact_begin(["a"], token="t1", mode="write")
        table.transact_write_items({"a": b"1"}, token="t1")
        table.transact_end("t1")
        assert table.get("k", consistent=True) is None
        assert table.get("a", consistent=True) == b"1"

    def test_conflict_counter_increments(self, table):
        table.transact_begin(["a"], token="t1", mode="write")
        with pytest.raises(TransactionConflictError):
            table.transact_begin(["a"], token="t2", mode="write")
        assert table.stats.extra["transact_conflicts"] == 1
