"""Tests for the simulated S3 bucket and Redis cluster."""

from __future__ import annotations

import pytest

from repro.clock import LogicalClock
from repro.errors import CrossShardBatchError
from repro.storage.rediscluster import SimulatedRedisCluster
from repro.storage.s3 import SimulatedS3


class TestSimulatedS3:
    @pytest.fixture
    def bucket(self):
        return SimulatedS3(clock=LogicalClock(), inconsistency_window=1.0, seed=3)

    def test_new_object_is_read_after_write_consistent(self, bucket):
        bucket.put("obj", b"data")
        assert bucket.get("obj") == b"data"

    def test_overwrites_are_eventually_consistent(self):
        clock = LogicalClock()
        bucket = SimulatedS3(clock=clock, inconsistency_window=1.0, seed=3)
        bucket.put("obj", b"old")
        clock.advance(10.0)
        bucket.put("obj", b"new")
        assert bucket.get("obj") in (b"old", b"new")
        clock.advance(2.0)
        assert bucket.get("obj") == b"new"

    def test_no_batch_write_support_advertised(self, bucket):
        assert bucket.supports_batch_writes is False

    def test_multi_put_falls_back_to_individual_requests(self, bucket):
        bucket.multi_put({"a": b"1", "b": b"2"})
        assert bucket.stats.writes == 2
        assert bucket.stats.batch_writes == 0

    def test_bulk_delete(self, bucket):
        bucket.put("a", b"1")
        bucket.put("b", b"2")
        bucket.multi_delete(["a", "b"])
        assert bucket.size() == 0

    def test_list_keys_prefix(self, bucket):
        bucket.put("logs/1", b"x")
        bucket.put("logs/2", b"x")
        bucket.put("data/1", b"x")
        assert bucket.list_keys("logs/") == ["logs/1", "logs/2"]


class TestSimulatedRedisCluster:
    @pytest.fixture
    def cluster(self):
        return SimulatedRedisCluster(shard_count=2)

    def test_reads_are_linearizable_within_a_shard(self, cluster):
        cluster.put("k", b"v1")
        cluster.put("k", b"v2")
        assert cluster.get("k") == b"v2"

    def test_sharding_is_stable(self, cluster):
        assert cluster.shard_of("some-key") == cluster.shard_of("some-key")
        assert 0 <= cluster.shard_of("some-key") < cluster.shard_count

    def test_mset_rejects_cross_shard_batches(self, cluster):
        # Find two keys living on different shards.
        keys = [f"key-{i}" for i in range(50)]
        shards = {cluster.shard_of(key) for key in keys}
        assert len(shards) == 2, "expected the sample keys to cover both shards"
        by_shard: dict[int, str] = {}
        for key in keys:
            by_shard.setdefault(cluster.shard_of(key), key)
        cross_shard = dict.fromkeys(by_shard.values(), b"v")
        with pytest.raises(CrossShardBatchError):
            cluster.mset(cross_shard)

    def test_mset_within_one_shard_succeeds(self, cluster):
        keys = [f"key-{i}" for i in range(50)]
        target_shard = cluster.shard_of(keys[0])
        same_shard = [key for key in keys if cluster.shard_of(key) == target_shard][:5]
        cluster.mset({key: b"v" for key in same_shard})
        assert all(cluster.get(key) == b"v" for key in same_shard)

    def test_multi_put_groups_by_shard(self, cluster):
        items = {f"key-{i}": str(i).encode() for i in range(20)}
        cluster.multi_put(items)
        assert cluster.multi_get(items.keys()) == items
        # One MSET per shard touched, not one per key.
        assert cluster.stats.batch_writes <= cluster.shard_count

    def test_shard_sizes_sum_to_total(self, cluster):
        for i in range(30):
            cluster.put(f"key-{i}", b"v")
        assert sum(cluster.shard_sizes()) == 30
        assert cluster.size() == 30

    def test_single_shard_cluster_accepts_any_mset(self):
        single = SimulatedRedisCluster(shard_count=1)
        single.mset({f"k{i}": b"v" for i in range(10)})
        assert single.size() == 10

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            SimulatedRedisCluster(shard_count=0)

    def test_delete(self, cluster):
        cluster.put("k", b"v")
        cluster.delete("k")
        assert cluster.get("k") is None
