"""Tests for the TransactionSession client helper."""

from __future__ import annotations

import pytest

from repro.core.session import TransactionSession
from repro.core.transaction import TransactionStatus


class TestTransactionSession:
    def test_commit_on_clean_exit(self, node):
        with TransactionSession(node) as session:
            session.put("k", b"v")
        assert session.finished
        assert session.commit_id is not None
        assert node.transaction_status(session.txid) is TransactionStatus.COMMITTED

    def test_abort_on_exception(self, node):
        with pytest.raises(ValueError):
            with TransactionSession(node) as session:
                session.put("k", b"v")
                raise ValueError("boom")
        assert node.transaction_status(session.txid) is TransactionStatus.ABORTED

        reader = TransactionSession(node)
        assert reader.get("k") is None
        reader.commit()

    def test_explicit_commit_is_idempotent(self, node):
        session = TransactionSession(node)
        session.put("k", b"v")
        first = session.commit()
        second = session.commit()
        assert first == second

    def test_explicit_abort(self, node):
        session = TransactionSession(node)
        session.put("k", b"v")
        session.abort()
        assert session.finished
        assert node.transaction_status(session.txid) is TransactionStatus.ABORTED

    def test_abort_after_commit_is_a_noop(self, node):
        session = TransactionSession(node)
        session.put("k", b"v")
        session.commit()
        session.abort()
        assert node.transaction_status(session.txid) is TransactionStatus.COMMITTED

    def test_reads_and_writes_go_through_the_backend(self, node):
        with TransactionSession(node) as writer:
            writer.put("greeting", "hello")
        with TransactionSession(node) as reader:
            assert reader.get("greeting") == b"hello"

    def test_session_can_join_existing_transaction(self, node):
        first = TransactionSession(node)
        first.put("k", b"v")
        second = TransactionSession(node, txid=first.txid)
        assert second.txid == first.txid
        assert second.get("k") == b"v"
        second.commit()
