"""Wire-schema tests: every message survives the codec round trip.

The compatibility contract under test is what lets node/router binaries from
adjacent versions interoperate:

* a message encoded by this version decodes back to an equal message
  (through real JSON, not just dict passing);
* a body carrying *unknown* fields — a newer peer's additions — decodes to
  this version's message with the extras silently dropped;
* an unknown message *type* is rejected (a different protocol, not a newer
  schema);
* exceptions ride error replies as their own class, so a fenced commit
  raises :class:`FencedNodeError` on the far side of the socket.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import errors
from repro.core.commit_set import CommitRecord
from repro.ids import TransactionId
from repro.rpc import messages as m

SAMPLES = [
    m.Hello(node_id="n0", kind="standby", wire_formats=["json", "binary"]),
    m.HelloAck(
        node_id="n0",
        epoch=7,
        lease_duration=2.5,
        heartbeat_interval=0.5,
        wire_format="binary",
        features=["storage_batch"],
    ),
    m.Heartbeat(node_id="n0"),
    m.Activate(node_id="s0", epoch=9),
    m.Ok(),
    m.PublishCommits(node_id="n1", records=[b"abc"]),
    m.DeliverCommits(records=[b"abc", b"def"]),
    m.StorageRequest(op="multi_put", items={"k": b"v"}),
    m.StorageRequest(op="multi_get", keys=["a", "b"]),
    m.StorageResponse(values={"a": b"v", "b": None}, keys=["a"]),
    m.StorageBatch(
        ops=[{"op": "put", "keys": ["k"], "v": [0]}, {"op": "get", "keys": ["a"]}],
        blobs=[b"v"],
    ),
    m.StorageBatchResult(
        results=[{}, {"keys": ["a"], "v": [0]}],
        blobs=[b"payload"],
    ),
    m.ClientStart(txid="t1"),
    m.ClientStarted(txid="t1", node_id="n2"),
    m.ClientGet(txid="t1", keys=["x"]),
    m.ClientValues(values={"x": None}),
    m.ClientPut(txid="t1", items={"x": b"v"}),
    m.ClientCommit(txid="t1"),
    m.ClientCommitted(txid="t1", commit_token="1.5|abc"),
    m.ClientAbort(txid="t1"),
    m.TxnStart(txid="t1"),
    m.TxnGet(txid="t1", keys=["x", "y"]),
    m.TxnPut(txid="t1", items={}),
    m.TxnCommit(txid="t1"),
    m.TxnAbort(txid="t1"),
    m.Info(),
    m.InfoReply(nodes=["n0"], standbys=["s0"], epoch=3, commits=12, wire={"n0": {"frames_out": 4}}),
    m.Nemesis(node_id="n0", pause_heartbeats=True),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", SAMPLES, ids=lambda s: s.TYPE)
    def test_json_round_trip(self, message):
        msg_type, version, body = m.encode_body(message)
        # Bulk bytes become base64 on the JSON wire and back.
        wire = json.loads(json.dumps(m.body_to_jsonable(msg_type, body)))
        decoded = m.decode_body(msg_type, version, m.body_from_jsonable(msg_type, wire))
        assert type(decoded) is type(message)
        assert decoded == message

    def test_every_type_is_registered_and_unique(self):
        assert {s.TYPE for s in SAMPLES} == set(m.MESSAGE_TYPES)

    def test_records_round_trip_as_bytes(self):
        record = CommitRecord(
            txid=TransactionId(timestamp=4.5, uuid="u1"),
            write_set={"k": "aft.data/k/t"},
            committed_at=4.5,
            node_id="n0",
            epoch=3,
        )
        [blob] = m.encode_records([record])
        [back] = m.decode_records([blob])
        assert back == record
        assert back.epoch == 3


class TestForwardCompatibility:
    def test_unknown_fields_are_dropped(self):
        body = {"node_id": "n0", "kind": "node", "zone": "us-east-1b", "shard_map": [1, 2]}
        decoded = m.decode_body("hello", 1, body)
        assert decoded == m.Hello(node_id="n0", kind="node")

    def test_missing_fields_take_defaults(self):
        # An older peer omits fields this version added: defaults fill in.
        decoded = m.decode_body("hello_ack", 1, {"node_id": "n0"})
        assert decoded.epoch == 0
        assert decoded.lease_duration == 5.0

    def test_unknown_type_is_rejected(self):
        with pytest.raises(errors.AftError, match="unknown wire message type"):
            m.decode_body("quantum_entangle", 1, {})

    def test_every_field_has_a_default(self):
        """New fields must default — the rule that makes omission safe."""
        for sample in SAMPLES:
            for f in dataclasses.fields(sample):
                assert (
                    f.default is not dataclasses.MISSING
                    or f.default_factory is not dataclasses.MISSING
                ), f"{sample.TYPE}.{f.name} has no default"


class TestErrorTransport:
    @pytest.mark.parametrize(
        "exc_type",
        [
            errors.FencedNodeError,
            errors.UnknownTransactionError,
            errors.TransactionAbortedError,
            errors.StorageError,
            errors.NoAvailableNodeError,
        ],
    )
    def test_known_errors_round_trip_as_themselves(self, exc_type):
        payload = m.error_to_wire(exc_type("boom"))
        back = m.error_from_wire(json.loads(json.dumps(payload)))
        assert type(back) is exc_type
        assert "boom" in str(back)

    def test_subclass_maps_to_nearest_registered_ancestor(self):
        payload = m.error_to_wire(errors.KeyNotFoundError("gone"))
        assert payload["kind"] == "storage"
        assert isinstance(m.error_from_wire(payload), errors.StorageError)

    def test_unregistered_exception_degrades_to_rpc_error(self):
        from repro.rpc.framing import RpcError

        payload = m.error_to_wire(ValueError("odd"))
        assert payload["kind"] == "error"
        assert isinstance(m.error_from_wire(payload), RpcError)
