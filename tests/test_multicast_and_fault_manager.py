"""Tests for the commit multicast, the fault manager, and their interplay (§4)."""

from __future__ import annotations

import pytest

from repro.core.fault_manager import FaultManager
from repro.core.multicast import MulticastService
from repro.core.node import AftNode
from repro.config import AftConfig
from repro.core.commit_set import CommitSetStore
from repro.storage.memory import InMemoryStorage
from repro.clock import LogicalClock


@pytest.fixture
def clock():
    return LogicalClock(start=100.0, auto_step=0.001)


@pytest.fixture
def shared_storage():
    return InMemoryStorage()


@pytest.fixture
def commit_store(shared_storage):
    return CommitSetStore(shared_storage)


def make_node(shared_storage, commit_store, clock, node_id, **config_overrides) -> AftNode:
    node = AftNode(
        shared_storage,
        commit_store=commit_store,
        config=AftConfig(**config_overrides),
        clock=clock,
        node_id=node_id,
    )
    node.start()
    return node


class TestMulticast:
    def test_commits_propagate_to_peers(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        multicast.run_once()

        reader = b.start_transaction()
        assert b.get(reader, "k") == b"v"

    def test_superseded_commits_are_pruned_from_broadcast(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService(prune_superseded=True)
        multicast.register_node(a)
        multicast.register_node(b)

        for value in (b"v1", b"v2", b"v3"):
            txid = a.start_transaction()
            a.put(txid, "k", value)
            a.commit_transaction(txid)
        multicast.run_once()

        assert multicast.stats.records_pruned == 2
        assert multicast.stats.records_broadcast == 1
        reader = b.start_transaction()
        assert b.get(reader, "k") == b"v3"

    def test_pruning_can_be_disabled(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a", prune_superseded_broadcasts=False)
        b = make_node(shared_storage, commit_store, clock, "b", prune_superseded_broadcasts=False)
        multicast = MulticastService(prune_superseded=False)
        multicast.register_node(a)
        multicast.register_node(b)

        for value in (b"v1", b"v2", b"v3"):
            txid = a.start_transaction()
            a.put(txid, "k", value)
            a.commit_transaction(txid)
        multicast.run_once()
        assert multicast.stats.records_broadcast == 3
        assert multicast.stats.records_pruned == 0
        assert len(b.metadata_cache) >= 3

    def test_failed_nodes_are_skipped(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        b.fail()

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        # Must not raise even though a peer is down.
        multicast.run_once()
        assert b.stats.remote_commits_applied == 0

    def test_fault_manager_receives_unpruned_records(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        multicast = MulticastService(prune_superseded=True)
        multicast.register_node(a)
        manager = FaultManager(shared_storage, commit_store, multicast)

        for value in (b"v1", b"v2"):
            txid = a.start_transaction()
            a.put(txid, "k", value)
            a.commit_transaction(txid)
        multicast.run_once()
        # Pruning hides v1 from peers, but the fault manager sees everything.
        assert manager.global_gc.known_transactions() == 2


class TestFaultManager:
    def test_scan_recovers_unbroadcast_commits(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        manager = FaultManager(shared_storage, commit_store, multicast)

        # Node a commits, acknowledges the client ... and dies before the
        # multicast round (Section 4.2's liveness scenario).
        txid = a.start_transaction()
        a.put(txid, "k", b"must-not-be-lost")
        commit_id = a.commit_transaction(txid)
        a.fail()

        recovered = manager.scan_commit_set()
        assert [record.txid for record in recovered] == [commit_id]

        reader = b.start_transaction()
        assert b.get(reader, "k") == b"must-not-be-lost"

    def test_scan_is_idempotent(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        multicast = MulticastService()
        multicast.register_node(a)
        manager = FaultManager(shared_storage, commit_store, multicast)

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        assert len(manager.scan_commit_set()) == 1
        assert manager.scan_commit_set() == []

    def test_broadcast_commits_are_not_rescanned(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        multicast = MulticastService()
        multicast.register_node(a)
        manager = FaultManager(shared_storage, commit_store, multicast)

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        multicast.run_once()
        assert manager.scan_commit_set() == []

    def test_group_committed_batch_is_recovered_by_scan(self, shared_storage, commit_store, clock):
        """All records of a group-commit flush survive the committing node."""
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        manager = FaultManager(shared_storage, commit_store, multicast)

        txids = []
        for i in range(3):
            txid = a.start_transaction()
            a.put(txid, f"gk{i}", f"gv{i}".encode())
            txids.append(txid)
        commit_ids = a.commit_transactions(txids)
        a.fail()  # dies before any multicast round

        recovered = {record.txid for record in manager.scan_commit_set()}
        assert recovered == set(commit_ids.values())
        reader = b.start_transaction()
        for i in range(3):
            assert b.get(reader, f"gk{i}") == f"gv{i}".encode()

    def test_fault_between_group_stages_leaves_nothing_to_recover(
        self, shared_storage, commit_store, clock
    ):
        """A crash between the data and commit-record stages exposes no state.

        The group-commit plan writes all data first; if the node dies before
        the record stage, the scan finds no records and peers keep reading
        the old versions — no fractured read, only orphaned data keys that
        the global GC will reap.
        """
        from repro.errors import StorageUnavailableError
        from repro.ids import is_commit_record_key

        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        manager = FaultManager(shared_storage, commit_store, multicast)

        setup = a.start_transaction()
        a.put(setup, "p", b"p0")
        a.put(setup, "q", b"q0")
        a.commit_transaction(setup)
        multicast.run_once()

        original_put = shared_storage.put
        original_multi_put = shared_storage.multi_put

        def failing_put(key, value):
            if is_commit_record_key(key):
                raise StorageUnavailableError("crash before the record stage")
            original_put(key, value)

        def failing_multi_put(items):
            if any(is_commit_record_key(key) for key in items):
                raise StorageUnavailableError("crash before the record stage")
            original_multi_put(items)

        shared_storage.put = failing_put
        shared_storage.multi_put = failing_multi_put
        try:
            txid = a.start_transaction()
            a.put(txid, "p", b"p1")
            a.put(txid, "q", b"q1")
            with pytest.raises(StorageUnavailableError):
                a.commit_transactions([txid])
        finally:
            shared_storage.put = original_put
            shared_storage.multi_put = original_multi_put
        a.fail()

        assert manager.scan_commit_set() == []
        reader = b.start_transaction()
        assert b.get(reader, "p") == b"p0"
        assert b.get(reader, "q") == b"q0"

    def test_detect_failures(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        manager = FaultManager(shared_storage, commit_store, multicast)
        assert manager.detect_failures([a, b]) == []
        b.fail()
        assert manager.detect_failures([a, b]) == [b]
        assert manager.stats.failures_detected == 1
