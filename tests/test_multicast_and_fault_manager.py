"""Tests for the commit multicast, the fault manager, and their interplay (§4)."""

from __future__ import annotations

import pytest

from repro.core.fault_manager import FaultManager
from repro.core.multicast import MulticastService
from repro.core.node import AftNode
from repro.config import AftConfig
from repro.core.commit_set import CommitSetStore
from repro.storage.memory import InMemoryStorage
from repro.clock import LogicalClock


@pytest.fixture
def clock():
    return LogicalClock(start=100.0, auto_step=0.001)


@pytest.fixture
def shared_storage():
    return InMemoryStorage()


@pytest.fixture
def commit_store(shared_storage):
    return CommitSetStore(shared_storage)


def make_node(shared_storage, commit_store, clock, node_id, **config_overrides) -> AftNode:
    node = AftNode(
        shared_storage,
        commit_store=commit_store,
        config=AftConfig(**config_overrides),
        clock=clock,
        node_id=node_id,
    )
    node.start()
    return node


class TestMulticast:
    def test_commits_propagate_to_peers(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        multicast.run_once()

        reader = b.start_transaction()
        assert b.get(reader, "k") == b"v"

    def test_superseded_commits_are_pruned_from_broadcast(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService(prune_superseded=True)
        multicast.register_node(a)
        multicast.register_node(b)

        for value in (b"v1", b"v2", b"v3"):
            txid = a.start_transaction()
            a.put(txid, "k", value)
            a.commit_transaction(txid)
        multicast.run_once()

        assert multicast.stats.records_pruned == 2
        assert multicast.stats.records_broadcast == 1
        reader = b.start_transaction()
        assert b.get(reader, "k") == b"v3"

    def test_pruning_can_be_disabled(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a", prune_superseded_broadcasts=False)
        b = make_node(shared_storage, commit_store, clock, "b", prune_superseded_broadcasts=False)
        multicast = MulticastService(prune_superseded=False)
        multicast.register_node(a)
        multicast.register_node(b)

        for value in (b"v1", b"v2", b"v3"):
            txid = a.start_transaction()
            a.put(txid, "k", value)
            a.commit_transaction(txid)
        multicast.run_once()
        assert multicast.stats.records_broadcast == 3
        assert multicast.stats.records_pruned == 0
        assert len(b.metadata_cache) >= 3

    def test_failed_nodes_are_skipped(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        b.fail()

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        # Must not raise even though a peer is down.
        multicast.run_once()
        assert b.stats.remote_commits_applied == 0

    def test_fault_manager_receives_unpruned_records(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        multicast = MulticastService(prune_superseded=True)
        multicast.register_node(a)
        manager = FaultManager(shared_storage, commit_store, multicast)

        for value in (b"v1", b"v2"):
            txid = a.start_transaction()
            a.put(txid, "k", value)
            a.commit_transaction(txid)
        multicast.run_once()
        # Pruning hides v1 from peers, but the fault manager sees everything.
        assert manager.global_gc.known_transactions() == 2


class TestFaultManager:
    def test_scan_recovers_unbroadcast_commits(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        manager = FaultManager(shared_storage, commit_store, multicast)

        # Node a commits, acknowledges the client ... and dies before the
        # multicast round (Section 4.2's liveness scenario).
        txid = a.start_transaction()
        a.put(txid, "k", b"must-not-be-lost")
        commit_id = a.commit_transaction(txid)
        a.fail()

        recovered = manager.scan_commit_set()
        assert [record.txid for record in recovered] == [commit_id]

        reader = b.start_transaction()
        assert b.get(reader, "k") == b"must-not-be-lost"

    def test_scan_is_idempotent(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        multicast = MulticastService()
        multicast.register_node(a)
        manager = FaultManager(shared_storage, commit_store, multicast)

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        assert len(manager.scan_commit_set()) == 1
        assert manager.scan_commit_set() == []

    def test_broadcast_commits_are_not_rescanned(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        multicast = MulticastService()
        multicast.register_node(a)
        manager = FaultManager(shared_storage, commit_store, multicast)

        txid = a.start_transaction()
        a.put(txid, "k", b"v")
        a.commit_transaction(txid)
        multicast.run_once()
        assert manager.scan_commit_set() == []

    def test_detect_failures(self, shared_storage, commit_store, clock):
        a = make_node(shared_storage, commit_store, clock, "a")
        b = make_node(shared_storage, commit_store, clock, "b")
        multicast = MulticastService()
        manager = FaultManager(shared_storage, commit_store, multicast)
        assert manager.detect_failures([a, b]) == []
        b.fail()
        assert manager.detect_failures([a, b]) == [b]
        assert manager.stats.failures_detected == 1
