"""Tests for Algorithm 1 — the atomic read protocol."""

from __future__ import annotations


from hypothesis import given, settings, strategies as st

from repro.core.commit_set import CommitRecord
from repro.core.metadata_cache import CommitSetCache
from repro.core.read_protocol import atomic_read, compute_lower_bound, is_atomic_readset
from repro.ids import TransactionId, data_key


def commit(cache: CommitSetCache, timestamp: float, keys: list[str], uuid: str = "") -> TransactionId:
    txid = TransactionId(timestamp, uuid or f"u{timestamp}")
    cache.add(CommitRecord(txid=txid, write_set={key: data_key(key, txid) for key in keys}))
    return txid


class TestPaperExample:
    """The worked example of Section 3.2: T1 {l}, T2 {k, l}."""

    def test_reading_k2_forces_l_at_least_l2(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])

        read_set: dict[str, TransactionId] = {}
        decision_k = atomic_read("k", read_set, cache)
        assert decision_k.target == t2
        read_set["k"] = decision_k.target

        decision_l = atomic_read("l", read_set, cache)
        assert decision_l.target == t2, "reading l1 would violate Definition 1"
        read_set["l"] = decision_l.target
        assert is_atomic_readset(read_set, cache)

    def test_reading_l1_first_allows_either_later_k(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])

        # If the transaction reads l first it may see l1; a later read of k
        # must not return a version cowritten with a newer l ... but k2 *is*
        # cowritten with l2 > l1, so k has no valid version at all only if k2
        # is the only version.  Algorithm 1 therefore returns NULL (§3.6).
        read_set = {"l": TransactionId(1.0, "u1.0")}
        decision = atomic_read("k", read_set, cache)
        assert decision.target is None
        assert decision.candidates_rejected == 1

    def test_null_read_resolves_once_older_k_exists(self):
        cache = CommitSetCache()
        t0 = commit(cache, 0.5, ["k"])
        commit(cache, 1.0, ["l"])
        commit(cache, 2.0, ["k", "l"])
        read_set = {"l": TransactionId(1.0, "u1.0")}
        decision = atomic_read("k", read_set, cache)
        assert decision.target == t0


class TestBasicBehaviour:
    def test_read_of_unknown_key_is_null(self):
        cache = CommitSetCache()
        decision = atomic_read("nothing", {}, cache)
        assert decision.is_null

    def test_read_returns_newest_version_by_default(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["k"])
        newest = commit(cache, 5.0, ["k"])
        decision = atomic_read("k", {}, cache)
        assert decision.target == newest

    def test_lower_bound_from_cowritten_read(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["k"])
        t2 = commit(cache, 2.0, ["k", "l"])
        lower = compute_lower_bound("k", {"l": t2}, cache)
        assert lower == t2

    def test_lower_bound_ignores_unrelated_reads(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["a"])
        assert compute_lower_bound("k", {"a": t1}, cache) is None

    def test_repeatable_read_corollary(self):
        """Corollary 1.1: re-reading a key returns the same version."""
        cache = CommitSetCache()
        first = commit(cache, 1.0, ["k", "l"])
        commit(cache, 2.0, ["k"])

        read_set = {"k": first, "l": first}
        decision = atomic_read("k", read_set, cache)
        assert decision.target == first

    def test_candidates_older_than_lower_bound_are_skipped(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["k"])
        t2 = commit(cache, 2.0, ["k", "l"])
        t3 = commit(cache, 3.0, ["k"])
        decision = atomic_read("k", {"l": t2}, cache)
        assert decision.target in (t2, t3)
        assert decision.lower_bound == t2

    def test_decision_records_rejections(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        commit(cache, 2.0, ["k", "l"])
        decision = atomic_read("k", {"l": t1}, cache)
        assert decision.is_null
        assert decision.rejection_reasons and decision.rejection_reasons[0][1] == "l"


class TestIsAtomicReadset:
    def test_valid_readset(self):
        cache = CommitSetCache()
        t2 = commit(cache, 2.0, ["k", "l"])
        assert is_atomic_readset({"k": t2, "l": t2}, cache)

    def test_fractured_readset_detected(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])
        assert not is_atomic_readset({"k": t2, "l": t1}, cache)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_property_reads_always_form_atomic_readsets(data):
    """Invariant: iterating Algorithm 1 over any committed history and any
    request order always yields an Atomic Readset (Theorem 1)."""
    keys = ["a", "b", "c", "d"]
    cache = CommitSetCache()
    num_commits = data.draw(st.integers(min_value=1, max_value=12))
    for index in range(num_commits):
        write_set = data.draw(
            st.lists(st.sampled_from(keys), min_size=1, max_size=len(keys), unique=True),
            label=f"write_set_{index}",
        )
        commit(cache, float(index + 1), list(write_set), uuid=f"u{index}")

    read_order = data.draw(st.lists(st.sampled_from(keys), min_size=1, max_size=8))
    read_set: dict[str, TransactionId] = {}
    for key in read_order:
        decision = atomic_read(key, read_set, cache)
        if decision.target is not None:
            read_set[key] = decision.target
        assert is_atomic_readset(read_set, cache)
