"""Tests for Algorithm 1 — the atomic read protocol.

The optimized fast path (``read_protocol``) is exercised by every test here;
the property suite at the bottom replays random histories through it *and*
through the original reference implementation
(``read_protocol_reference``, the oracle) and requires identical targets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import read_protocol_reference as reference
from repro.core.commit_set import CommitRecord
from repro.core.metadata_cache import CommitSetCache
from repro.core.read_protocol import (
    TrackedReadSet,
    atomic_read,
    compute_lower_bound,
    is_atomic_readset,
)
from repro.ids import TransactionId, data_key


def commit(cache: CommitSetCache, timestamp: float, keys: list[str], uuid: str = "") -> TransactionId:
    txid = TransactionId(timestamp, uuid or f"u{timestamp}")
    cache.add(CommitRecord(txid=txid, write_set={key: data_key(key, txid) for key in keys}))
    return txid


class TestPaperExample:
    """The worked example of Section 3.2: T1 {l}, T2 {k, l}."""

    def test_reading_k2_forces_l_at_least_l2(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])

        read_set: dict[str, TransactionId] = {}
        decision_k = atomic_read("k", read_set, cache)
        assert decision_k.target == t2
        read_set["k"] = decision_k.target

        decision_l = atomic_read("l", read_set, cache)
        assert decision_l.target == t2, "reading l1 would violate Definition 1"
        read_set["l"] = decision_l.target
        assert is_atomic_readset(read_set, cache)

    def test_reading_l1_first_allows_either_later_k(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])

        # If the transaction reads l first it may see l1; a later read of k
        # must not return a version cowritten with a newer l ... but k2 *is*
        # cowritten with l2 > l1, so k has no valid version at all only if k2
        # is the only version.  Algorithm 1 therefore returns NULL (§3.6).
        read_set = {"l": TransactionId(1.0, "u1.0")}
        decision = atomic_read("k", read_set, cache)
        assert decision.target is None
        assert decision.candidates_rejected == 1

    def test_null_read_resolves_once_older_k_exists(self):
        cache = CommitSetCache()
        t0 = commit(cache, 0.5, ["k"])
        commit(cache, 1.0, ["l"])
        commit(cache, 2.0, ["k", "l"])
        read_set = {"l": TransactionId(1.0, "u1.0")}
        decision = atomic_read("k", read_set, cache)
        assert decision.target == t0


class TestBasicBehaviour:
    def test_read_of_unknown_key_is_null(self):
        cache = CommitSetCache()
        decision = atomic_read("nothing", {}, cache)
        assert decision.is_null

    def test_read_returns_newest_version_by_default(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["k"])
        newest = commit(cache, 5.0, ["k"])
        decision = atomic_read("k", {}, cache)
        assert decision.target == newest

    def test_lower_bound_from_cowritten_read(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["k"])
        t2 = commit(cache, 2.0, ["k", "l"])
        lower = compute_lower_bound("k", {"l": t2}, cache)
        assert lower == t2

    def test_lower_bound_ignores_unrelated_reads(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["a"])
        assert compute_lower_bound("k", {"a": t1}, cache) is None

    def test_repeatable_read_corollary(self):
        """Corollary 1.1: re-reading a key returns the same version."""
        cache = CommitSetCache()
        first = commit(cache, 1.0, ["k", "l"])
        commit(cache, 2.0, ["k"])

        read_set = {"k": first, "l": first}
        decision = atomic_read("k", read_set, cache)
        assert decision.target == first

    def test_candidates_older_than_lower_bound_are_skipped(self):
        cache = CommitSetCache()
        commit(cache, 1.0, ["k"])
        t2 = commit(cache, 2.0, ["k", "l"])
        t3 = commit(cache, 3.0, ["k"])
        decision = atomic_read("k", {"l": t2}, cache)
        assert decision.target in (t2, t3)
        assert decision.lower_bound == t2

    def test_decision_records_rejections(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        commit(cache, 2.0, ["k", "l"])
        decision = atomic_read("k", {"l": t1}, cache)
        assert decision.is_null
        assert decision.rejection_reasons and decision.rejection_reasons[0][1] == "l"


class TestIsAtomicReadset:
    def test_valid_readset(self):
        cache = CommitSetCache()
        t2 = commit(cache, 2.0, ["k", "l"])
        assert is_atomic_readset({"k": t2, "l": t2}, cache)

    def test_fractured_readset_detected(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])
        assert not is_atomic_readset({"k": t2, "l": t1}, cache)


class TestWrapperParity:
    """compute_lower_bound / candidate_is_valid answer identically for plain
    dicts (reference delegation) and digest-carrying read sets."""

    def test_compute_lower_bound_both_paths(self):
        from repro.core.read_protocol import candidate_is_valid

        cache = CommitSetCache()
        commit(cache, 1.0, ["k"])
        t2 = commit(cache, 2.0, ["k", "l"])
        t3 = commit(cache, 3.0, ["k", "m"])
        plain = {"l": t2}
        tracked = TrackedReadSet.from_mapping(plain, cache)
        assert compute_lower_bound("k", plain, cache) == t2
        assert compute_lower_bound("k", tracked, cache) == t2
        assert candidate_is_valid(t3, plain, cache) == candidate_is_valid(t3, tracked, cache)
        # t2 is invalid against a read set holding l at t2? No — equal is fine.
        assert candidate_is_valid(t2, tracked, cache) == (True, None)

    def test_candidate_is_valid_reports_conflict(self):
        from repro.core.read_protocol import candidate_is_valid

        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])
        plain = {"l": t1}
        tracked = TrackedReadSet.from_mapping(plain, cache)
        assert candidate_is_valid(t2, plain, cache) == (False, "l")
        assert candidate_is_valid(t2, tracked, cache) == (False, "l")


class TestTrackedReadSet:
    """The incremental conflict digest backing the fast path."""

    def test_mapping_protocol(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["k", "l"])
        tracked = TrackedReadSet()
        tracked.observe("k", t1, cache.cowritten(t1))
        assert tracked["k"] == t1
        assert tracked.get("l") is None
        assert "k" in tracked and "l" not in tracked
        assert dict(tracked) == {"k": t1}
        assert len(tracked) == 1

    def test_lower_bound_is_max_fold_of_cowritten_sets(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["a", "k"])
        t2 = commit(cache, 2.0, ["b", "k"])
        tracked = TrackedReadSet()
        tracked.observe("a", t1, cache.cowritten(t1))
        assert tracked.lower_bound("k") == t1
        tracked.observe("b", t2, cache.cowritten(t2))
        assert tracked.lower_bound("k") == t2
        assert tracked.lower_bound("unrelated") is None

    def test_duplicate_observation_is_idempotent(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["k", "l"])
        tracked = TrackedReadSet()
        tracked.observe("k", t1, cache.cowritten(t1))
        tracked.observe("k", t1, cache.cowritten(t1))
        assert len(tracked) == 1

    def test_conflicting_reobservation_is_rejected(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["k"])
        t2 = commit(cache, 2.0, ["k"])
        tracked = TrackedReadSet()
        tracked.observe("k", t1, cache.cowritten(t1))
        with pytest.raises(ValueError):
            tracked.observe("k", t2, cache.cowritten(t2))

    def test_candidate_min_folds_only_new_reads(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["l"])
        t2 = commit(cache, 2.0, ["k", "l"])
        t3 = commit(cache, 3.0, ["m"])
        tracked = TrackedReadSet()
        tracked.observe("l", t1, cache.cowritten(t1))
        # First evaluation scans t2's cowritten set: l was read at t1 < t2.
        assert tracked.candidate_min(t2, cache.cowritten(t2)) == (t1, "l")
        # A later unrelated read does not disturb the cached answer.
        tracked.observe("m", t3, cache.cowritten(t3))
        assert tracked.candidate_min(t2, cache.cowritten(t2)) == (t1, "l")

    def test_overlay_layers_batch_decisions_over_the_base(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["a"])
        t2 = commit(cache, 2.0, ["b", "k"])
        base = TrackedReadSet()
        base.observe("a", t1, cache.cowritten(t1))
        overlay = base.overlay()
        overlay.observe("b", t2, cache.cowritten(t2))
        assert overlay["a"] == t1 and overlay["b"] == t2
        assert len(overlay) == 2
        assert sorted(overlay) == ["a", "b"]
        assert overlay.lower_bound("k") == t2
        # Dropping the overlay leaves the base untouched.
        assert "b" not in base and base.lower_bound("k") is None

    def test_overlay_reobserving_a_base_entry_is_a_noop(self):
        cache = CommitSetCache()
        t1 = commit(cache, 1.0, ["k"])
        base = TrackedReadSet()
        base.observe("k", t1, cache.cowritten(t1))
        overlay = base.overlay()
        overlay.observe("k", t1, cache.cowritten(t1))
        assert len(overlay) == 1

    def test_digest_activation_preserves_answers(self):
        """Crossing SMALL_READ_SET_LIMIT folds the queued entries; every
        digest query answers identically before and after activation."""
        from repro.core.read_protocol import SMALL_READ_SET_LIMIT

        cache = CommitSetCache()
        commits = []
        for n in range(SMALL_READ_SET_LIMIT + 4):
            commits.append(commit(cache, float(n + 1), [f"r{n}", "shared"], uuid=f"u{n}"))
        tracked = TrackedReadSet()
        for n, txid in enumerate(commits):
            tracked.observe(f"r{n}", txid, cache.cowritten(txid))
            # Every observed version cowrote "shared": the lower bound is the
            # max folded so far, whether the digest is lazy or active.
            assert tracked.lower_bound("shared") == txid
        assert tracked._pending is None, "digest must have activated"
        assert tracked.lower_bound("r0") == commits[0]

    def test_candidate_min_delta_folding_after_activation(self):
        from repro.core.read_protocol import SMALL_READ_SET_LIMIT

        cache = CommitSetCache()
        commits = [
            commit(cache, float(n + 1), [f"r{n}"], uuid=f"u{n}")
            for n in range(SMALL_READ_SET_LIMIT + 2)
        ]
        late = commit(cache, 50.0, ["x", "r0"], uuid="late")
        candidate = commit(cache, 99.0, [f"r{n}" for n in range(len(commits))] + ["x"], uuid="cand")

        tracked = TrackedReadSet()
        for n, txid in enumerate(commits):
            tracked.observe(f"r{n}", txid, cache.cowritten(txid))
        assert tracked._pending is None
        # First evaluation scans; the oldest read version wins.
        assert tracked.candidate_min(candidate, cache.cowritten(candidate)) == (commits[0], "r0")
        # A newer read of a cowritten key folds in via the log delta only.
        tracked.observe("x", late, cache.cowritten(late))
        assert tracked.candidate_min(candidate, cache.cowritten(candidate)) == (commits[0], "r0")


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_property_reads_always_form_atomic_readsets(data):
    """Invariant: iterating Algorithm 1 over any committed history and any
    request order always yields an Atomic Readset (Theorem 1)."""
    keys = ["a", "b", "c", "d"]
    cache = CommitSetCache()
    num_commits = data.draw(st.integers(min_value=1, max_value=12))
    for index in range(num_commits):
        write_set = data.draw(
            st.lists(st.sampled_from(keys), min_size=1, max_size=len(keys), unique=True),
            label=f"write_set_{index}",
        )
        commit(cache, float(index + 1), list(write_set), uuid=f"u{index}")

    read_order = data.draw(st.lists(st.sampled_from(keys), min_size=1, max_size=8))
    read_set: dict[str, TransactionId] = {}
    for key in read_order:
        decision = atomic_read(key, read_set, cache)
        if decision.target is not None:
            read_set[key] = decision.target
        assert is_atomic_readset(read_set, cache)


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_property_fast_path_matches_reference_oracle(data):
    """The incremental fast path returns byte-identical targets to the
    original reference Algorithm 1 for random histories and read orders.

    The fast path runs against a maintained :class:`TrackedReadSet`; the
    oracle re-derives everything from a plain dict per read, exactly as the
    pre-optimization implementation did.  The key population exceeds
    ``SMALL_READ_SET_LIMIT`` so long read orders cross the digest-activation
    threshold and exercise the eager fold + cached candidate paths too.
    """
    keys = [f"k{i}" for i in range(12)]
    cache = CommitSetCache()
    num_commits = data.draw(st.integers(min_value=0, max_value=24))
    for index in range(num_commits):
        write_set = data.draw(
            st.lists(st.sampled_from(keys), min_size=1, max_size=6, unique=True),
            label=f"write_set_{index}",
        )
        # Duplicate timestamps force uuid tie-breaks through both paths.
        timestamp = float(data.draw(st.integers(min_value=1, max_value=8), label=f"ts_{index}"))
        commit(cache, timestamp, list(write_set), uuid=f"u{index}")

    read_order = data.draw(st.lists(st.sampled_from(keys), min_size=1, max_size=24))
    tracked = TrackedReadSet()
    oracle_read_set: dict[str, TransactionId] = {}
    for key in read_order:
        fast = atomic_read(key, tracked, cache)
        slow = reference.atomic_read(key, oracle_read_set, cache)
        assert fast.target == slow.target, (key, fast, slow)
        assert fast.lower_bound == slow.lower_bound
        assert fast.candidates_considered == slow.candidates_considered
        assert fast.candidates_rejected == slow.candidates_rejected
        if fast.target is not None:
            tracked.observe(key, fast.target, cache.cowritten(fast.target))
            oracle_read_set[key] = slow.target
    assert dict(tracked) == oracle_read_set
    assert is_atomic_readset(tracked, cache)


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_property_batched_overlay_matches_sequential_reference(data):
    """get_many's overlay semantics: deciding a batch against an overlay is
    identical to a sequence of single reference decisions, including when
    some batch entries are later dropped (missing payloads)."""
    keys = ["a", "b", "c", "d"]
    cache = CommitSetCache()
    num_commits = data.draw(st.integers(min_value=1, max_value=12))
    for index in range(num_commits):
        write_set = data.draw(
            st.lists(st.sampled_from(keys), min_size=1, max_size=len(keys), unique=True),
            label=f"write_set_{index}",
        )
        commit(cache, float(index + 1), list(write_set), uuid=f"u{index}")

    base = TrackedReadSet()
    oracle_read_set: dict[str, TransactionId] = {}
    for _ in range(data.draw(st.integers(min_value=1, max_value=3), label="batches")):
        batch = data.draw(st.lists(st.sampled_from(keys), min_size=1, max_size=4, unique=True))
        overlay = base.overlay()
        oracle_tentative = dict(oracle_read_set)
        decisions = {}
        for key in batch:
            fast = atomic_read(key, overlay, cache)
            slow = reference.atomic_read(key, oracle_tentative, cache)
            assert fast.target == slow.target, (key, fast, slow)
            if fast.target is not None:
                overlay.observe(key, fast.target, cache.cowritten(fast.target))
                oracle_tentative[key] = slow.target
                decisions[key] = fast.target
        # Some decisions' payload fetches "fail": only the rest are recorded.
        kept = [key for key in decisions if data.draw(st.booleans(), label=f"keep_{key}")]
        for key in kept:
            base.observe(key, decisions[key], cache.cowritten(decisions[key]))
            oracle_read_set[key] = decisions[key]
    assert dict(base) == oracle_read_set
