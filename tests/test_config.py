"""Tests for configuration objects."""

from __future__ import annotations

from repro.config import AftConfig, ClusterConfig, DEFAULT_CONFIG


class TestAftConfig:
    def test_defaults_are_sensible(self):
        config = AftConfig()
        assert config.enable_data_cache
        assert config.batch_commit_writes
        assert config.prune_superseded_broadcasts
        assert config.multicast_interval == 1.0

    def test_with_overrides_returns_a_new_instance(self):
        base = AftConfig()
        tuned = base.with_overrides(enable_data_cache=False, gc_interval=2.0)
        assert tuned.enable_data_cache is False
        assert tuned.gc_interval == 2.0
        assert base.enable_data_cache is True

    def test_as_dict_round_trips_every_field(self):
        config = AftConfig(strict_reads=True, metadata_bootstrap_limit=42)
        data = config.as_dict()
        assert data["strict_reads"] is True
        assert data["metadata_bootstrap_limit"] == 42
        rebuilt = AftConfig(**data)
        assert rebuilt == config

    def test_default_config_constant(self):
        assert DEFAULT_CONFIG == AftConfig()


class TestClusterConfig:
    def test_defaults(self):
        config = ClusterConfig()
        assert config.num_nodes == 1
        assert isinstance(config.node_config, AftConfig)

    def test_with_overrides(self):
        config = ClusterConfig().with_overrides(num_nodes=5, standby_nodes=2)
        assert config.num_nodes == 5
        assert config.standby_nodes == 2
