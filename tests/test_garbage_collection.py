"""Tests for local metadata GC and global data GC (§5)."""

from __future__ import annotations

import pytest

from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.commit_set import CommitSetStore
from repro.core.fault_manager import FaultManager
from repro.core.garbage_collector import GlobalDataGC, LocalMetadataGC
from repro.core.multicast import MulticastService
from repro.core.node import AftNode
from repro.ids import is_data_key
from repro.storage.memory import InMemoryStorage


@pytest.fixture
def clock():
    return LogicalClock(start=0.0, auto_step=0.001)


@pytest.fixture
def storage():
    return InMemoryStorage()


@pytest.fixture
def commit_store(storage):
    return CommitSetStore(storage)


@pytest.fixture
def node(storage, commit_store, clock):
    node = AftNode(storage, commit_store=commit_store, config=AftConfig(), clock=clock, node_id="gc-node")
    node.start()
    return node


def commit_value(node, key, value):
    txid = node.start_transaction()
    node.put(txid, key, value)
    return node.commit_transaction(txid)


class TestLocalMetadataGC:
    def test_superseded_metadata_is_collected(self, node):
        old = commit_value(node, "k", b"v1")
        new = commit_value(node, "k", b"v2")
        node.forget_finished_transactions()

        collector = LocalMetadataGC(node)
        collected = collector.run_once()
        assert old in collected
        assert new not in collected
        assert old not in node.metadata_cache
        assert node.metadata_cache.was_locally_deleted(old)

    def test_latest_versions_are_never_collected(self, node):
        latest = {key: commit_value(node, key, b"v") for key in ("a", "b", "c")}
        node.forget_finished_transactions()
        collector = LocalMetadataGC(node)
        assert collector.run_once() == []
        for commit_id in latest.values():
            assert commit_id in node.metadata_cache

    def test_records_read_by_running_transactions_are_protected(self, node):
        old = commit_value(node, "k", b"v1")
        reader = node.start_transaction()
        assert node.get(reader, "k") == b"v1"

        commit_value(node, "k", b"v2")
        node.forget_finished_transactions()

        collector = LocalMetadataGC(node)
        assert old not in collector.run_once()
        assert collector.stats.blocked_by_active_readers == 1

        # Once the reader finishes, the record becomes collectable.
        node.commit_transaction(reader)
        node.forget_finished_transactions()
        assert old in collector.run_once()

    def test_max_per_sweep_bounds_work(self, node):
        for index in range(5):
            commit_value(node, "k", f"v{index}".encode())
        node.forget_finished_transactions()
        collector = LocalMetadataGC(node, max_per_sweep=2)
        assert len(collector.run_once()) == 2
        assert len(collector.run_once()) == 2

    def test_budget_exhaustion_mid_batch_keeps_cursor(self, node):
        """A sweep stopped by max_per_sweep must resume where it left off,
        not wrap back to the oldest record."""
        # Three keys written once each (never superseded), then a run of
        # superseded versions of "k" behind them.
        for key in ("a", "b", "c"):
            commit_value(node, key, b"keep")
        superseded = [commit_value(node, "k", f"v{index}".encode()) for index in range(4)]
        commit_value(node, "k", b"latest")
        node.forget_finished_transactions()

        collector = LocalMetadataGC(node, max_per_sweep=1)
        first = collector.run_once()
        assert first == [superseded[0]]
        assert collector.cursor.position == superseded[0]
        assert collector.cursor.wraps == 0, "budget exhaustion must not wrap the cursor"
        # The next sweep resumes past the collected record instead of
        # re-walking a/b/c from the start.
        examined_before = collector.stats.records_examined
        second = collector.run_once()
        assert second == [superseded[1]]
        assert collector.stats.records_examined - examined_before <= 2


class TestGlobalDataGC:
    def _setup(self, storage, commit_store, clock, num_nodes=2):
        nodes = []
        for index in range(num_nodes):
            node = AftNode(storage, commit_store=commit_store, clock=clock, node_id=f"n{index}")
            node.start()
            nodes.append(node)
        multicast = MulticastService(prune_superseded=False)
        for node in nodes:
            multicast.register_node(node)
        manager = FaultManager(storage, commit_store, multicast)
        return nodes, multicast, manager

    def test_data_deleted_only_after_all_nodes_release(self, storage, commit_store, clock):
        nodes, multicast, manager = self._setup(storage, commit_store, clock)
        a, b = nodes

        old = commit_value(a, "k", b"v1")
        new = commit_value(a, "k", b"v2")
        a.forget_finished_transactions()
        multicast.run_once()

        # Neither node has locally collected yet: nothing may be deleted.
        assert manager.run_global_gc(nodes) == []

        LocalMetadataGC(a).run_once()
        assert manager.run_global_gc(nodes) == []

        LocalMetadataGC(b).run_once()
        deleted = manager.run_global_gc(nodes)
        assert deleted == [old]
        assert not commit_store.contains(old)
        assert commit_store.contains(new)

    def test_deleted_data_keys_are_removed_from_storage(self, storage, commit_store, clock):
        nodes, multicast, manager = self._setup(storage, commit_store, clock, num_nodes=1)
        (a,) = nodes
        commit_value(a, "k", b"v1")
        commit_value(a, "k", b"v2")
        a.forget_finished_transactions()
        multicast.run_once()
        LocalMetadataGC(a).run_once()
        manager.run_global_gc(nodes)

        data_keys = [key for key in storage.list_keys() if is_data_key(key)]
        assert len(data_keys) == 1, "only the live version's data should remain"

    def test_gc_respects_max_deletes_per_round(self, storage, commit_store, clock):
        nodes, multicast, manager = self._setup(storage, commit_store, clock, num_nodes=1)
        (a,) = nodes
        manager.global_gc.max_deletes_per_round = 1
        for index in range(4):
            commit_value(a, "k", f"v{index}".encode())
        a.forget_finished_transactions()
        multicast.run_once()
        LocalMetadataGC(a).run_once()
        assert len(manager.run_global_gc(nodes)) == 1
        assert len(manager.run_global_gc(nodes)) == 1

    def test_reads_still_work_after_global_gc(self, storage, commit_store, clock):
        nodes, multicast, manager = self._setup(storage, commit_store, clock)
        a, b = nodes
        commit_value(a, "k", b"v1")
        commit_value(a, "k", b"v2")
        a.forget_finished_transactions()
        multicast.run_once()
        for node in nodes:
            LocalMetadataGC(node).run_once()
        manager.run_global_gc(nodes)

        reader = b.start_transaction()
        assert b.get(reader, "k") == b"v2"

    def test_missing_version_pitfall_reads_null_not_garbage(self, storage, commit_store, clock):
        """Section 5.2.1: an over-eager deletion makes a read return NULL,
        never a dirty or partial value."""
        nodes, multicast, manager = self._setup(storage, commit_store, clock, num_nodes=1)
        (a,) = nodes
        old = commit_value(a, "k", b"v1")
        commit_value(a, "k", b"v2")
        a.forget_finished_transactions()

        reader = a.start_transaction()
        # Simulate the GC racing ahead: the old version's data disappears from
        # storage while the reader still holds metadata pointing at it.
        record = a.metadata_cache.get(old)
        storage.multi_delete(list(record.write_set.values()))
        a.data_cache.clear()

        # Force the reader towards the old version by pinning its read set.
        from repro.core.read_protocol import atomic_read

        decision = atomic_read("k", {}, a.metadata_cache)
        assert decision.target is not None
        value = a.get(reader, "k")
        assert value in (b"v2", None)
