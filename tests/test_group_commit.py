"""Tests for cross-transaction group commit and its write-ordering invariant.

The critical property (paper §3.3, strengthened across a batch): no commit
record may become durable before *all* data it references.  A fault injected
between the combined data stage and the commit-record stage must leave no
visible state — readers keep seeing the pre-batch versions, never a mix.
"""

from __future__ import annotations

import threading

import pytest

from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.commit_set import CommitSetStore
from repro.core.group_commit import GroupCommitter, PendingCommit
from repro.core.node import AftNode
from repro.core.transaction import TransactionStatus
from repro.errors import StorageUnavailableError
from repro.ids import is_commit_record_key
from repro.storage.memory import InMemoryStorage


class CommitRecordFailingStorage(InMemoryStorage):
    """Fails every write of a commit record while letting data through.

    Because the commit plan persists data in stage one and records in stage
    two, this injects a fault exactly *between* the two stages: all data
    lands, no record does — the same state a node crash at that point leaves.
    """

    def __init__(self) -> None:
        super().__init__()
        self.failing = True

    def _check(self, keys) -> None:
        if self.failing and any(is_commit_record_key(key) for key in keys):
            raise StorageUnavailableError("injected fault: commit-record write lost")

    def put(self, key, value):
        self._check([key])
        super().put(key, value)

    def multi_put(self, items):
        self._check(items.keys())
        super().multi_put(items)


def make_node(storage, clock=None, **config_overrides) -> AftNode:
    node = AftNode(
        storage,
        config=AftConfig(**config_overrides),
        clock=clock or LogicalClock(start=100.0, auto_step=0.001),
        node_id="gc-test-node",
    )
    node.start()
    return node


def open_txn(node, items) -> str:
    txid = node.start_transaction()
    for key, value in items.items():
        node.put(txid, key, value)
    return txid


class TestBatchCommit:
    def test_commit_transactions_coalesces_into_one_flush(self):
        storage = InMemoryStorage()
        node = make_node(storage)
        txids = [open_txn(node, {f"k{i}-{j}": b"v" for j in range(2)}) for i in range(5)]

        results = node.commit_transactions(txids)

        assert set(results) == set(txids)
        assert node.stats.group_commits == 1
        assert node.stats.group_commit_batched_txns == 5
        assert node.group_committer.stats.largest_batch == 5
        reader = node.start_transaction()
        for i in range(5):
            assert node.get(reader, f"k{i}-0") == b"v"

    def test_batches_are_chunked_by_max_txns(self):
        node = make_node(InMemoryStorage(), group_commit_max_txns=2)
        txids = [open_txn(node, {f"k{i}": b"v"}) for i in range(5)]
        node.commit_transactions(txids)
        assert node.stats.group_commits == 3  # 2 + 2 + 1
        assert node.stats.group_commit_batched_txns == 5

    def test_read_only_transactions_commit_without_records(self):
        storage = InMemoryStorage()
        node = make_node(storage)
        commit_store = CommitSetStore(storage)
        writer = open_txn(node, {"k": b"v"})
        reader = node.start_transaction()
        node.get(reader, "k")

        results = node.commit_transactions([writer, reader])
        assert len(results) == 2
        assert commit_store.count() == 1  # only the writer left a record

    def test_recommitting_a_committed_transaction_is_idempotent(self):
        node = make_node(InMemoryStorage())
        txid = open_txn(node, {"k": b"v"})
        first = node.commit_transaction(txid)
        again = node.commit_transactions([txid])
        assert again[txid] == first

    def test_commit_ids_stay_monotonic_within_a_batch(self):
        node = make_node(InMemoryStorage())
        txids = [open_txn(node, {f"k{i}": b"v"}) for i in range(4)]
        results = node.commit_transactions(txids)
        ids = [results[txid] for txid in txids]
        assert ids == sorted(ids)


class TestWriteOrderingUnderFaults:
    def test_fault_between_data_and_record_stages_exposes_nothing(self):
        storage = CommitRecordFailingStorage()
        node = make_node(storage)
        commit_store = CommitSetStore(storage)

        # Preload a consistent baseline version of both keys.
        storage.failing = False
        setup = open_txn(node, {"x": b"x0", "y": b"y0"})
        node.commit_transaction(setup)
        storage.failing = True

        txid = open_txn(node, {"x": b"x1", "y": b"y1"})
        with pytest.raises(StorageUnavailableError):
            node.commit_transaction(txid)

        # Not committed: no record durable, the transaction is still open,
        # and readers see the old, consistent versions of *both* keys.
        assert commit_store.count() == 1
        assert node.transaction_status(txid) is TransactionStatus.RUNNING
        reader = node.start_transaction()
        assert node.get(reader, "x") == b"x0"
        assert node.get(reader, "y") == b"y0"

    def test_fault_mid_group_batch_fractures_no_reads(self):
        storage = CommitRecordFailingStorage()
        node = make_node(storage)

        storage.failing = False
        setup = open_txn(node, {"a": b"a0", "b": b"b0", "c": b"c0"})
        node.commit_transaction(setup)
        storage.failing = True

        txids = [
            open_txn(node, {"a": b"a1", "b": b"b1"}),
            open_txn(node, {"c": b"c1"}),
        ]
        with pytest.raises(StorageUnavailableError):
            node.commit_transactions(txids)

        # The whole batch is invisible; every key still reads its old version.
        reader = node.start_transaction()
        assert node.get(reader, "a") == b"a0"
        assert node.get(reader, "b") == b"b0"
        assert node.get(reader, "c") == b"c0"
        assert node.stats.group_commits == 0

    def test_partial_chunk_failure_finalizes_durable_chunks(self):
        """A failed chunk must not un-commit the chunks that already flushed.

        With max_txns=1 a three-transaction batch flushes as three chunks; if
        only the second chunk's record write fails, the first and third have
        durable commit records — they ARE committed and must become visible
        even though the batch call raises for the failed one.
        """

        class SecondRecordFailingStorage(InMemoryStorage):
            def __init__(self) -> None:
                super().__init__()
                self.record_writes = 0

            def put(self, key, value):
                if is_commit_record_key(key):
                    self.record_writes += 1
                    if self.record_writes == 2:
                        raise StorageUnavailableError("injected fault: second record lost")
                super().put(key, value)

        storage = SecondRecordFailingStorage()
        node = make_node(storage, group_commit_max_txns=1)
        commit_store = CommitSetStore(storage)
        txids = [open_txn(node, {f"pk{i}": f"pv{i}".encode()}) for i in range(3)]

        with pytest.raises(StorageUnavailableError) as excinfo:
            node.commit_transactions(txids)

        # The raised error names the transactions that DID become durable, so
        # batch drivers (the simulator's group-commit gate) can succeed their
        # members instead of failing the whole batch.
        partial = excinfo.value.partial_commit_results
        assert set(partial) == {txids[0], txids[2]}
        assert commit_store.count() == 2
        assert node.transaction_status(txids[0]) is TransactionStatus.COMMITTED
        assert node.transaction_status(txids[1]) is TransactionStatus.RUNNING
        assert node.transaction_status(txids[2]) is TransactionStatus.COMMITTED
        reader = node.start_transaction()
        assert node.get(reader, "pk0") == b"pv0"
        assert node.get(reader, "pk1") is None
        assert node.get(reader, "pk2") == b"pv2"

    def test_aborted_member_does_not_poison_the_batch(self):
        """A prepare-phase failure (one member aborted before the flush) must
        not fail the whole batch: the healthy members commit, and the raised
        error names them in partial_commit_results."""
        from repro.errors import TransactionAbortedError

        node = make_node(InMemoryStorage())
        good = open_txn(node, {"gk": b"gv"})
        doomed = open_txn(node, {"dk": b"dv"})
        node.abort_transaction(doomed)

        with pytest.raises(TransactionAbortedError) as excinfo:
            node.commit_transactions([good, doomed])
        assert set(excinfo.value.partial_commit_results) == {good}
        assert node.transaction_status(good) is TransactionStatus.COMMITTED
        reader = node.start_transaction()
        assert node.get(reader, "gk") == b"gv"
        assert node.get(reader, "dk") is None

    def test_recovery_after_fault_recommits_cleanly(self):
        storage = CommitRecordFailingStorage()
        node = make_node(storage)
        txid = open_txn(node, {"k": b"v1"})
        with pytest.raises(StorageUnavailableError):
            node.commit_transaction(txid)

        # The storage heals; the same transaction can commit (idempotent
        # client retry) and becomes fully visible.
        storage.failing = False
        commit_id = node.commit_transaction(txid)
        assert commit_id is not None
        reader = node.start_transaction()
        assert node.get(reader, "k") == b"v1"


class TestConcurrentCoalescing:
    def test_concurrent_commits_share_flushes(self):
        node = make_node(
            InMemoryStorage(),
            enable_group_commit=True,
            group_commit_window=0.2,
            group_commit_max_txns=8,
        )
        txids = [open_txn(node, {f"t{i}": b"v"}) for i in range(6)]
        barrier = threading.Barrier(len(txids))
        errors: list[BaseException] = []

        def commit(txid: str) -> None:
            try:
                barrier.wait(timeout=5.0)
                node.commit_transaction(txid)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=commit, args=(txid,)) for txid in txids]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        assert not errors
        assert node.stats.transactions_committed == 6
        assert node.stats.group_commit_batched_txns == 6
        # At least some commits rode a shared batch (the window makes the
        # leader wait for the stragglers).
        assert node.group_committer.stats.largest_batch >= 2
        assert node.stats.group_commits < 6
        reader = node.start_transaction()
        for i in range(6):
            assert node.get(reader, f"t{i}") == b"v"

    def test_single_commit_degenerates_to_batch_of_one(self):
        node = make_node(InMemoryStorage(), enable_group_commit=True)
        txid = open_txn(node, {"k": b"v"})
        node.commit_transaction(txid)
        assert node.stats.group_commits == 1
        assert node.stats.group_commit_batched_txns == 1


class TestSimulatorGuards:
    def test_deployment_spec_rejects_wall_clock_window(self):
        from repro.simulation.cluster_sim import DeploymentSpec

        with pytest.raises(ValueError):
            DeploymentSpec(mode="aft", group_commit_window=0.1)
        # The same constraint applies when a full node_config bypasses the
        # per-field knobs.
        with pytest.raises(ValueError):
            DeploymentSpec(mode="aft", node_config=AftConfig(group_commit_window=0.1))
        # window=0 (still coalesces queued commits) is fine.
        DeploymentSpec(mode="aft", enable_group_commit=True)

    def test_config_rejects_contradictory_group_commit_combinations(self):
        with pytest.raises(ValueError):
            AftConfig(enable_group_commit=True, enable_io_pipeline=False)
        with pytest.raises(ValueError):
            AftConfig(enable_group_commit=True, batch_commit_writes=False)
        with pytest.raises(ValueError):
            AftConfig(group_commit_max_txns=0)
        with pytest.raises(ValueError):
            AftConfig(group_commit_window=-1.0)


class TestGroupCommitterDirect:
    def test_flush_error_propagates_to_every_member(self):
        storage = CommitRecordFailingStorage()
        committer = GroupCommitter(storage, CommitSetStore(storage), max_txns=4)
        node = make_node(InMemoryStorage())  # only used to mint records
        txids = [open_txn(node, {f"k{i}": b"v"}) for i in range(2)]
        pendings = []
        for txid in txids:
            prepared = node._prepare_commit(txid)
            pendings.append(PendingCommit(txid=txid, record=prepared.record, data=prepared.to_persist))

        with pytest.raises(StorageUnavailableError):
            committer.commit_batch(pendings)
        for pending in pendings:
            assert pending.error is not None
            assert pending.done.is_set()

    def test_stats_track_flushes(self):
        storage = InMemoryStorage()
        committer = GroupCommitter(storage, CommitSetStore(storage), max_txns=2)
        node = make_node(InMemoryStorage())
        txids = [open_txn(node, {f"k{i}": b"v"}) for i in range(3)]
        pendings = []
        for txid in txids:
            prepared = node._prepare_commit(txid)
            pendings.append(PendingCommit(txid=txid, record=prepared.record, data=prepared.to_persist))
        committer.commit_batch(pendings)
        assert committer.stats.flushes == 2
        assert committer.stats.transactions_flushed == 3
        assert committer.stats.largest_batch == 2
