"""The observability plane: tracing, metrics, exporters, wire propagation.

The acceptance bar:

* metrics are dependency-free and cheap (counters, gauges, log-bucketed
  histograms with sane quantiles);
* the tracer is a process-global switch — disabled means a shared no-op
  handle and zero recorded spans; enabled means spans nest through a
  context variable and transactions anchor through a txid registry;
* the trace context survives the wire as a compact string that old peers
  simply drop (mixed-version interop both directions);
* one transaction driven through each runtime — in-process sync,
  in-process async, and the real socket cluster (router + 2 node
  servers over localhost TCP) — yields ONE connected span tree touching
  every layer: client, router, node, storage IO, group commit.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.clock import LogicalClock
from repro.config import AftConfig, ClusterConfig, ObservabilityConfig
from repro.core.cluster import AftCluster
from repro.core.node import AftNode
from repro.observability import metrics as om
from repro.observability import trace as tr
from repro.observability.export import (
    load_spans,
    spans_to_chrome,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.observability.sink import ObservabilitySink
from repro.observability.trace import Span, TraceContext
from repro.rpc import messages as m
from repro.rpc.client import AsyncRouterClient
from repro.rpc.node_server import NodeServer
from repro.rpc.router import RouterServer
from repro.storage.memory import InMemoryStorage


@pytest.fixture(autouse=True)
def _tracer_reset():
    """Every test starts and ends with the process tracer off and empty."""
    tr.disable()
    tr.tracer().clear()
    yield
    tr.disable()
    tr.tracer().clear()


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_and_gauge(self):
        reg = om.MetricsRegistry("t")
        reg.counter("commits").inc()
        reg.counter("commits").inc(2.5)
        reg.gauge("depth").set(7)
        reg.gauge("depth").add(-2)
        snap = reg.snapshot()
        assert snap["registry"] == "t"
        assert snap["counters"] == {"commits": 3.5}
        assert snap["gauges"] == {"depth": 5.0}

    def test_histogram_buckets_are_powers_of_two(self):
        h = om.Histogram(base=1.0)
        # Bucket i covers (2**(i-1), 2**i]: exact powers land on their own
        # boundary, one-past lands in the next bucket.
        for value, bucket in [(0.5, 0), (1.0, 0), (1.1, 1), (2.0, 1), (2.1, 2), (8.0, 3)]:
            assert h._bucket_index(value) == bucket, value

    def test_histogram_stats_and_percentiles(self):
        h = om.Histogram(base=1e-6)
        for ms in [1, 1, 2, 3, 100]:
            h.record(ms / 1e3)
        d = h.as_dict()
        assert d["count"] == 5
        assert d["min"] == pytest.approx(1e-3)
        assert d["max"] == pytest.approx(0.1)
        assert d["mean"] == pytest.approx(0.0214)
        # p50 is the upper bound of the bucket holding rank 3 (~2 ms);
        # p99 is clamped to the observed max.
        assert 2e-3 <= d["p50"] <= 4.1e-3
        assert d["p99"] == pytest.approx(0.1)

    def test_empty_histogram(self):
        h = om.Histogram()
        assert h.percentile(0.99) == 0.0
        assert h.mean == 0.0
        assert h.as_dict()["min"] == 0.0

    def test_registry_get_or_create_and_reset(self):
        reg = om.MetricsRegistry("t")
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_global_registry_discoverable(self):
        reg = om.registry("test-observability-global")
        assert reg is om.registry("test-observability-global")
        assert reg in om.all_registries()

    def test_snapshots_jsonl(self, tmp_path):
        reg = om.MetricsRegistry("solo")
        reg.counter("n").inc(4)
        reg.histogram("lat").record(0.01)
        path = tmp_path / "metrics.jsonl"
        assert om.append_snapshots_jsonl(path, [reg]) == 1
        line = json.loads(path.read_text().strip())
        assert line["counters"] == {"n": 4.0}
        assert line["histograms"]["lat"]["count"] == 1


# --------------------------------------------------------------------- #
# Tracer core
# --------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_is_a_shared_noop(self):
        assert not tr.enabled()
        handle = tr.span("anything", txid="t1", attr=1)
        assert handle is tr.span("other")  # the one shared null handle
        with handle as h:
            h.set(more=2).bind_txn("t1")
            assert h.context is None
        tr.annotate("nothing")
        assert tr.wire_context() == ""
        assert tr.tracer().spans() == []

    def test_spans_nest_through_the_context_var(self):
        tr.enable(process="test")
        with tr.span("outer") as outer:
            with tr.span("inner"):
                pass
        spans = {s.name: s for s in tr.tracer().spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].duration >= spans["inner"].duration >= 0.0
        assert outer.context.trace_id == spans["outer"].trace_id

    def test_explicit_parent_wins_over_ambient(self):
        tr.enable(process="test")
        remote = TraceContext("txn-abc", "span-42")
        with tr.span("ambient"):
            with tr.span("child", parent=remote):
                pass
        child = next(s for s in tr.tracer().spans() if s.name == "child")
        assert child.trace_id == "txn-abc"
        assert child.parent_id == "span-42"

    def test_bind_txn_anchors_only_roots(self):
        tr.enable(process="test")
        with tr.span("root") as root:
            root.bind_txn("tx1")
        # A root bound to a txn renames its trace and registers the anchor...
        root_span = tr.tracer().spans()[0]
        assert root_span.trace_id == "txn-tx1"
        assert root_span.txid == "tx1"
        assert tr.tracer().txn_context("tx1").trace_id == "txn-tx1"
        # ...so a later parentless span for the same txn joins that trace.
        with tr.span("aft.start", parent=tr.tracer().txn_context("tx1")):
            pass
        joined = tr.tracer().spans()[-1]
        assert joined.trace_id == "txn-tx1"
        assert joined.parent_id == root_span.span_id
        # A *nested* span binding the txn re-keys onto the txn trace too —
        # the start chain (client → router → node) re-keys every layer once
        # the txid exists, so the tree stays connected — but only a root
        # registers the anchor.
        with tr.span("outer2"):
            with tr.span("inner2") as inner:
                inner.bind_txn("tx2")
        inner_span = next(s for s in tr.tracer().spans() if s.name == "inner2")
        outer_span = next(s for s in tr.tracer().spans() if s.name == "outer2")
        assert inner_span.trace_id == "txn-tx2"
        assert inner_span.parent_id == outer_span.span_id
        assert tr.tracer().txn_context("tx2") is None
        tr.end_txn("tx1")
        assert tr.tracer().txn_context("tx1") is None

    def test_exceptions_propagate_and_still_record(self):
        tr.enable(process="test")
        with pytest.raises(ValueError):
            with tr.span("doomed"):
                raise ValueError("boom")
        (span,) = tr.tracer().spans()
        assert span.name == "doomed"
        assert span.attrs.get("error") == "ValueError"

    def test_ring_capacity_drops_oldest(self):
        tr.enable(process="test", capacity=4)
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        names = [s.name for s in tr.tracer().spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_drain_empties_the_ring(self):
        tr.enable(process="test")
        with tr.span("once"):
            pass
        assert [s.name for s in tr.tracer().drain()] == ["once"]
        assert tr.tracer().spans() == []

    def test_annotate_is_an_instant(self):
        tr.enable(process="test")
        with tr.span("op"):
            tr.annotate("mark", detail=3)
        mark = next(s for s in tr.tracer().spans() if s.name == "mark")
        op = next(s for s in tr.tracer().spans() if s.name == "op")
        assert mark.duration == 0.0
        assert mark.parent_id == op.span_id
        assert mark.attrs == {"detail": 3}

    def test_apply_config_enables(self):
        tr.apply_config(ObservabilityConfig(enabled=True, trace_capacity=8))
        assert tr.enabled()
        # Disabled configs don't turn an enabled tracer back off (enable-only
        # semantics: several components share the process switch).
        tr.apply_config(ObservabilityConfig(enabled=False))
        assert tr.enabled()

    def test_span_roundtrip_dict(self):
        span = Span("txn-1", "s2", "s1", "node.get", 12.5, 0.25, "node:n0", "1", {"k": 1})
        assert Span.from_dict(span.as_dict()).as_dict() == span.as_dict()


# --------------------------------------------------------------------- #
# Wire form of the trace context (mixed-version interop)
# --------------------------------------------------------------------- #
class TestWireContext:
    def test_to_wire_is_a_compact_string(self):
        assert TraceContext("txn-9", "span-3").to_wire() == "txn-9:span-3"

    def test_from_wire_accepts_string_and_legacy_dict(self):
        assert TraceContext.from_wire("txn-9:span-3") == TraceContext("txn-9", "span-3")
        # Trace ids may themselves contain colons — split on the last one.
        assert TraceContext.from_wire("a:b:c") == TraceContext("a:b", "c")
        assert TraceContext.from_wire({"t": "txn-9", "s": "span-3"}) == TraceContext(
            "txn-9", "span-3"
        )

    @pytest.mark.parametrize("junk", ["", "no-separator", ":", "x:", ":y", 42, None, [], {}])
    def test_from_wire_rejects_junk(self, junk):
        assert TraceContext.from_wire(junk) is None

    def test_wire_context_follows_the_active_span(self):
        assert tr.wire_context() == ""
        tr.enable(process="test")
        assert tr.wire_context() == ""  # enabled but no active span
        with tr.span("op") as handle:
            assert tr.wire_context() == handle.context.to_wire()

    def test_old_peer_drops_the_trace_field(self):
        # A new peer sends a traced message; an old peer's schema has no
        # ``trace`` dataclass field, which from_body's unknown-field filter
        # models exactly: simulate by dropping the key, then reconstructing.
        msg = m.ClientGet(txid="t1", keys=["k"], trace="txn-t1:span-7")
        body = msg.to_body()
        del body["trace"]
        old_view = m.ClientGet.from_body(body)
        assert old_view.trace == ""  # the field default: untraced
        assert TraceContext.from_wire(old_view.trace) is None

    def test_new_peer_reads_an_old_peers_untraced_message(self):
        # Old peers never set ``trace``; spans started from such messages
        # root a fresh trace instead of crashing or mis-parenting.
        old_msg = m.ClientGet.from_body({"txid": "t1", "keys": ["k"]})
        tr.enable(process="test")
        with tr.span("router.get", parent=old_msg.trace):
            pass
        (span,) = tr.tracer().spans()
        assert span.parent_id is None

    def test_legacy_dict_trace_still_parents(self):
        # A peer one schema back shipped {"t", "s"} dicts; spans parent
        # under them identically.
        tr.enable(process="test")
        with tr.span("router.get", parent={"t": "txn-old", "s": "span-old"}):
            pass
        (span,) = tr.tracer().spans()
        assert span.trace_id == "txn-old"
        assert span.parent_id == "span-old"


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #
class TestExporters:
    def _spans(self):
        return [
            Span("txn-1", "a", None, "client.commit", 1.0, 0.5, "client", "1"),
            Span("txn-1", "b", "a", "router.commit", 1.1, 0.3, "router", "1"),
            Span("txn-1", "c", None, "router.node_failed", 1.2, 0.0, "router"),
        ]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_spans_jsonl(path, self._spans()) == 3
        merged = load_spans([path])
        assert [s.span_id for s in merged] == ["a", "b", "c"]

    def test_load_spans_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(path, self._spans()[:1])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n\n{\"also\": \"missing fields\"}\n")
        assert len(load_spans([path])) == 1

    def test_chrome_trace_shapes(self, tmp_path):
        doc = spans_to_chrome(self._spans())
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["client.commit"]["ph"] == "X"
        assert by_name["client.commit"]["dur"] == pytest.approx(0.5e6)
        assert by_name["router.node_failed"]["ph"] == "i"  # instant
        # Distinct processes get distinct pid rows, named by metadata events.
        assert by_name["client.commit"]["pid"] != by_name["router.commit"]["pid"]
        names = {e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert names == {"client", "router"}
        out = write_chrome_trace(tmp_path / "chrome.json", self._spans())
        assert json.loads(out.read_text())["displayTimeUnit"] == "ms"


# --------------------------------------------------------------------- #
# Connected traces across every runtime
# --------------------------------------------------------------------- #
def _assert_connected(spans: list[Span], txid: str) -> list[Span]:
    """One root, every parent resolvable inside the transaction's trace."""
    members = [s for s in spans if s.trace_id == f"txn-{txid}"]
    assert members, f"no spans for txn {txid}"
    ids = {s.span_id for s in members}
    roots = [s for s in members if s.parent_id is None]
    orphans = [s for s in members if s.parent_id is not None and s.parent_id not in ids]
    assert len(roots) == 1, [s.name for s in roots]
    assert not orphans, [(s.name, s.parent_id) for s in orphans]
    return members


class TestInprocessPropagation:
    def _observed_cluster(self, **node_overrides) -> AftCluster:
        return AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(num_nodes=2, observability={"enabled": True}),
            node_config=AftConfig(**node_overrides),
        )

    def test_mapping_observability_block_is_coerced(self):
        cluster = self._observed_cluster()
        assert isinstance(cluster.cluster_config.observability, ObservabilityConfig)
        assert cluster.cluster_config.observability.enabled
        cluster.shutdown()

    def test_sync_txn_is_one_connected_tree(self):
        cluster = self._observed_cluster()
        client = cluster.client()
        try:
            tr.tracer().clear()
            txid = client.start_transaction()
            client.put(txid, "k", b"v")
            client.get(txid, "k")
            client.commit_transaction(txid)
        finally:
            cluster.shutdown()
        members = _assert_connected(tr.tracer().spans(), txid)
        names = {s.name for s in members}
        assert "aft.start" in names
        assert "aft.commit.persist" in names
        assert "io.plan" in names

    def test_group_commit_flush_joins_the_txn_trace(self):
        cluster = self._observed_cluster(enable_group_commit=True)
        client = cluster.client()
        try:
            tr.tracer().clear()
            txid = client.start_transaction()
            client.put(txid, "k", b"v")
            client.commit_transaction(txid)
        finally:
            cluster.shutdown()
        members = _assert_connected(tr.tracer().spans(), txid)
        names = {s.name for s in members}
        assert "gc.enqueue" in names
        assert "gc.flush" in names

    def test_async_txn_is_one_connected_tree(self):
        node = AftNode(
            InMemoryStorage(),
            config=AftConfig(),
            clock=LogicalClock(start=1000.0, auto_step=0.001),
            node_id="async-node",
        )
        node.start()
        tr.enable(process="test")
        tr.tracer().clear()

        async def scenario() -> str:
            txid = node.start_transaction()
            await node.put_async(txid, "k", b"v")
            await node.get_many_async(txid, ["k"])
            await node.commit_transaction_async(txid)
            return txid

        try:
            txid = asyncio.run(scenario())
        finally:
            node.stop()
        members = _assert_connected(tr.tracer().spans(), txid)
        assert {"aft.start", "aft.commit.persist", "io.plan"} <= {s.name for s in members}


class TestSocketClusterTrace:
    """THE acceptance test: one txn through a real localhost TCP cluster
    (router + 2 node servers) yields one connected causal chain spanning
    client → router → node → storage IO → group commit."""

    def test_single_txn_connected_across_processes(self):
        tr.enable(process="test")

        async def scenario() -> str:
            router = RouterServer(port=0, lease_duration=5.0, heartbeat_interval=1.0)
            await router.start()
            nodes = []
            try:
                for i in range(2):
                    node = NodeServer(
                        f"n{i}",
                        router_port=router.port,
                        config=AftConfig(enable_group_commit=True),
                    )
                    await node.start()
                    nodes.append(node)
                client = await AsyncRouterClient.connect("127.0.0.1", router.port)
                try:
                    await client.wait_ready(2)
                    tr.tracer().clear()
                    txid = await client.start_transaction()
                    await client.put(txid, "traced", b"payload")
                    await client.get(txid, "traced")
                    await client.commit_transaction(txid)
                finally:
                    await client.close()
                return txid
            finally:
                for node in nodes:
                    await node.stop()
                await router.stop()

        txid = scenario_txid = asyncio.run(scenario())
        members = _assert_connected(tr.tracer().spans(), scenario_txid)
        layers = {name.split(".", 1)[0] for name in (s.name for s in members)}
        # Every layer of the stack appears in the one transaction trace.
        assert {"client", "router", "node", "aft", "io", "gc"} <= layers, sorted(
            s.name for s in members
        )
        # And causality is real: the client's root span opened first.
        root = next(s for s in members if s.parent_id is None)
        assert root.name == "client.start"
        assert root.txid == txid
        assert all(s.start >= root.start for s in members)


# --------------------------------------------------------------------- #
# The on-disk sink
# --------------------------------------------------------------------- #
class TestSink:
    def test_sink_writes_spans_and_metrics(self, tmp_path):
        tr.enable(process="sink-test")
        config = ObservabilityConfig(
            enabled=True, trace_dir=str(tmp_path), metrics_interval=0.01
        )
        om.registry("sink-test").counter("ticks").inc()

        async def scenario() -> None:
            sink = ObservabilitySink("router", config)
            sink.start()
            assert sink.active
            with tr.span("op"):
                pass
            await asyncio.sleep(0.05)
            await sink.stop()

        asyncio.run(scenario())
        spans = load_spans([tmp_path / "trace-router.jsonl"])
        assert [s.name for s in spans] == ["op"]
        metrics_lines = (tmp_path / "metrics-router.jsonl").read_text().splitlines()
        assert any(json.loads(line)["registry"] == "sink-test" for line in metrics_lines)

    def test_sink_inactive_without_trace_dir(self):
        sink = ObservabilitySink("node", ObservabilityConfig(enabled=True))
        assert not sink.active
        sink.start()  # no-op, no crash, nothing scheduled
        assert sink._task is None
