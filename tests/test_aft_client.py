"""The :class:`AftClient` facade: one Table-1 surface, every deployment shape.

``inproc://`` must behave exactly like driving the wrapped
:class:`AftCluster` directly, and ``tcp://`` must behave like ``inproc://``
— the connection string is configuration, not semantics.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

import repro
from repro.client import AftClient
from repro.config import ClusterConfig
from repro.core.cluster import AftCluster
from repro.errors import AftError, UnknownTransactionError
from repro.storage.memory import InMemoryStorage


class TestInproc:
    def test_connect_builds_and_owns_a_cluster(self):
        client = repro.connect("inproc://?nodes=3&standbys=1")
        try:
            assert isinstance(client, AftClient)
            assert len(client.cluster.nodes) == 3
            assert client.cluster.standby_count() == 1
            with client.transaction() as txn:
                txn.put("k", b"v")
            client.cluster.run_multicast_round()
            tx = client.start_transaction()
            assert client.get(tx, "k") == b"v"
            assert client.get_many(tx, ["k", "nope"]) == {"k": b"v", "nope": None}
            commit_id = client.commit_transaction(tx)
            assert commit_id.timestamp > 0
        finally:
            client.close()
        # close() on an owned cluster shuts the nodes down.
        assert not any(node.is_running for node in client.cluster.nodes)

    def test_connect_wraps_a_caller_owned_cluster(self):
        cluster = AftCluster(InMemoryStorage(), cluster_config=ClusterConfig(num_nodes=2))
        client = repro.connect("inproc://", cluster=cluster)
        with client.transaction() as txn:
            txn.put("k", "str values are encoded")
        client.close()
        # A wrapped cluster is the caller's: close() must not touch it.
        assert all(node.is_running for node in cluster.nodes)
        cluster.shutdown()

    def test_context_manager_and_abort(self):
        with repro.connect("inproc://") as client:
            tx = client.start_transaction()
            client.put(tx, "gone", b"x")
            client.abort_transaction(tx)
            with pytest.raises(UnknownTransactionError):
                client.get(tx, "gone")

    def test_session_abort_on_exception(self):
        with repro.connect("inproc://") as client:
            with pytest.raises(RuntimeError):
                with client.transaction() as txn:
                    txn.put("k", b"v")
                    raise RuntimeError("application error")
            tx = client.start_transaction()
            assert client.get(tx, "k") is None

    def test_affinity_key_is_accepted(self):
        with repro.connect("inproc://?nodes=2") as client:
            with client.transaction(affinity_key="hot") as txn:
                txn.put("hot", b"1")


class TestUrlParsing:
    @pytest.mark.parametrize("url", ["http://x", "inmem://", "tcp://", "tcp://host"])
    def test_bad_urls_are_rejected(self, url):
        with pytest.raises(AftError):
            repro.connect(url)


class _BackgroundCluster:
    """A router + nodes on a daemon loop thread, for the sync tcp facade."""

    def __init__(self, n_nodes: int = 2) -> None:
        from repro.rpc.node_server import NodeServer
        from repro.rpc.router import RouterServer

        self.port: int | None = None
        ready = threading.Event()
        self._loop = asyncio.new_event_loop()

        async def boot():
            self._router = RouterServer(port=0)
            await self._router.start()
            self._servers = [NodeServer(f"n{i}", router_port=self._router.port) for i in range(n_nodes)]
            for server in self._servers:
                await server.start()
            self.port = self._router.port
            self._stop = asyncio.Event()
            ready.set()
            await self._stop.wait()
            for server in self._servers:
                await server.stop()
            await self._router.stop()

        self._thread = threading.Thread(
            target=lambda: self._loop.run_until_complete(boot()), daemon=True
        )
        self._thread.start()
        assert ready.wait(15), "socket cluster failed to boot"

    def shutdown(self) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


class TestTcp:
    def test_tcp_facade_matches_inproc_semantics(self):
        cluster = _BackgroundCluster(n_nodes=2)
        try:
            with repro.connect(f"tcp://127.0.0.1:{cluster.port}") as client:
                with client.transaction() as txn:
                    txn.put("a", b"1")
                    txn.put("b", "2")
                assert txn.commit_id is not None
                tx = client.start_transaction()
                assert client.get_many(tx, ["a", "b", "c"]) == {
                    "a": b"1",
                    "b": b"2",
                    "c": None,
                }
                commit_id = client.commit_transaction(tx)
                assert commit_id.uuid
                # Aborts work and errors keep their class across the wire.
                tx = client.start_transaction()
                client.put(tx, "doomed", b"x")
                client.abort_transaction(tx)
                with pytest.raises(UnknownTransactionError):
                    client.get(tx, "doomed")
        finally:
            cluster.shutdown()

    def test_tcp_connect_failure_raises_cleanly(self):
        with pytest.raises(Exception):
            repro.connect("tcp://127.0.0.1:1")  # nothing listens on port 1
