"""Tests for simulated deployments (execution programs, clients, cluster_sim)."""

from __future__ import annotations

import pytest

from repro.config import MetadataPlaneConfig
from repro.simulation.cluster_sim import (
    DeploymentSpec,
    FailureScript,
    SimClock,
    make_storage,
    run_deployment,
)
from repro.simulation.cost_model import DeploymentCostModel, latency_model_for_backend
from repro.simulation.kernel import Simulation
from repro.storage.dynamodb import SimulatedDynamoDB
from repro.storage.rediscluster import SimulatedRedisCluster
from repro.storage.s3 import SimulatedS3
from repro.workloads.spec import TransactionSpec, WorkloadSpec


def small_workload(zipf: float = 1.0, num_keys: int = 200) -> WorkloadSpec:
    return WorkloadSpec(
        transaction=TransactionSpec.paper_default(),
        num_keys=num_keys,
        zipf_theta=zipf,
        distinct_keys_per_transaction=False,
    )


def small_spec(**overrides) -> DeploymentSpec:
    defaults = dict(
        mode="aft",
        backend="dynamodb",
        workload=small_workload(),
        num_clients=4,
        requests_per_client=15,
        seed=1,
    )
    defaults.update(overrides)
    return DeploymentSpec(**defaults)


class TestBuildingBlocks:
    def test_sim_clock_tracks_simulation_time(self):
        sim = Simulation()
        clock = SimClock(sim)
        assert clock.now() == 0.0

        def advance():
            yield sim.timeout(12.5)

        sim.process(advance())
        sim.run()
        assert clock.now() == 12.5

    def test_make_storage_returns_the_right_engine(self):
        sim = Simulation()
        clock = SimClock(sim)
        assert isinstance(make_storage("dynamodb", clock), SimulatedDynamoDB)
        assert isinstance(make_storage("s3", clock), SimulatedS3)
        assert isinstance(make_storage("redis", clock), SimulatedRedisCluster)
        with pytest.raises(ValueError):
            make_storage("oracle", clock)

    def test_latency_model_for_unknown_backend(self):
        with pytest.raises(ValueError):
            latency_model_for_backend("unknown")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DeploymentSpec(mode="aft", requests_per_client=None, duration=None)
        with pytest.raises(ValueError):
            DeploymentSpec(mode="nonsense")
        with pytest.raises(ValueError):
            DeploymentSpec(mode="dynamo_txn", backend="redis")


class TestAftDeployments:
    def test_all_requests_complete_and_are_anomaly_free(self):
        result = run_deployment(small_spec())
        stats = result.client_result.stats
        assert stats.requests_completed == 4 * 15
        assert stats.requests_failed == 0
        assert result.anomaly_counts.ryw_anomalies == 0
        assert result.anomaly_counts.fractured_read_anomalies == 0
        assert result.latency.median_ms > 0

    def test_latencies_track_backend_speed(self):
        dynamo = run_deployment(small_spec(backend="dynamodb"))
        redis = run_deployment(small_spec(backend="redis"))
        s3 = run_deployment(small_spec(backend="s3", requests_per_client=8))
        assert redis.latency.median_ms < dynamo.latency.median_ms < s3.latency.median_ms

    def test_multi_node_deployment_distributes_commits(self):
        result = run_deployment(small_spec(num_nodes=3, num_clients=6, requests_per_client=10))
        committed_per_node = [stats["committed"] for stats in result.node_stats]
        assert sum(committed_per_node) >= 6 * 10
        assert sum(1 for count in committed_per_node if count > 0) >= 2

    def test_data_cache_improves_hit_rate_on_skewed_workloads(self):
        cached = run_deployment(small_spec(workload=small_workload(zipf=2.0), enable_data_cache=True))
        uncached = run_deployment(small_spec(workload=small_workload(zipf=2.0), enable_data_cache=False))
        assert cached.data_cache_hit_rate > 0.2
        assert uncached.data_cache_hit_rate == 0.0
        assert cached.latency.median_ms <= uncached.latency.median_ms + 1.0

    def test_gc_reduces_storage_footprint(self):
        with_gc = run_deployment(
            small_spec(workload=small_workload(zipf=2.0, num_keys=50), enable_gc=True, duration=30.0,
                       requests_per_client=None, num_clients=6)
        )
        without_gc = run_deployment(
            small_spec(workload=small_workload(zipf=2.0, num_keys=50), enable_gc=False, duration=30.0,
                       requests_per_client=None, num_clients=6)
        )
        assert with_gc.storage_keys_at_end < without_gc.storage_keys_at_end
        assert sum(count for _, count in with_gc.gc_deletions) > 0
        assert sum(count for _, count in without_gc.gc_deletions) == 0

    def test_pruning_reduces_multicast_volume(self):
        hot_workload = small_workload(zipf=2.0, num_keys=5)
        pruned = run_deployment(
            small_spec(num_nodes=2, num_clients=6, requests_per_client=40, workload=hot_workload,
                       prune_superseded_broadcasts=True)
        )
        unpruned = run_deployment(
            small_spec(num_nodes=2, num_clients=6, requests_per_client=40, workload=hot_workload,
                       prune_superseded_broadcasts=False)
        )
        assert pruned.multicast_records_pruned > 0
        assert unpruned.multicast_records_pruned == 0
        assert pruned.multicast_records_broadcast < unpruned.multicast_records_broadcast

    def test_failure_script_drops_and_recovers_throughput(self):
        spec = small_spec(
            num_nodes=2,
            num_clients=24,
            requests_per_client=None,
            duration=30.0,
            cost_model=DeploymentCostModel(node_request_slots=12),
            failure_script=FailureScript(
                fail_node_index=0, fail_at=8.0, detection_delay=2.0, replacement_delay=10.0
            ),
        )
        result = run_deployment(spec)
        throughput = result.client_result.throughput
        healthy = throughput.throughput_between(2.0, 8.0)
        degraded = throughput.throughput_between(10.0, 20.0)
        recovered = throughput.throughput_between(24.0, 30.0)
        assert degraded < healthy
        assert recovered > degraded
        # Committed data survives the failure: no anomalies, no failed requests
        # beyond transient retries.
        assert result.anomaly_counts.fractured_read_anomalies == 0


class TestMetadataPlaneDeployments:
    def test_group_commit_window_coalesces_in_simulated_time(self):
        """ROADMAP item 4: with a positive window the simulator's group
        commit actually batches — concurrent committers share flushes — and
        the run stays complete and anomaly-free."""
        spec = small_spec(
            num_clients=12,
            requests_per_client=8,
            enable_group_commit=True,
            group_commit_window=0.005,
        )
        result = run_deployment(spec)
        stats = result.client_result.stats
        assert stats.requests_completed == 12 * 8
        assert stats.requests_failed == 0
        assert result.anomaly_counts.ryw_anomalies == 0
        assert result.anomaly_counts.fractured_read_anomalies == 0
        node = result.node_stats[0]
        assert node["group_commits"] > 0
        # The batching the single-threaded seed could never show: strictly
        # more transactions flushed than flushes (average batch > 1).
        assert node["group_commit_batched_txns"] > node["group_commits"]

    def test_spec_window_engages_gate_alongside_explicit_node_config(self):
        """A window accepted by validation must never be silently ignored:
        the gate engages from the spec-level knobs even when a full
        node_config (without its own window) is supplied."""
        from repro.config import AftConfig

        spec = small_spec(
            num_clients=10,
            requests_per_client=6,
            node_config=AftConfig(enable_group_commit=True),
            enable_group_commit=True,
            group_commit_window=0.005,
        )
        result = run_deployment(spec)
        node = result.node_stats[0]
        assert node["group_commit_batched_txns"] > node["group_commits"]

    def test_zero_window_still_degenerates_to_singleton_batches(self):
        result = run_deployment(
            small_spec(num_clients=6, requests_per_client=6, enable_group_commit=True)
        )
        node = result.node_stats[0]
        assert node["group_commits"] == node["group_commit_batched_txns"]

    def test_window_requires_group_commit(self):
        with pytest.raises(ValueError):
            small_spec(group_commit_window=0.005)

    def test_sharded_lease_partitioned_deployment_matches_direct(self):
        """The full new plane produces the same client-visible outcome as the
        seed plane on an identical workload."""
        base = dict(num_nodes=3, num_clients=6, requests_per_client=10)
        seed_result = run_deployment(small_spec(**base))
        plane_result = run_deployment(
            small_spec(
                **base,
                metadata_plane=MetadataPlaneConfig(
                    transport="sharded",
                    relay_fanout=2,
                    membership="lease",
                    lease_duration=5.0,
                    keyspace="partitioned",
                ),
            )
        )
        for result in (seed_result, plane_result):
            assert result.client_result.stats.requests_completed == 6 * 10
            assert result.client_result.stats.requests_failed == 0
            assert result.anomaly_counts.ryw_anomalies == 0
            assert result.anomaly_counts.fractured_read_anomalies == 0
        assert sum(s["committed"] for s in plane_result.node_stats) >= 6 * 10

    def test_lease_membership_charges_detection_delay(self):
        """With lease membership the failure script's detection delay comes
        from the cost model (lease expiry), not the scripted constant."""
        spec = small_spec(
            num_nodes=2,
            num_clients=8,
            requests_per_client=None,
            duration=40.0,
            metadata_plane=MetadataPlaneConfig(
                membership="lease", lease_duration=6.0, heartbeat_interval=1.0
            ),
            failure_script=FailureScript(
                fail_node_index=0, fail_at=8.0, detection_delay=0.1, replacement_delay=10.0
            ),
        )
        result = run_deployment(spec)
        breakdown = result.recovery_breakdown
        assert breakdown["membership"] == "lease"
        # The victim's last renewal rode the 1s multicast cadence, so its
        # lease lapses 5-6s after the crash (plus the detector's pass) —
        # nothing like the scripted 0.1s constant.
        assert 5.0 <= breakdown["detection_s"] <= 6.1
        assert breakdown["rejoined_at"] > 8.0 + breakdown["detection_s"]

    def test_spec_metadata_plane_validation(self):
        """The plane config validates itself at construction, so a spec can
        never carry an invalid strategy selection."""
        with pytest.raises(ValueError):
            small_spec(metadata_plane=MetadataPlaneConfig(transport="smoke-signals"))
        with pytest.raises(ValueError):
            small_spec(
                metadata_plane=MetadataPlaneConfig(
                    membership="lease", lease_duration=0.5, heartbeat_interval=1.0
                )
            )


class TestBaselineDeployments:
    def test_plain_mode_exhibits_anomalies_under_contention(self):
        result = run_deployment(
            small_spec(mode="plain", num_clients=8, requests_per_client=40,
                       workload=small_workload(zipf=1.5, num_keys=50))
        )
        counts = result.anomaly_counts
        assert counts.committed_transactions == 8 * 40
        assert counts.ryw_anomalies + counts.fractured_read_anomalies > 0

    def test_dynamo_txn_mode_avoids_ryw_but_not_fractured_reads(self):
        result = run_deployment(
            small_spec(mode="dynamo_txn", num_clients=8, requests_per_client=40,
                       workload=small_workload(zipf=1.5, num_keys=50))
        )
        counts = result.anomaly_counts
        assert counts.ryw_anomalies == 0
        assert counts.fractured_read_anomalies >= 0
        assert result.conflict_retries >= 0

    def test_aft_beats_baselines_on_anomalies_for_the_same_workload(self):
        workload = small_workload(zipf=1.5, num_keys=50)
        aft = run_deployment(small_spec(mode="aft", workload=workload, num_clients=8, requests_per_client=40))
        plain = run_deployment(small_spec(mode="plain", workload=workload, num_clients=8, requests_per_client=40))
        aft_total = aft.anomaly_counts.ryw_anomalies + aft.anomaly_counts.fractured_read_anomalies
        plain_total = plain.anomaly_counts.ryw_anomalies + plain.anomaly_counts.fractured_read_anomalies
        assert aft_total == 0
        assert plain_total > 0

    def test_storage_concurrency_limit_caps_throughput(self):
        unlimited = run_deployment(small_spec(num_clients=12, requests_per_client=25))
        limited = run_deployment(
            small_spec(num_clients=12, requests_per_client=25, storage_concurrency_limit=2)
        )
        assert limited.throughput < unlimited.throughput
