"""Tests for the Elle-style dependency-cycle checker.

Deterministic shape tests pin down exactly which cycles are flagged (G1c,
fractured reads including the NULL-read rule, lost updates) and — just as
important for AFT — which legitimate shapes are *not* (stale reads, i.e.
rw/ww G-singles).  A hypothesis oracle then fuzzes prefix-snapshot histories:
clean ones must pass both the pairwise checker and the cycle search, and
histories with an injected fracture must fail both (except the NULL-read
fracture, which only the cycle search can see — that asymmetry is asserted
too, as it is the point of the upgrade).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.consistency import (
    AnomalyChecker,
    CycleChecker,
    TaggedValue,
    TransactionLog,
)
from repro.ids import TransactionId

KEYS = ("a", "b", "c", "d", "e")


def make_tag(key_set: frozenset[str], ts: float, uuid: str) -> TaggedValue:
    return TaggedValue(payload=b"", timestamp=ts, uuid=uuid, cowritten=key_set)


def writer_log(uuid: str, ts: float, keys: frozenset[str]) -> TransactionLog:
    log = TransactionLog(txn_uuid=uuid)
    for i, key in enumerate(sorted(keys)):
        log.record_write(key, TransactionId(timestamp=ts, uuid=uuid), op_index=i)
    return log


def reader_log(uuid: str, observations: list[tuple[str, TaggedValue | None]]) -> TransactionLog:
    log = TransactionLog(txn_uuid=uuid)
    for i, (key, tag) in enumerate(observations):
        log.record_read(key, tag, op_index=i)
    return log


def checkers_over(logs: list[TransactionLog]) -> tuple[AnomalyChecker, CycleChecker]:
    pairwise = AnomalyChecker()
    cycles = CycleChecker()
    for log in logs:
        pairwise.add(log)
        cycles.add(log)
        written = [v for (_op, v) in log.writes.values()]
        if written:
            commit_id = max(written)
            pairwise.register_commit_order(log.txn_uuid, commit_id)
            cycles.register_commit_order(log.txn_uuid, commit_id)
    return pairwise, cycles


# --------------------------------------------------------------------------- #
# Deterministic shapes
# --------------------------------------------------------------------------- #
class TestCycleShapes:
    def _two_writers(self):
        ws = frozenset({"x", "y"})
        t1 = writer_log("t1", 1.0, ws)
        t2 = writer_log("t2", 2.0, ws)
        tag = lambda u, ts: make_tag(ws, ts, u)  # noqa: E731
        return t1, t2, tag

    def test_clean_snapshot_reads_produce_no_cycles(self):
        t1, t2, tag = self._two_writers()
        r_old = reader_log("r1", [("x", tag("t1", 1.0)), ("y", tag("t1", 1.0))])
        r_new = reader_log("r2", [("x", tag("t2", 2.0)), ("y", tag("t2", 2.0))])
        _, cycles = checkers_over([t1, t2, r_old, r_new])
        assert cycles.search() == []
        assert cycles.summary()["violations"] == 0

    def test_fractured_read_is_a_wr_rw_cycle(self):
        t1, t2, tag = self._two_writers()
        torn = reader_log("r1", [("x", tag("t2", 2.0)), ("y", tag("t1", 1.0))])
        pairwise, cycles = checkers_over([t1, t2, torn])
        found = cycles.search()
        assert [c.kind for c in found] == ["fractured"]
        assert set(found[0].txns) == {"t2", "r1"}
        kinds = {e.kind for e in found[0].edges}
        assert kinds == {"wr", "rw"}
        # The pairwise checker agrees on this (non-NULL) fracture.
        assert pairwise.counts().fractured_read_anomalies == 1

    def test_null_read_of_cowritten_key_is_fractured(self):
        """The strengthening over the pairwise checker: observing Ti's write
        of one key and NULL for a cowritten key is a torn write, but the
        pairwise checker skips NULL observations entirely."""
        ws = frozenset({"x", "y"})
        t1 = writer_log("t1", 1.0, ws)
        torn = reader_log("r1", [("x", make_tag(ws, 1.0, "t1")), ("y", None)])
        pairwise, cycles = checkers_over([t1, torn])
        assert [c.kind for c in cycles.search()] == ["fractured"]
        assert pairwise.counts().fractured_read_anomalies == 0

    def test_repeatable_read_violation_is_fractured(self):
        t1, t2, tag = self._two_writers()
        wobble = reader_log("r1", [("x", tag("t1", 1.0)), ("x", tag("t2", 2.0))])
        _, cycles = checkers_over([t1, t2, wobble])
        assert [c.kind for c in cycles.search()] == ["fractured"]

    def test_g1c_mutual_wr_cycle(self):
        """Two transactions each observing the other's write: circular
        information flow, impossible under any version order."""
        a = TransactionLog(txn_uuid="ta")
        a.record_write("x", TransactionId(timestamp=1.0, uuid="ta"), op_index=0)
        a.record_read("y", make_tag(frozenset({"y"}), 2.0, "tb"), op_index=1)
        b = TransactionLog(txn_uuid="tb")
        b.record_write("y", TransactionId(timestamp=2.0, uuid="tb"), op_index=0)
        b.record_read("x", make_tag(frozenset({"x"}), 1.0, "ta"), op_index=1)
        _, cycles = checkers_over([a, b])
        kinds = [c.kind for c in cycles.search()]
        assert "g1c" in kinds

    def test_stale_read_g_single_is_not_flagged(self):
        """A reader observing an older-but-atomic snapshot (an rw/ww
        G-single) is legitimate AFT behaviour — broadcasts are unordered —
        and must not be reported."""
        t1, t2, tag = self._two_writers()
        stale = reader_log("r1", [("x", tag("t1", 1.0)), ("y", tag("t1", 1.0))])
        _, cycles = checkers_over([t1, t2, stale])
        assert cycles.search() == []

    def test_lost_update_reported_separately(self):
        base = writer_log("t0", 1.0, frozenset({"k"}))
        other = writer_log("t1", 2.0, frozenset({"k"}))
        rmw = TransactionLog(txn_uuid="t2")
        rmw.record_read("k", make_tag(frozenset({"k"}), 1.0, "t0"), op_index=0)
        rmw.record_write("k", TransactionId(timestamp=3.0, uuid="t2"), op_index=1)
        _, cycles = checkers_over([base, other, rmw])
        found = cycles.search()
        assert [c.kind for c in found] == ["lost-update"]
        assert set(found[0].txns) == {"t2", "t1"}
        # Lost updates are outside AFT's contract: reported, not a violation.
        assert cycles.summary()["violations"] == 0
        assert cycles.summary()["lost-update"] == 1

    def test_rmw_observing_the_latest_version_is_clean(self):
        base = writer_log("t0", 1.0, frozenset({"k"}))
        rmw = TransactionLog(txn_uuid="t1")
        rmw.record_read("k", make_tag(frozenset({"k"}), 1.0, "t0"), op_index=0)
        rmw.record_write("k", TransactionId(timestamp=2.0, uuid="t1"), op_index=1)
        _, cycles = checkers_over([base, rmw])
        assert cycles.search() == []

    def test_adopt_imports_pairwise_state(self):
        t1, t2, tag = self._two_writers()
        torn = reader_log("r1", [("x", tag("t2", 2.0)), ("y", tag("t1", 1.0))])
        pairwise, _ = checkers_over([t1, t2, torn])
        adopted = CycleChecker().adopt(pairwise)
        assert [c.kind for c in adopted.search()] == ["fractured"]

    def test_cycle_serialises_for_artifacts(self):
        t1, t2, tag = self._two_writers()
        torn = reader_log("r1", [("x", tag("t2", 2.0)), ("y", tag("t1", 1.0))])
        _, cycles = checkers_over([t1, t2, torn])
        payload = cycles.search()[0].as_dict()
        assert payload["kind"] == "fractured"
        assert all({"kind", "key", "src", "dst"} <= set(e) for e in payload["edges"])
        assert "r1" in cycles.search()[0].describe()


# --------------------------------------------------------------------------- #
# Hypothesis oracle: prefix-snapshot histories
# --------------------------------------------------------------------------- #
@st.composite
def histories(draw):
    """A clean history: writers commit in order, readers observe prefixes.

    Returns ``(writer_logs, reader_specs)`` where each reader spec is
    ``(cut, keys)`` — the reader observes, for each key, the newest version
    among the first ``cut`` writers (an atomic snapshot by construction).
    """
    n_writers = draw(st.integers(min_value=1, max_value=5))
    writers = []
    for i in range(n_writers):
        keys = frozenset(draw(st.sets(st.sampled_from(KEYS), min_size=1, max_size=3)))
        writers.append((f"w{i}", float(i + 1), keys))
    n_readers = draw(st.integers(min_value=1, max_value=4))
    readers = []
    for _ in range(n_readers):
        cut = draw(st.integers(min_value=1, max_value=n_writers))
        keys = draw(st.lists(st.sampled_from(KEYS), min_size=1, max_size=4, unique=True))
        readers.append((cut, keys))
    return writers, readers


def build_logs(writers, readers) -> list[TransactionLog]:
    logs = [writer_log(uuid, ts, keys) for uuid, ts, keys in writers]
    for ri, (cut, keys) in enumerate(readers):
        observations: list[tuple[str, TaggedValue | None]] = []
        for key in keys:
            latest = None
            for uuid, ts, write_set in writers[:cut]:
                if key in write_set:
                    latest = make_tag(write_set, ts, uuid)
            observations.append((key, latest))
        logs.append(reader_log(f"r{ri}", observations))
    return logs


@settings(max_examples=60, deadline=None)
@given(histories())
def test_oracle_clean_histories_pass_both_checkers(history):
    writers, readers = history
    pairwise, cycles = checkers_over(build_logs(writers, readers))
    counts = pairwise.counts()
    assert counts.fractured_read_anomalies == 0
    assert counts.ryw_anomalies == 0
    assert cycles.summary()["violations"] == 0


@settings(max_examples=60, deadline=None)
@given(histories(), st.randoms(use_true_random=False))
def test_oracle_injected_fracture_is_flagged(history, rng):
    """Tear one reader's snapshot: for a multi-key write set, keep the new
    version of one key but roll a cowritten key back (to an older version if
    one exists, else to NULL).  The cycle search must flag it; the pairwise
    checker must agree whenever the rollback hit a real older version."""
    writers, readers = history
    multi = [w for w in writers if len(w[2]) >= 2]
    if not multi:
        return  # nothing teerable in this draw
    uuid, ts, write_set = rng.choice(multi)
    cut = next(i for i, w in enumerate(writers) if w[0] == uuid) + 1
    keep, tear = rng.sample(sorted(write_set), 2)
    older = None
    for w_uuid, w_ts, w_set in writers[:cut]:
        if tear in w_set and w_uuid != uuid:
            older = make_tag(w_set, w_ts, w_uuid)
    logs = build_logs(writers, readers)
    torn = reader_log("torn", [(keep, make_tag(write_set, ts, uuid)), (tear, older)])
    logs.append(torn)
    pairwise, cycles = checkers_over(logs)
    summary = cycles.summary()
    assert summary["fractured"] >= 1
    assert summary["violations"] >= 1
    if older is not None:
        assert pairwise.counts().fractured_read_anomalies >= 1
    else:
        # The NULL-read torn write is invisible to the pairwise checker.
        assert pairwise.counts().fractured_read_anomalies == 0


@settings(max_examples=40, deadline=None)
@given(histories(), st.randoms(use_true_random=False))
def test_oracle_injected_lost_update_is_reported(history, rng):
    writers, readers = history
    key = rng.choice(sorted(writers[0][2]))
    last_ts = max(ts for _u, ts, _k in writers)
    # A blind intervening write plus a read-modify-write that misses it.
    intervening = writer_log("lost-x", last_ts + 1.0, frozenset({key}))
    rmw = TransactionLog(txn_uuid="lost-t")
    rmw.record_read(key, make_tag(writers[0][2], writers[0][1], writers[0][0]), op_index=0)
    rmw.record_write(key, TransactionId(timestamp=last_ts + 2.0, uuid="lost-t"), op_index=1)
    logs = build_logs(writers, readers) + [intervening, rmw]
    _, cycles = checkers_over(logs)
    assert cycles.summary()["lost-update"] >= 1
