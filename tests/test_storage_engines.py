"""Tests for the simulated storage engines (shared behaviour + memory engine)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import BatchTooLargeError
from repro.storage.base import CostLedger
from repro.storage.latency import ConstantLatency
from repro.storage.memory import InMemoryStorage


@pytest.fixture
def engine() -> InMemoryStorage:
    return InMemoryStorage()


class TestBasicOperations:
    def test_get_missing_key_returns_none(self, engine):
        assert engine.get("missing") is None

    def test_put_then_get(self, engine):
        engine.put("k", b"value")
        assert engine.get("k") == b"value"

    def test_overwrite_replaces_value(self, engine):
        engine.put("k", b"v1")
        engine.put("k", b"v2")
        assert engine.get("k") == b"v2"

    def test_delete_removes_key(self, engine):
        engine.put("k", b"v")
        engine.delete("k")
        assert engine.get("k") is None

    def test_delete_missing_key_is_noop(self, engine):
        engine.delete("never-existed")

    def test_contains(self, engine):
        assert not engine.contains("k")
        engine.put("k", b"v")
        assert engine.contains("k")

    def test_list_keys_with_prefix_sorted(self, engine):
        engine.put("b/2", b"x")
        engine.put("a/1", b"x")
        engine.put("a/0", b"x")
        assert engine.list_keys("a/") == ["a/0", "a/1"]
        assert engine.list_keys() == ["a/0", "a/1", "b/2"]

    def test_size_counts_keys(self, engine):
        assert engine.size() == 0
        engine.put("a", b"1")
        engine.put("b", b"2")
        assert engine.size() == 2


class TestBatchOperations:
    def test_multi_put_and_multi_get(self, engine):
        engine.multi_put({"a": b"1", "b": b"2"})
        result = engine.multi_get(["a", "b", "c"])
        assert result == {"a": b"1", "b": b"2", "c": None}

    def test_multi_delete(self, engine):
        engine.multi_put({"a": b"1", "b": b"2", "c": b"3"})
        engine.multi_delete(["a", "c", "zz"])
        assert engine.list_keys() == ["b"]

    def test_batch_limit_enforced(self):
        limited = InMemoryStorage(max_batch_size=2)
        with pytest.raises(BatchTooLargeError):
            limited.multi_put({"a": b"1", "b": b"2", "c": b"3"})

    @given(st.dictionaries(st.text(min_size=1, max_size=8), st.binary(max_size=32), max_size=20))
    def test_multi_put_round_trips_arbitrary_items(self, items):
        fresh = InMemoryStorage()
        fresh.multi_put(items)
        assert fresh.multi_get(items.keys()) == dict(items)


class TestLatencyMetering:
    def test_operations_charge_the_attached_ledger(self):
        engine = InMemoryStorage(latency_model=ConstantLatency(0.01))
        ledger = CostLedger()
        with engine.metered(ledger):
            engine.put("k", b"v")
            engine.get("k")
        assert ledger.operation_count == 2
        assert ledger.sequential_latency == pytest.approx(0.02)
        assert ledger.parallel_latency == pytest.approx(0.01)

    def test_operations_outside_metering_are_not_charged(self):
        engine = InMemoryStorage(latency_model=ConstantLatency(0.01))
        ledger = CostLedger()
        engine.put("k", b"v")
        with engine.metered(ledger):
            pass
        assert ledger.operation_count == 0

    def test_nested_metering_restores_previous_ledger(self):
        engine = InMemoryStorage(latency_model=ConstantLatency(0.01))
        outer, inner = CostLedger(), CostLedger()
        with engine.metered(outer):
            engine.get("a")
            with engine.metered(inner):
                engine.get("b")
            engine.get("c")
        assert inner.operation_count == 1
        assert outer.operation_count == 2

    def test_stats_counters_track_operations(self, engine):
        engine.put("k", b"abc")
        engine.get("k")
        engine.get("missing")
        snapshot = engine.stats.snapshot()
        assert snapshot["writes"] == 1
        assert snapshot["reads"] == 2
        assert snapshot["items_read"] == 1
        assert snapshot["bytes_written"] == 3
