"""Tests for a single AFT node: the Table 1 API and the §3 guarantees."""

from __future__ import annotations

import pytest

from repro.config import AftConfig
from repro.core.node import AftNode
from repro.core.transaction import TransactionStatus
from repro.errors import (
    AtomicReadError,
    NodeStoppedError,
    TransactionAbortedError,
    TransactionAlreadyCommittedError,
    UnknownTransactionError,
)
from repro.ids import is_commit_record_key, is_data_key


class TestBasicTransactionLifecycle:
    def test_commit_makes_writes_visible_to_later_transactions(self, node):
        t1 = node.start_transaction()
        node.put(t1, "k", b"v1")
        node.put(t1, "l", b"v2")
        node.commit_transaction(t1)

        t2 = node.start_transaction()
        assert node.get(t2, "k") == b"v1"
        assert node.get(t2, "l") == b"v2"

    def test_uncommitted_writes_are_invisible(self, node):
        t1 = node.start_transaction()
        node.put(t1, "k", b"hidden")

        t2 = node.start_transaction()
        assert node.get(t2, "k") is None

    def test_abort_discards_updates(self, node):
        t1 = node.start_transaction()
        node.put(t1, "k", b"v")
        node.abort_transaction(t1)

        t2 = node.start_transaction()
        assert node.get(t2, "k") is None
        assert node.transaction_status(t1) is TransactionStatus.ABORTED

    def test_string_values_are_encoded(self, node):
        t1 = node.start_transaction()
        node.put(t1, "k", "text-value")
        assert node.get(t1, "k") == b"text-value"

    def test_commit_returns_monotonic_ids_per_node(self, node):
        ids = []
        for index in range(5):
            txid = node.start_transaction()
            node.put(txid, f"k{index}", b"v")
            ids.append(node.commit_transaction(txid))
        assert ids == sorted(ids)

    def test_read_only_transaction_commits_without_a_record(self, node, commit_store):
        before = commit_store.count()
        txid = node.start_transaction()
        node.get(txid, "whatever")
        node.commit_transaction(txid)
        assert commit_store.count() == before

    def test_start_with_explicit_id_joins_existing_transaction(self, node):
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        joined = node.start_transaction(txid)
        assert joined == txid
        assert node.get(joined, "k") == b"v"

    def test_start_with_unknown_explicit_id_creates_transaction(self, node):
        txid = node.start_transaction("retry-me")
        assert txid == "retry-me"
        node.put(txid, "k", b"v")
        node.commit_transaction(txid)


class TestSessionGuarantees:
    def test_read_your_writes_from_the_buffer(self, node):
        txid = node.start_transaction()
        node.put(txid, "k", b"mine")
        assert node.get(txid, "k") == b"mine"
        assert node.stats.read_your_write_hits == 1

    def test_read_your_writes_overrides_committed_data(self, node):
        setup = node.start_transaction()
        node.put(setup, "k", b"old")
        node.commit_transaction(setup)

        txid = node.start_transaction()
        node.put(txid, "k", b"new")
        assert node.get(txid, "k") == b"new"

    def test_repeatable_read(self, node):
        setup = node.start_transaction()
        node.put(setup, "k", b"v1")
        node.commit_transaction(setup)

        reader = node.start_transaction()
        first = node.get(reader, "k")

        writer = node.start_transaction()
        node.put(writer, "k", b"v2")
        node.commit_transaction(writer)

        assert node.get(reader, "k") == first == b"v1"

    def test_atomic_visibility_of_multi_key_commits(self, node):
        t1 = node.start_transaction()
        node.put(t1, "k", b"k1")
        node.put(t1, "l", b"l1")
        node.commit_transaction(t1)

        t2 = node.start_transaction()
        node.put(t2, "k", b"k2")
        node.put(t2, "l", b"l2")
        node.commit_transaction(t2)

        reader = node.start_transaction()
        k = node.get(reader, "k")
        l = node.get(reader, "l")
        assert (k, l) in ((b"k1", b"l1"), (b"k2", b"l2"))


class TestErrorHandling:
    def test_unknown_transaction(self, node):
        with pytest.raises(UnknownTransactionError):
            node.get("missing", "k")
        with pytest.raises(UnknownTransactionError):
            node.put("missing", "k", b"v")
        with pytest.raises(UnknownTransactionError):
            node.commit_transaction("missing")
        with pytest.raises(UnknownTransactionError):
            node.abort_transaction("missing")

    def test_commit_is_idempotent(self, node):
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        first = node.commit_transaction(txid)
        second = node.commit_transaction(txid)
        assert first == second

    def test_operations_after_commit_are_rejected(self, node):
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        node.commit_transaction(txid)
        with pytest.raises(TransactionAlreadyCommittedError):
            node.put(txid, "k", b"again")
        with pytest.raises(TransactionAlreadyCommittedError):
            node.abort_transaction(txid)
        with pytest.raises(TransactionAlreadyCommittedError):
            node.start_transaction(txid)

    def test_operations_after_abort_are_rejected(self, node):
        txid = node.start_transaction()
        node.abort_transaction(txid)
        with pytest.raises(TransactionAbortedError):
            node.put(txid, "k", b"v")
        with pytest.raises(TransactionAbortedError):
            node.commit_transaction(txid)

    def test_stopped_node_rejects_requests(self, node):
        node.stop()
        with pytest.raises(NodeStoppedError):
            node.start_transaction()

    def test_invalid_user_keys_rejected(self, node):
        txid = node.start_transaction()
        with pytest.raises(ValueError):
            node.put(txid, "aft.data", b"v")
        with pytest.raises(ValueError):
            node.get(txid, "bad/key")

    def test_strict_reads_raise_on_null(self, storage, clock):
        strict_node = AftNode(storage, config=AftConfig(strict_reads=True), clock=clock)
        strict_node.start()
        txid = strict_node.start_transaction()
        with pytest.raises(AtomicReadError):
            strict_node.get(txid, "never-written")


class TestWriteOrderingProtocol:
    def test_data_is_written_before_commit_record(self, node, storage):
        """Every key version referenced by a commit record must be durable."""
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        node.put(txid, "l", b"w")
        node.commit_transaction(txid)

        commit_keys = [key for key in storage.list_keys() if is_commit_record_key(key)]
        data_keys = [key for key in storage.list_keys() if is_data_key(key)]
        assert len(commit_keys) == 1
        assert len(data_keys) == 2

        from repro.core.commit_set import CommitRecord

        record = CommitRecord.from_bytes(storage.get(commit_keys[0]))
        for storage_key in record.write_set.values():
            assert storage.get(storage_key) is not None

    def test_each_version_gets_its_own_storage_key(self, node, storage):
        for value in (b"v1", b"v2"):
            txid = node.start_transaction()
            node.put(txid, "k", value)
            node.commit_transaction(txid)
        data_keys = [key for key in storage.list_keys() if is_data_key(key)]
        assert len(data_keys) == 2, "AFT must never overwrite a key version in place"

    def test_abort_cleans_up_spilled_data(self, storage, clock):
        node = AftNode(
            storage,
            config=AftConfig(write_buffer_spill_bytes=8),
            clock=clock,
        )
        node.start()
        txid = node.start_transaction()
        node.put(txid, "k", b"x" * 64)
        assert any(is_data_key(key) for key in storage.list_keys())
        node.abort_transaction(txid)
        assert not any(is_data_key(key) for key in storage.list_keys())

    def test_spilled_data_is_reused_at_commit(self, storage, clock):
        node = AftNode(storage, config=AftConfig(write_buffer_spill_bytes=8), clock=clock)
        node.start()
        txid = node.start_transaction()
        node.put(txid, "k", b"x" * 64)
        node.commit_transaction(txid)
        reader = node.start_transaction()
        assert node.get(reader, "k") == b"x" * 64


class TestRecoveryAndHousekeeping:
    def test_bootstrap_warms_metadata_from_commit_set(self, node, storage, clock):
        txid = node.start_transaction()
        node.put(txid, "k", b"durable")
        node.commit_transaction(txid)

        recovered = AftNode(storage, commit_store=node.commit_store, clock=clock, node_id="recovered")
        recovered.start()

        reader = recovered.start_transaction()
        assert recovered.get(reader, "k") == b"durable"

    def test_node_failure_loses_in_flight_transactions(self, node):
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        node.fail()
        assert not node.is_running
        node.start(bootstrap=False)
        with pytest.raises(UnknownTransactionError):
            node.commit_transaction(txid)

    def test_expire_idle_transactions(self, storage, clock):
        node = AftNode(storage, config=AftConfig(transaction_timeout=10.0), clock=clock)
        node.start()
        stale = node.start_transaction()
        node.put(stale, "k", b"v")
        clock.advance(60.0)
        fresh = node.start_transaction()
        expired = node.expire_idle_transactions()
        assert stale in expired
        assert fresh not in expired
        assert node.transaction_status(stale) is TransactionStatus.ABORTED

    def test_forget_finished_transactions(self, node):
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        node.commit_transaction(txid)
        assert node.forget_finished_transactions() == 1
        assert node.transaction_status(txid) is None

    def test_drain_recent_commits(self, node):
        txid = node.start_transaction()
        node.put(txid, "k", b"v")
        commit_id = node.commit_transaction(txid)
        recent = node.drain_recent_commits()
        assert [record.txid for record in recent] == [commit_id]
        assert node.drain_recent_commits() == []

    def test_receive_commits_ignores_superseded_and_duplicates(self, node, node_factory):
        other = node_factory("peer")
        txid = other.start_transaction()
        other.put(txid, "k", b"old")
        other.commit_transaction(txid)
        old_records = other.drain_recent_commits()

        txid = other.start_transaction()
        other.put(txid, "k", b"new")
        other.commit_transaction(txid)
        new_records = other.drain_recent_commits()

        assert node.receive_commits(new_records) == 1
        # The older record is superseded by the already-merged newer one.
        assert node.receive_commits(old_records) == 0
        # Duplicates are ignored.
        assert node.receive_commits(new_records) == 0

    def test_data_cache_serves_repeated_reads(self, node):
        setup = node.start_transaction()
        node.put(setup, "k", b"cached")
        node.commit_transaction(setup)

        for _ in range(3):
            reader = node.start_transaction()
            assert node.get(reader, "k") == b"cached"
        assert node.stats.data_cache_hits >= 2
