"""Tests for the discrete-event simulation kernel, resources, and metrics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.kernel import Simulation
from repro.simulation.metrics import LatencyCollector, ThroughputTimeseries, percentile
from repro.simulation.resources import Resource


class TestKernel:
    def test_timeouts_advance_virtual_time(self):
        sim = Simulation()
        events = []

        def process():
            yield sim.timeout(1.5)
            events.append(sim.now)
            yield sim.timeout(2.5)
            events.append(sim.now)

        sim.process(process())
        sim.run()
        assert events == [1.5, 4.0]

    def test_processes_interleave_in_time_order(self):
        sim = Simulation()
        order = []

        def worker(name, delay):
            yield sim.timeout(delay)
            order.append((name, sim.now))

        sim.process(worker("slow", 3.0))
        sim.process(worker("fast", 1.0))
        sim.run()
        assert order == [("fast", 1.0), ("slow", 3.0)]

    def test_process_return_value_is_delivered_to_waiters(self):
        sim = Simulation()
        results = []

        def child():
            yield sim.timeout(1.0)
            return 42

        def parent():
            value = yield sim.process(child())
            results.append(value)

        sim.process(parent())
        sim.run()
        assert results == [42]

    def test_run_until_stops_at_the_requested_time(self):
        sim = Simulation()
        ticks = []

        def ticker():
            while True:
                yield sim.timeout(1.0)
                ticks.append(sim.now)

        sim.process(ticker())
        sim.run(until=5.5)
        assert sim.now == 5.5
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_events_can_carry_values(self):
        sim = Simulation()
        received = []
        gate = sim.event("gate")

        def waiter():
            value = yield gate
            received.append(value)

        def opener():
            yield sim.timeout(2.0)
            gate.succeed("open sesame")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert received == ["open sesame"]

    def test_all_of_waits_for_every_event(self):
        sim = Simulation()
        done_at = []

        def worker(delay):
            yield sim.timeout(delay)
            return delay

        def coordinator():
            results = yield sim.all_of([sim.process(worker(1.0)), sim.process(worker(3.0))])
            done_at.append((sim.now, sorted(results)))

        sim.process(coordinator())
        sim.run()
        assert done_at == [(3.0, [1.0, 3.0])]

    def test_negative_timeout_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_double_succeed_rejected(self):
        sim = Simulation()
        gate = sim.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_invalid_yield_detected(self):
        sim = Simulation()

        def bad():
            yield "not-an-event"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_deterministic_ordering_of_simultaneous_events(self):
        sim = Simulation()
        order = []

        def worker(name):
            yield sim.timeout(1.0)
            order.append(name)

        for name in ("a", "b", "c"):
            sim.process(worker(name))
        sim.run()
        assert order == ["a", "b", "c"]


class TestResource:
    def test_capacity_limits_concurrency(self):
        sim = Simulation()
        resource = Resource(sim, capacity=2)
        completion_times = []

        def worker():
            yield from resource.use(1.0)
            completion_times.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        # Two run in [0, 1], the other two queue and run in [1, 2].
        assert completion_times == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_granting(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(name):
            grant = resource.request()
            yield grant
            order.append(name)
            yield sim.timeout(1.0)
            resource.release()

        for name in ("first", "second", "third"):
            sim.process(worker(name))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_without_request_rejected(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_utilisation_accounting(self):
        sim = Simulation()
        resource = Resource(sim, capacity=1)

        def worker():
            yield from resource.use(5.0)

        sim.process(worker())
        sim.run(until=10.0)
        assert resource.utilisation(10.0) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulation(), capacity=0)


class TestMetrics:
    def test_percentile_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == pytest.approx(2.5)

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_latency_collector_summary(self):
        collector = LatencyCollector("test")
        collector.extend([0.010, 0.020, 0.030, 0.040, 0.100])
        summary = collector.summary()
        assert summary.count == 5
        assert summary.median_ms == pytest.approx(30.0)
        assert summary.min_ms == pytest.approx(10.0)
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.mean_ms == pytest.approx(40.0)

    def test_empty_collector_raises(self):
        with pytest.raises(ValueError):
            LatencyCollector().summary()

    def test_throughput_series_and_windows(self):
        series = ThroughputTimeseries(bucket_seconds=1.0)
        for t in (0.1, 0.2, 0.9, 1.5, 2.1, 2.2, 2.3):
            series.record(t)
        buckets = dict(series.series(duration=3.0))
        assert buckets[0.0] == 3.0
        assert buckets[1.0] == 1.0
        assert buckets[2.0] == 3.0
        assert series.total == 7
        assert series.overall_throughput(duration=3.5) == pytest.approx(2.0)
        assert series.throughput_between(0.0, 1.0) == pytest.approx(3.0)
        assert series.throughput_between(5.0, 6.0) == 0.0

    def test_empty_throughput(self):
        series = ThroughputTimeseries()
        assert series.overall_throughput() == 0.0
        assert series.series() == []
