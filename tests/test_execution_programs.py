"""Tests for the transaction programs used by the simulated clients.

The programs are generators of ("delay" | "cpu" | "storage", seconds) cost
steps; these tests drain them directly (no event loop) and check both the cost
accounting and the side effects on the system under test.
"""

from __future__ import annotations

import pytest

from repro.baselines.dynamo_txn import DynamoTransactionClient
from repro.clock import LogicalClock
from repro.consistency.checker import TransactionLog
from repro.consistency.metadata import TaggedValue
from repro.core.node import AftNode
from repro.simulation.cost_model import DeploymentCostModel
from repro.simulation.execution import (
    TransactionOutcome,
    aft_transaction_program,
    dynamo_txn_transaction_program,
    plain_transaction_program,
)
from repro.storage.dynamodb import SimulatedDynamoDB
from repro.storage.latency import ConstantLatency
from repro.storage.memory import InMemoryStorage
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import WorkloadSpec


@pytest.fixture
def clock():
    return LogicalClock(start=0.0, auto_step=0.001)


@pytest.fixture
def cost_model():
    return DeploymentCostModel(
        function_invoke_overhead=0.010,
        request_trigger_overhead=0.002,
        shim_rtt=0.001,
        shim_cpu_per_op=0.0005,
    )


@pytest.fixture
def plan():
    spec = WorkloadSpec(num_keys=50, distinct_keys_per_transaction=False, seed=3)
    return WorkloadGenerator(spec).next_transaction()


def drain(program) -> dict[str, float]:
    """Run a program to completion, summing its cost steps by kind."""
    totals = {"delay": 0.0, "cpu": 0.0, "storage": 0.0}
    for kind, amount in program:
        totals[kind] += amount
    return totals


class TestAftProgram:
    def test_commits_and_accounts_costs(self, clock, cost_model, plan):
        node = AftNode(InMemoryStorage(latency_model=ConstantLatency(0.004)), clock=clock)
        node.start()
        outcome = TransactionOutcome(log=TransactionLog(txn_uuid=""))
        totals = drain(
            aft_transaction_program(node, plan, lambda size: b"x" * 16, cost_model, outcome, clock)
        )
        assert outcome.committed
        assert outcome.commit_version is not None
        assert outcome.log.committed
        # 2 function invocations + the request trigger.
        assert totals["delay"] >= 2 * 0.010 + 0.002
        # Storage cost is charged for the commit (and any uncached reads).
        assert totals["storage"] > 0
        assert node.stats.transactions_committed == 1

    def test_written_values_are_tagged_for_the_checker(self, clock, cost_model, plan):
        node = AftNode(InMemoryStorage(), clock=clock)
        node.start()
        outcome = TransactionOutcome(log=TransactionLog(txn_uuid=""))
        drain(aft_transaction_program(node, plan, lambda size: b"payload", cost_model, outcome, clock))

        reader = node.start_transaction()
        write_keys = [op.key for function in plan for op in function.writes]
        raw = node.get(reader, write_keys[0])
        tag = TaggedValue.try_from_bytes(raw)
        assert tag is not None
        assert tag.uuid == outcome.log.txn_uuid
        assert set(tag.cowritten) == set(write_keys)


class TestPlainProgram:
    def test_writes_go_straight_to_storage(self, clock, cost_model, plan):
        storage = InMemoryStorage(latency_model=ConstantLatency(0.002))
        outcome = TransactionOutcome(log=TransactionLog(txn_uuid=""))
        totals = drain(
            plain_transaction_program(storage, plan, lambda size: b"x" * 8, cost_model, outcome, clock)
        )
        assert outcome.committed
        write_keys = {op.key for function in plan for op in function.writes}
        for key in write_keys:
            assert storage.get(key) is not None
        # 6 IOs at 2 ms each were charged as storage time.
        assert totals["storage"] == pytest.approx(0.002 * 6, abs=1e-9)

    def test_reads_record_observations(self, clock, cost_model, plan):
        storage = InMemoryStorage()
        outcome = TransactionOutcome(log=TransactionLog(txn_uuid=""))
        drain(plain_transaction_program(storage, plan, lambda size: b"x", cost_model, outcome, clock))
        read_count = sum(len(function.reads) for function in plan)
        assert len(outcome.log.reads) == read_count


class TestDynamoTxnProgram:
    def test_reads_and_writes_use_native_transactions(self, clock, cost_model, plan):
        table = SimulatedDynamoDB(clock=clock, latency_model=ConstantLatency(0.003))
        client = DynamoTransactionClient(table)
        outcome = TransactionOutcome(log=TransactionLog(txn_uuid=""))
        drain(
            dynamo_txn_transaction_program(client, plan, lambda size: b"x" * 8, cost_model, outcome, clock)
        )
        assert outcome.committed
        # One transactional read per function plus one transactional write.
        assert table.stats.extra["transacts"] == len(plan) + 1
        # No dangling conflict claims.
        assert table._transact_locks == {}

    def test_conflicts_abort_after_retry_budget(self, clock, cost_model, plan):
        table = SimulatedDynamoDB(clock=clock)
        client = DynamoTransactionClient(table)
        # A foreign transaction pins every key this plan writes, forever.
        write_keys = [op.key for function in plan for op in function.writes]
        read_keys = [op.key for function in plan for op in function.reads]
        table.transact_begin(list(set(write_keys + read_keys)), token="hog", mode="write")

        outcome = TransactionOutcome(log=TransactionLog(txn_uuid=""))
        drain(
            dynamo_txn_transaction_program(
                client, plan, lambda size: b"x", cost_model, outcome, clock, max_retries=2
            )
        )
        assert outcome.aborted
        assert not outcome.committed
        assert outcome.conflict_retries > 0
