"""Tests for the IO-plan pipeline: plan building, execution, cost accounting."""

from __future__ import annotations

import pytest

from repro.clock import LogicalClock
from repro.config import AftConfig
from repro.core.io_plan import IOOp, IOPlan
from repro.core.node import AftNode
from repro.storage.base import CostLedger
from repro.storage.dynamodb import SimulatedDynamoDB
from repro.storage.latency import ConstantLatency
from repro.storage.memory import InMemoryStorage
from repro.storage.rediscluster import SimulatedRedisCluster
from repro.storage.s3 import SimulatedS3


class TestPlanBuilding:
    def test_op_validation(self):
        with pytest.raises(ValueError):
            IOOp(kind="munge", key="k")
        with pytest.raises(ValueError):
            IOOp(kind="put", key="k")  # puts need a value

    def test_compact_drops_empty_stages(self):
        plan = IOPlan.commit({}, {"aft.commit/x": b"r"})
        assert [stage.name for stage in plan.stages] == ["commit-records"]

    def test_commit_plan_orders_data_before_records(self):
        plan = IOPlan.commit({"d": b"1"}, {"r": b"2"})
        assert [stage.name for stage in plan.stages] == ["data", "commit-records"]

    def test_reads_and_writes_shapes(self):
        assert IOPlan.reads(["a", "b"]).operation_count == 2
        assert IOPlan.writes({"a": b"1"}).operation_count == 1
        assert not IOPlan.reads([])


class TestLedgerStageAccounting:
    def test_pipelined_equals_sequential_without_stages(self):
        ledger = CostLedger()
        ledger.add("read", 1, 0, 0.01)
        ledger.add("write", 1, 0, 0.02)
        assert ledger.pipelined_latency == pytest.approx(ledger.sequential_latency)
        assert ledger.plan_stage_count == 0

    def test_staged_entries_charge_max_within_stage(self):
        ledger = CostLedger()
        with ledger.stage():
            ledger.add("write", 1, 0, 0.03)
            ledger.add("write", 1, 0, 0.01)
        ledger.add("write", 1, 0, 0.005)
        assert ledger.sequential_latency == pytest.approx(0.045)
        assert ledger.pipelined_latency == pytest.approx(0.035)
        assert ledger.plan_stage_count == 1

    def test_stages_are_sequential_with_each_other(self):
        ledger = CostLedger()
        with ledger.stage():
            ledger.add("write", 1, 0, 0.03)
            ledger.add("write", 1, 0, 0.02)
        with ledger.stage():
            ledger.add("write", 1, 0, 0.01)
        assert ledger.pipelined_latency == pytest.approx(0.04)
        assert ledger.plan_stage_count == 2

    def test_merge_preserves_stage_tags(self):
        inner = CostLedger()
        with inner.stage():
            inner.add("write", 1, 0, 0.03)
            inner.add("write", 1, 0, 0.02)
        outer = CostLedger()
        outer.merge(inner)
        assert outer.pipelined_latency == pytest.approx(0.03)


class TestThreadLocalMetering:
    def test_concurrent_ledgers_do_not_cross_wire(self):
        """Each thread's metered block charges only that thread's operations."""
        import threading

        engine = InMemoryStorage(latency_model=ConstantLatency(0.01))
        barrier = threading.Barrier(2)
        ledgers = {}

        def worker(name: str, ops: int) -> None:
            ledger = CostLedger()
            ledgers[name] = ledger
            with engine.metered(ledger):
                barrier.wait(timeout=5.0)  # both threads attached at once
                for i in range(ops):
                    engine.put(f"{name}-{i}", b"v")

        threads = [
            threading.Thread(target=worker, args=("a", 3)),
            threading.Thread(target=worker, args=("b", 5)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)

        assert ledgers["a"].operation_count == 3
        assert ledgers["b"].operation_count == 5


class TestPlanExecution:
    def test_execute_plan_reads_and_writes(self):
        engine = InMemoryStorage()
        engine.put("a", b"old")
        plan = IOPlan()
        stage = plan.stage("mixed")
        stage.add_put("b", b"new").add_get("a")
        result = engine.execute_plan(plan)
        assert result.values == {"a": b"old"}
        assert engine.get("b") == b"new"
        assert len(result.stage_latencies) == 1

    def test_stage_barriers_execute_in_order(self):
        engine = InMemoryStorage()
        plan = IOPlan()
        plan.stage("first").add_put("k", b"v1")
        plan.stage("second").add_put("k", b"v2")
        engine.execute_plan(plan)
        assert engine.get("k") == b"v2"

    def test_stage_deletes(self):
        engine = InMemoryStorage()
        engine.multi_put({"a": b"1", "b": b"2"})
        plan = IOPlan()
        plan.stage("gc").add_delete("a")
        engine.execute_plan(plan)
        assert engine.get("a") is None
        assert engine.get("b") == b"2"

    def test_parallel_stage_charges_max_not_sum(self):
        engine = SimulatedS3(latency_model=ConstantLatency(0.01), clock=LogicalClock())
        ledger = CostLedger()
        with engine.metered(ledger):
            engine.execute_plan(IOPlan.writes({f"k{i}": b"v" for i in range(5)}))
        # S3 has no batch API: five concurrent PUT requests, one stage.
        assert ledger.operation_count == 5
        assert ledger.sequential_latency == pytest.approx(0.05)
        assert ledger.pipelined_latency == pytest.approx(0.01)

    def test_dynamodb_chunks_by_batch_limit(self):
        engine = SimulatedDynamoDB(clock=LogicalClock())
        items = {f"k{i}": b"v" for i in range(60)}
        engine.execute_plan(IOPlan.writes(items))
        # 60 items / 25-item BatchWriteItem limit = 3 concurrent requests.
        assert engine.stats.batch_writes == 3
        assert engine.stats.items_written == 60

    def test_dynamodb_batches_reads(self):
        engine = SimulatedDynamoDB(clock=LogicalClock())
        engine.multi_put({f"k{i}": b"v" for i in range(10)})
        before = engine.stats.batch_reads
        result = engine.execute_plan(IOPlan.reads([f"k{i}" for i in range(10)]))
        assert engine.stats.batch_reads == before + 1
        assert all(result.values[f"k{i}"] == b"v" for i in range(10))

    def test_redis_groups_by_shard_without_cross_shard_errors(self):
        engine = SimulatedRedisCluster(shard_count=2)
        items = {f"key-{i}": b"v" for i in range(20)}
        engine.execute_plan(IOPlan.writes(items))
        assert engine.size() == 20
        result = engine.execute_plan(IOPlan.reads(list(items)))
        assert result.values == {key: b"v" for key in items}
        # At most one MSET/MGET request per shard per stage.
        assert engine.stats.batch_writes <= engine.shard_count

    def test_plan_counters_in_stats(self):
        engine = InMemoryStorage()
        engine.execute_plan(IOPlan.writes({"a": b"1"}))
        snapshot = engine.stats.snapshot()
        assert snapshot["plans_executed"] == 1
        assert snapshot["plan_stages"] == 1


class TestNodeBatchedReads:
    def make_node(self, **overrides) -> AftNode:
        config = AftConfig(**overrides)
        node = AftNode(InMemoryStorage(), config=config, clock=LogicalClock(auto_step=0.001))
        node.start()
        return node

    def seed_keys(self, node: AftNode, items: dict[str, bytes]) -> None:
        txid = node.start_transaction()
        for key, value in items.items():
            node.put(txid, key, value)
        node.commit_transaction(txid)

    def test_get_many_matches_sequential_gets(self):
        # Cache off so the payloads genuinely come from a storage plan fetch.
        node = self.make_node(enable_data_cache=False)
        self.seed_keys(node, {"a": b"1", "b": b"2", "c": b"3"})
        txid = node.start_transaction()
        batched = node.get_many(txid, ["a", "b", "c", "missing"])
        assert batched == {"a": b"1", "b": b"2", "c": b"3", "missing": None}
        # The read set was recorded for every successful read, and the
        # multi-key fetch was counted as one batched plan request.
        reader = node._transactions[txid]
        assert set(reader.read_set) == {"a", "b", "c"}
        assert node.stats.extra["batched_payload_fetches"] == 1

    def test_get_many_serves_read_your_writes(self):
        node = self.make_node()
        self.seed_keys(node, {"a": b"committed"})
        txid = node.start_transaction()
        node.put(txid, "a", b"mine")
        assert node.get_many(txid, ["a"])["a"] == b"mine"

    def test_get_many_deduplicates_keys(self):
        node = self.make_node()
        self.seed_keys(node, {"a": b"1"})
        txid = node.start_transaction()
        result = node.get_many(txid, ["a", "a"])
        assert result == {"a": b"1"}

    def test_get_many_with_pipeline_disabled_behaves_the_same(self):
        node = self.make_node(enable_io_pipeline=False)
        self.seed_keys(node, {"a": b"1", "b": b"2"})
        txid = node.start_transaction()
        assert node.get_many(txid, ["a", "b"]) == {"a": b"1", "b": b"2"}

    def test_atomicity_holds_across_batched_reads(self):
        """A batch decided against a growing read set stays an atomic readset."""
        node = self.make_node()
        self.seed_keys(node, {"x": b"x0", "y": b"y0"})
        reader = node.start_transaction()
        first = node.get(reader, "x")

        writer = node.start_transaction()
        node.put(writer, "x", b"x1")
        node.put(writer, "y", b"y1")
        node.commit_transaction(writer)

        values = node.get_many(reader, ["y"])
        # y1 was cowritten with x1, but we already read x0 — returning y1
        # would fracture the earlier read, so the older y0 must be chosen.
        assert first == b"x0"
        assert values["y"] == b"y0"
