"""Tests for the sharded fault manager: digests, sweeps, recovery, and the
hypothesis oracle proving parity with the seed's singleton reference."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import LogicalClock
from repro.config import AftConfig, ClusterConfig, FaultManagerConfig
from repro.core.cluster import AftCluster
from repro.core.commit_set import CommitRecord, CommitSetStore
from repro.core.fault_manager import FaultManager, SeenDigest
from repro.core.fault_manager_reference import ReferenceFaultManager
from repro.core.multicast import MulticastService
from repro.core.node import AftNode
from repro.ids import TransactionId, commit_record_key, data_key
from repro.storage.memory import InMemoryStorage


@pytest.fixture
def clock():
    return LogicalClock(start=100.0, auto_step=0.001)


@pytest.fixture
def storage():
    return InMemoryStorage()


@pytest.fixture
def commit_store(storage):
    return CommitSetStore(storage)


def make_node(storage, commit_store, clock, node_id, **config_overrides) -> AftNode:
    node = AftNode(
        storage,
        commit_store=commit_store,
        config=AftConfig(**config_overrides),
        clock=clock,
        node_id=node_id,
    )
    node.start()
    return node


def make_record(index: int, keys: list[str] | None = None, node_id: str = "n0") -> CommitRecord:
    txid = TransactionId(timestamp=float(index), uuid=f"u{index:04d}")
    keys = keys if keys is not None else [f"k{index % 4}"]
    return CommitRecord(
        txid=txid,
        write_set={key: data_key(key, txid) for key in keys},
        committed_at=float(index),
        node_id=node_id,
    )


class TestSeenDigest:
    def test_add_and_contains(self):
        digest = SeenDigest()
        a, b = make_record(1).txid, make_record(2).txid
        assert digest.add(a)
        assert not digest.add(a)
        assert a in digest and b not in digest

    def test_watermark_covers_everything_below(self):
        digest = SeenDigest()
        ids = [make_record(i).txid for i in range(10)]
        for txid in ids:
            digest.add(txid)
        pruned = digest.advance_watermark(TransactionId(timestamp=5.0, uuid=""))
        # Ids 0..4 fall below the watermark and leave the window...
        assert pruned == 5
        assert digest.window_size == 5
        # ...but stay logically seen.
        assert all(txid in digest for txid in ids)
        # Adding below the watermark is a no-op (already covered).
        assert not digest.add(ids[0])

    def test_watermark_never_moves_backwards(self):
        digest = SeenDigest()
        digest.advance_watermark(TransactionId(timestamp=9.0, uuid=""))
        assert digest.advance_watermark(TransactionId(timestamp=3.0, uuid="")) == 0
        assert digest.watermark == TransactionId(timestamp=9.0, uuid="")

    def test_discard_prunes_window(self):
        digest = SeenDigest()
        txid = make_record(1).txid
        digest.add(txid)
        digest.discard(txid)
        assert txid not in digest


class TestShardPartitioning:
    def test_every_id_maps_to_exactly_one_shard(self, storage, commit_store):
        manager = FaultManager(
            storage, commit_store, MulticastService(), config=FaultManagerConfig(num_shards=4)
        )
        assert len(manager.shards) == 4
        ids = [make_record(i).txid for i in range(200)]
        owners = {txid: manager.shard_for(txid).shard_id for txid in ids}
        # Stable and spread: repeated lookups agree, and no shard owns everything.
        assert all(manager.shard_for(txid).shard_id == owner for txid, owner in owners.items())
        assert len(set(owners.values())) > 1

    def test_unregistered_manager_stops_receiving_broadcasts(
        self, storage, commit_store, clock
    ):
        a = make_node(storage, commit_store, clock, "a")
        multicast = MulticastService()
        multicast.register_node(a)
        manager = FaultManager(storage, commit_store, multicast)

        txid = a.start_transaction()
        a.put(txid, "k", b"v1")
        a.commit_transaction(txid)
        multicast.run_once()
        assert manager.global_gc.known_transactions() == 1

        multicast.unregister_fault_manager(manager)
        txid = a.start_transaction()
        a.put(txid, "k", b"v2")
        a.commit_transaction(txid)
        multicast.run_once()
        assert manager.global_gc.known_transactions() == 1

    def test_single_shard_degenerates(self, storage, commit_store):
        manager = FaultManager(
            storage, commit_store, MulticastService(), config=FaultManagerConfig(num_shards=1)
        )
        ids = [make_record(i).txid for i in range(20)]
        assert len({manager.shard_for(txid).shard_id for txid in ids}) == 1


class TestShardedScan:
    def test_scan_recovers_unbroadcast_commits(self, storage, commit_store, clock):
        a = make_node(storage, commit_store, clock, "a")
        b = make_node(storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        manager = FaultManager(
            storage, commit_store, multicast, config=FaultManagerConfig(num_shards=4)
        )

        txid = a.start_transaction()
        a.put(txid, "k", b"must-not-be-lost")
        commit_id = a.commit_transaction(txid)
        a.fail()

        recovered = manager.scan_commit_set()
        assert [record.txid for record in recovered] == [commit_id]
        assert manager.has_seen(commit_id)
        assert manager.scan_commit_set() == []

        reader = b.start_transaction()
        assert b.get(reader, "k") == b"must-not-be-lost"

    def test_torn_record_read_is_retried_not_forgotten(self, storage, commit_store):
        """The satellite bugfix: a ``read_record`` returning None mid-scan
        enters the explicit retry set, blocks the watermark, and is recovered
        once readable — never silently skipped."""
        multicast = MulticastService()
        manager = FaultManager(
            storage,
            commit_store,
            multicast,
            config=FaultManagerConfig(num_shards=2, watermark_lag=1.0),
        )
        records = [make_record(i) for i in range(20)]
        torn = records[0]
        for record in records:
            commit_store.write_record(record)
        manager.receive_commits(records[1:])  # everything except the torn one

        blocking = [True]
        blocked_key = commit_record_key(torn.txid)
        original_get, original_multi = storage.get, storage.multi_get

        def get(key):
            if blocking[0] and key == blocked_key:
                return None
            return original_get(key)

        def multi_get(keys):
            out = original_multi(keys)
            if blocking[0] and blocked_key in out:
                out[blocked_key] = None
            return out

        storage.get, storage.multi_get = get, multi_get
        try:
            assert manager.scan_commit_set() == []
            shard = manager.shard_for(torn.txid)
            assert torn.txid in shard.pending_reads
            # The completed cycle advanced the watermark, but never past the
            # unresolved read.
            assert shard.digest.watermark is None or shard.digest.watermark < torn.txid
            assert manager.stats.torn_reads_deferred == 1
            # Still unreadable on the next sweep: retried, still pending.
            assert manager.scan_commit_set() == []
            assert shard.pending_reads[torn.txid] == 2
        finally:
            storage.get, storage.multi_get = original_get, original_multi

        recovered = manager.scan_commit_set()
        assert [record.txid for record in recovered] == [torn.txid]
        assert torn.txid not in shard.pending_reads
        assert manager.has_seen(torn.txid)

    def test_budget_bounded_scan_resumes_from_cursor(self, storage, commit_store):
        records = [make_record(i) for i in range(12)]
        for record in records:
            commit_store.write_record(record)
        manager = FaultManager(
            storage,
            commit_store,
            MulticastService(),
            config=FaultManagerConfig(num_shards=2, max_records_per_scan=3),
        )
        recovered: set[TransactionId] = set()
        scans = 0
        while len(recovered) < len(records):
            scans += 1
            assert scans < 20, "budgeted scans must make progress"
            recovered |= {record.txid for record in manager.scan_commit_set()}
        assert recovered == {record.txid for record in records}
        # Budgeted sweeps took several passes — the cursor carried progress.
        assert scans > 1

    def test_budgeted_sweeps_still_advance_watermark(self, storage, commit_store):
        """A cycle may span many budget-bounded calls; the call that reaches
        the end of the slice must still complete it and advance the
        watermark, or budgeted managers would regrow the unbounded set."""
        manager = FaultManager(
            storage,
            commit_store,
            MulticastService(),
            config=FaultManagerConfig(num_shards=1, max_records_per_scan=5, watermark_lag=0.0),
        )
        records = [make_record(i) for i in range(50)]
        for record in records:
            commit_store.write_record(record)
        manager.receive_commits(records)
        for _ in range(15):
            manager.scan_commit_set()
        shard = manager.shards[0]
        assert shard.digest.watermark is not None
        assert manager.memory_footprint()["window_entries"] < len(records)
        assert all(manager.has_seen(record.txid) for record in records)

    def test_crashed_shard_rescans_from_storage(self, storage, commit_store):
        """The manager is stateless with respect to liveness: a replacement
        (fresh state, cursor at the oldest id) re-finds everything a dead
        shard had not yet broadcast."""
        records = [make_record(i) for i in range(10)]
        for record in records:
            commit_store.write_record(record)
        config = FaultManagerConfig(num_shards=4, max_records_per_scan=2)
        first = FaultManager(storage, commit_store, MulticastService(), config=config)
        first.scan_commit_set()  # partial progress, then the manager "dies"

        replacement = FaultManager(storage, commit_store, MulticastService(), config=config)
        recovered: set[TransactionId] = set()
        for _ in range(20):
            recovered |= {record.txid for record in replacement.scan_commit_set()}
        assert recovered == {record.txid for record in records}

    def test_watermark_bounds_digest_memory(self, storage, commit_store):
        manager = FaultManager(
            storage,
            commit_store,
            MulticastService(),
            config=FaultManagerConfig(num_shards=2, watermark_lag=10.0),
        )
        records = [make_record(i) for i in range(100)]
        for record in records:
            commit_store.write_record(record)
        manager.receive_commits(records)
        manager.scan_commit_set()  # completed cycle -> watermark advances

        footprint = manager.memory_footprint()
        # The window holds roughly the lag's worth of ids, not the history.
        assert footprint["window_entries"] < 30
        assert manager.stats.watermark_prunes > 0
        # Everything stays logically seen even after pruning.
        assert all(manager.has_seen(record.txid) for record in records)
        assert manager.scan_commit_set() == []

    def test_gc_deletions_prune_digest(self, storage, commit_store, clock):
        a = make_node(storage, commit_store, clock, "a")
        multicast = MulticastService(prune_superseded=False)
        multicast.register_node(a)
        manager = FaultManager(
            storage, commit_store, multicast, config=FaultManagerConfig(num_shards=2)
        )
        old_values = []
        for value in (b"v1", b"v2"):
            txid = a.start_transaction()
            a.put(txid, "k", value)
            old_values.append(a.commit_transaction(txid))
        a.forget_finished_transactions()
        multicast.run_once()

        from repro.core.garbage_collector import LocalMetadataGC

        LocalMetadataGC(a).run_once()
        deleted = manager.run_global_gc([a])
        assert deleted == [old_values[0]]
        shard = manager.shard_for(old_values[0])
        assert old_values[0] not in shard.digest._window


class TestParallelRecovery:
    def test_recovery_replays_unbroadcast_and_reclaims_spills(
        self, storage, commit_store, clock
    ):
        a = make_node(storage, commit_store, clock, "a", write_buffer_spill_bytes=16)
        b = make_node(storage, commit_store, clock, "b")
        multicast = MulticastService()
        multicast.register_node(a)
        multicast.register_node(b)
        manager = FaultManager(
            storage, commit_store, multicast, config=FaultManagerConfig(num_shards=4)
        )

        # Commit-acked but never broadcast...
        committed = a.start_transaction()
        a.put(committed, "durable", b"must-not-be-lost")
        commit_id = a.commit_transaction(committed)
        # ...plus an in-flight transaction whose large write already spilled.
        in_flight = a.start_transaction()
        a.put(in_flight, "big", b"x" * 64)
        spilled = list(a.write_buffer.spilled_keys(in_flight).values())
        assert spilled and storage.get(spilled[0]) is not None
        a.fail()

        report = manager.recover_node_failure(a)
        assert [record.txid for record in report.recovered] == [commit_id]
        assert report.orphan_spills_reclaimed == len(spilled)
        assert len(report.per_shard_recovered) == 4
        # The orphaned spill is gone from storage; the committed data survives.
        assert storage.get(spilled[0]) is None
        reader = b.start_transaction()
        assert b.get(reader, "durable") == b"must-not-be-lost"

    def test_sequential_recovery_matches_parallel(self, storage, commit_store, clock):
        records = [make_record(i, node_id="crashed") for i in range(30)]
        for record in records:
            commit_store.write_record(record)
        crashed = AftNode(storage, commit_store=commit_store, clock=clock, node_id="crashed")
        outcomes = []
        for parallel in (True, False):
            manager = FaultManager(
                storage,
                commit_store,
                MulticastService(),
                config=FaultManagerConfig(num_shards=4, parallel_recovery=parallel),
            )
            report = manager.recover_node_failure(crashed)
            outcomes.append(sorted(record.txid for record in report.recovered))
        assert outcomes[0] == outcomes[1] == sorted(record.txid for record in records)

    def test_cluster_failover_promotes_standby(self, clock):
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(num_nodes=3, standby_nodes=1),
            clock=clock,
        )
        client = cluster.client()
        txid = client.start_transaction()
        owner = client.node_for(txid)
        client.put(txid, "k", b"survives")
        client.commit_transaction(txid)
        cluster.fail_node(owner)

        replacements = cluster.replace_failed_nodes()
        assert len(replacements) == 1
        assert replacements[0].node_id.startswith("aft-standby-")
        assert len(cluster.nodes) == 3
        # Recovery already replayed the victim's unbroadcast commit...
        assert cluster.fault_manager.stats.node_recoveries == 1
        assert cluster.fault_manager.stats.unbroadcast_commits_recovered >= 1
        # ...and the pool was restocked for the next failure.
        assert cluster.standby_count() == 1
        survivor = cluster.live_nodes()[0]
        reader = survivor.start_transaction()
        assert survivor.get(reader, "k") == b"survives"

    def test_retired_node_is_not_detected_as_failed(self, clock):
        """absorb_retired_node racing detect_failures: the fault manager must
        not double-replace a node that left via graceful scale-down."""
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(num_nodes=3, standby_nodes=1),
            clock=clock,
        )
        victim = cluster.nodes[0]
        # detect_failures may run against a membership snapshot taken before
        # the retirement completed.
        snapshot = cluster.nodes
        cluster.begin_drain(victim)
        cluster.retire_drained_nodes(force=True)
        assert not victim.is_running and victim.was_retired
        assert cluster.fault_manager.detect_failures(snapshot) == []
        assert cluster.replace_failed_nodes() == []
        assert len(cluster.nodes) == 2

    def test_concurrent_failover_and_scale_down(self, clock):
        """Scale-down and failure recovery racing on different nodes must
        neither lose a replacement nor double-replace the retiree."""
        cluster = AftCluster(
            InMemoryStorage(),
            cluster_config=ClusterConfig(num_nodes=4, standby_nodes=2),
            clock=clock,
        )
        retiree, crashed = cluster.nodes[0], cluster.nodes[1]
        cluster.begin_drain(retiree)
        cluster.fail_node(crashed)

        errors: list[Exception] = []

        def run(action):
            try:
                action()
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(lambda: cluster.retire_drained_nodes(force=True),)),
            threading.Thread(target=run, args=(cluster.replace_failed_nodes,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        # One node retired (no replacement), one crashed (replaced): 4-1 = 3.
        assert len(cluster.nodes) == 3
        assert cluster.stats.nodes_replaced == 1
        assert cluster.stats.nodes_retired == 1
        assert retiree not in cluster.nodes and crashed not in cluster.nodes

    def test_retired_custody_is_partitioned_and_pruned(self, storage, commit_store):
        manager = FaultManager(
            storage, commit_store, MulticastService(), config=FaultManagerConfig(num_shards=4)
        )
        ids = {make_record(i).txid for i in range(40)}
        manager.absorb_retired_node("gone", ids)
        assert manager.retired_node_deletions("gone") == ids
        # Custody is spread across shards, not centralised.
        holding = [shard for shard in manager.shards if shard.retired_deletions.get("gone")]
        assert len(holding) > 1


# --------------------------------------------------------------------------- #
# Hypothesis oracle: sharded recovery == singleton reference
# --------------------------------------------------------------------------- #
KEY_POOL = [f"ok{i}" for i in range(6)]


class _Universe:
    """One fault-manager implementation over its own copy of storage."""

    def __init__(self, manager_factory):
        self.storage = InMemoryStorage()
        self.commit_store = CommitSetStore(self.storage)
        self.multicast = MulticastService()
        self.manager = manager_factory(self.storage, self.commit_store, self.multicast)

    def persist(self, record: CommitRecord) -> None:
        self.commit_store.write_record(record)

    def broadcast(self, records: list[CommitRecord]) -> None:
        self.manager.receive_commits(records)

    def scan(self) -> list[TransactionId]:
        return sorted(record.txid for record in self.manager.scan_commit_set())

    def gc(self) -> list[TransactionId]:
        return self.manager.run_global_gc([])


@st.composite
def crash_broadcast_interleavings(draw, in_order: bool):
    num_records = draw(st.integers(min_value=3, max_value=22))
    write_sets = [
        draw(st.lists(st.sampled_from(KEY_POOL), min_size=1, max_size=3, unique=True))
        for _ in range(num_records)
    ]
    #: True -> the committing node survives to broadcast; False -> it crashes
    #: between commit-ack and broadcast, leaving the record for the scan.
    broadcasts = [draw(st.booleans()) for _ in range(num_records)]
    if in_order:
        persist_order = list(range(num_records))
    else:
        persist_order = draw(st.permutations(list(range(num_records))))
    actions = draw(
        st.lists(
            st.sampled_from(["persist", "broadcast", "scan", "gc"]),
            min_size=num_records,
            max_size=num_records * 3,
        )
    )
    num_shards = draw(st.integers(min_value=2, max_value=5))
    return write_sets, broadcasts, persist_order, actions, num_shards


def run_oracle(write_sets, broadcasts, persist_order, actions, num_shards, watermark_lag):
    records = [make_record(index, keys=keys) for index, keys in enumerate(write_sets)]
    sharded = _Universe(
        lambda storage, store, multicast: FaultManager(
            storage,
            store,
            multicast,
            config=FaultManagerConfig(num_shards=num_shards, watermark_lag=watermark_lag),
        )
    )
    reference = _Universe(ReferenceFaultManager)

    to_persist = list(persist_order)
    broadcast_queue: list[CommitRecord] = []
    for action in actions + ["persist"] * len(to_persist) + ["broadcast", "scan", "scan"]:
        if action == "persist":
            if not to_persist:
                continue
            record = records[to_persist.pop(0)]
            sharded.persist(record)
            reference.persist(record)
            if broadcasts[int(record.txid.timestamp)]:
                broadcast_queue.append(record)
        elif action == "broadcast":
            if not broadcast_queue:
                continue
            sharded.broadcast(list(broadcast_queue))
            reference.broadcast(list(broadcast_queue))
            broadcast_queue.clear()
        elif action == "scan":
            assert sharded.scan() == reference.scan()
        elif action == "gc":
            assert sharded.gc() == reference.gc()

    # Terminal state: both agree on every id that can still appear in a
    # scan.  (Ids the global GC deleted are pruned from the sharded digest —
    # the bounded-memory contract — while the reference remembers them
    # forever; they can never be scanned again, so the difference is moot.)
    for record in records:
        if sharded.commit_store.contains(record.txid):
            assert sharded.manager.has_seen(record.txid) == reference.manager.has_seen(record.txid)
    # Final GC rounds agree too (identical supersedence decisions).
    assert sharded.gc() == reference.gc()
    assert (
        sharded.manager.global_gc.known_transactions()
        == reference.manager.global_gc.known_transactions()
    )


class TestShardedOracle:
    @settings(max_examples=75, deadline=None)
    @given(crash_broadcast_interleavings(in_order=True))
    def test_matches_reference_with_watermark_advancement(self, interleaving):
        """Commits persist in id order (synchronised clocks): the watermark
        advances aggressively and recovery must still match the singleton."""
        run_oracle(*interleaving, watermark_lag=2.0)

    @settings(max_examples=50, deadline=None)
    @given(crash_broadcast_interleavings(in_order=False))
    def test_matches_reference_under_unbounded_skew(self, interleaving):
        """Commits persist in arbitrary order (worst-case clock skew): with
        the watermark lag covering the skew, recovery must match exactly."""
        run_oracle(*interleaving, watermark_lag=1e9)
