"""Tests for Algorithm 2 — transaction supersedence and broadcast pruning."""

from __future__ import annotations

from repro.core.commit_set import CommitRecord
from repro.core.supersedence import (
    blocked_by_readers,
    is_superseded,
    prune_for_broadcast,
    superseded_transactions,
)
from repro.core.version_index import KeyVersionIndex
from repro.ids import TransactionId, data_key


def record(n: float, keys: list[str]) -> CommitRecord:
    txid = TransactionId(float(n), f"u{n}")
    return CommitRecord(txid=txid, write_set={key: data_key(key, txid) for key in keys})


def index_of(*records: CommitRecord) -> KeyVersionIndex:
    index = KeyVersionIndex()
    for rec in records:
        index.add_record(rec.write_set.keys(), rec.txid)
    return index


class TestIsSuperseded:
    def test_latest_version_is_not_superseded(self):
        old, new = record(1, ["k"]), record(2, ["k"])
        index = index_of(old, new)
        assert is_superseded(old, index)
        assert not is_superseded(new, index)

    def test_all_keys_must_be_superseded(self):
        old = record(1, ["k", "l"])
        newer_k_only = record(2, ["k"])
        index = index_of(old, newer_k_only)
        assert not is_superseded(old, index)
        newer_l = record(3, ["l"])
        index.add_record(newer_l.write_set.keys(), newer_l.txid)
        assert is_superseded(old, index)

    def test_unknown_keys_do_not_count_as_superseded(self):
        # A node that has never heard of these keys must not treat the record
        # as stale — it carries fresh information (receiver-side check in §4.1).
        rec = record(5, ["k"])
        assert not is_superseded(rec, KeyVersionIndex())

    def test_older_known_version_does_not_supersede(self):
        older = record(1, ["k"])
        incoming = record(2, ["k"])
        index = index_of(older)
        assert not is_superseded(incoming, index)

    def test_superseded_transactions_filter(self):
        a, b, c = record(1, ["k"]), record(2, ["k"]), record(3, ["k"])
        index = index_of(a, b, c)
        assert {r.txid for r in superseded_transactions([a, b, c], index)} == {a.txid, b.txid}


class TestPruneForBroadcast:
    def test_superseded_records_are_pruned(self):
        a, b = record(1, ["k"]), record(2, ["k"])
        index = index_of(a, b)
        to_broadcast, pruned = prune_for_broadcast([a, b], index)
        assert [r.txid for r in to_broadcast] == [b.txid]
        assert [r.txid for r in pruned] == [a.txid]

    def test_nothing_pruned_for_disjoint_write_sets(self):
        a, b = record(1, ["k"]), record(2, ["l"])
        index = index_of(a, b)
        to_broadcast, pruned = prune_for_broadcast([a, b], index)
        assert len(to_broadcast) == 2 and not pruned


class TestBlockedByReaders:
    def test_blocked_when_a_running_transaction_read_from_it(self):
        rec = record(1, ["k"])
        assert blocked_by_readers(rec, [{rec.txid}])
        assert blocked_by_readers(rec, [set(), {rec.txid, TransactionId(9.0, "x")}])

    def test_not_blocked_otherwise(self):
        rec = record(1, ["k"])
        assert not blocked_by_readers(rec, [])
        assert not blocked_by_readers(rec, [{TransactionId(9.0, "x")}])
