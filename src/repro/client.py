"""The one front door to AFT: :class:`AftClient` and :func:`connect`.

Every deployment shape hides behind the same Table-1 surface::

    import repro

    # In-process: an AftCluster built (or wrapped) for you.
    client = repro.connect("inproc://?nodes=3")

    # Distributed: a repro-router fronting repro-node processes.
    client = repro.connect("tcp://127.0.0.1:7400")

    with client.transaction() as txn:
        txn.put("greeting", b"hello")
    with client.transaction() as txn:
        print(txn.get("greeting"))
    client.close()

Examples, benchmarks, and applications talk to :class:`AftClient`; which
runtime serves the transactions — a single node, an in-process simulated
cluster, or router-fronted node processes on sockets — is a connection
string, not a code path.  (Reaching into ``AftNode`` directly remains fine
for tests and for code that studies node internals; the facade is the
application API.)

``tcp://`` runs a private event-loop thread speaking
:class:`~repro.rpc.client.AsyncRouterClient`; asyncio-native callers (the
open-loop benchmark swarm) should use that client directly instead of
paying a thread hop per operation.
"""

from __future__ import annotations

import asyncio
import threading
from urllib.parse import parse_qs, urlsplit

from repro.config import AftConfig, ClusterConfig
from repro.core.cluster import AftCluster, ClusterClient
from repro.core.session import TransactionSession
from repro.errors import AftError
from repro.ids import TransactionId
from repro.storage.base import StorageEngine
from repro.storage.memory import InMemoryStorage


class AftClient:
    """Deployment-agnostic Table-1 client (a ``TransactionalBackend``)."""

    def __init__(self, backend: "_InprocBackend | _TcpBackend") -> None:
        self._backend = backend

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def connect(
        cls,
        url: str,
        cluster: AftCluster | None = None,
        storage: StorageEngine | None = None,
        node_config: AftConfig | None = None,
        cluster_config: ClusterConfig | None = None,
    ) -> "AftClient":
        """Open a client for ``url``.

        * ``inproc://`` — wrap ``cluster`` if given, else build an
          :class:`AftCluster` over ``storage`` (default in-memory).  A query
          string tunes the built cluster: ``inproc://?nodes=3&standbys=1``.
          A built cluster is owned — :meth:`close` shuts it down; a wrapped
          one is the caller's to manage.
        * ``tcp://host:port`` — speak to a ``repro-router``.
        """
        parts = urlsplit(url)
        if parts.scheme == "inproc":
            owns = cluster is None
            if cluster is None:
                params = parse_qs(parts.query)
                overrides: dict[str, int] = {}
                if "nodes" in params:
                    overrides["num_nodes"] = int(params["nodes"][0])
                if "standbys" in params:
                    overrides["standby_nodes"] = int(params["standbys"][0])
                if cluster_config is None:
                    cluster_config = ClusterConfig(**overrides)
                cluster = AftCluster(
                    storage if storage is not None else InMemoryStorage(),
                    cluster_config=cluster_config,
                    node_config=node_config,
                )
            return cls(_InprocBackend(cluster, owns=owns))
        if parts.scheme == "tcp":
            if not parts.hostname or not parts.port:
                raise AftError(f"tcp URL needs host and port: {url!r}")
            return cls(_TcpBackend(parts.hostname, parts.port))
        raise AftError(f"unknown connection scheme {parts.scheme!r} in {url!r}")

    # ------------------------------------------------------------------ #
    # Table 1
    # ------------------------------------------------------------------ #
    def start_transaction(self, txid: str | None = None, affinity_key: str | None = None) -> str:
        return self._backend.start_transaction(txid, affinity_key)

    def get(self, txid: str, key: str) -> bytes | None:
        return self._backend.get(txid, key)

    def get_many(self, txid: str, keys: list[str]) -> dict[str, bytes | None]:
        return self._backend.get_many(txid, list(keys))

    def put(self, txid: str, key: str, value: bytes | str) -> None:
        if isinstance(value, str):
            value = value.encode("utf-8")
        self._backend.put(txid, key, value)

    def commit_transaction(self, txid: str) -> TransactionId:
        return self._backend.commit_transaction(txid)

    def abort_transaction(self, txid: str) -> None:
        self._backend.abort_transaction(txid)

    def transaction(
        self, txid: str | None = None, affinity_key: str | None = None
    ) -> TransactionSession:
        """Open a ``with``-able transaction (commit on success, abort on error)."""
        return TransactionSession(self, txid, affinity_key=affinity_key)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the connection (and shut down an owned inproc cluster)."""
        self._backend.close()

    def __enter__(self) -> "AftClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def cluster(self) -> AftCluster | None:
        """The underlying in-process cluster, if any (None for ``tcp://``)."""
        return getattr(self._backend, "cluster", None)


class _InprocBackend:
    """``inproc://``: a :class:`ClusterClient` over an :class:`AftCluster`."""

    def __init__(self, cluster: AftCluster, owns: bool) -> None:
        self.cluster = cluster
        self._owns = owns
        self._client = ClusterClient(cluster)

    def start_transaction(self, txid: str | None, affinity_key: str | None) -> str:
        return self._client.start_transaction(txid, affinity_key=affinity_key)

    def get(self, txid: str, key: str) -> bytes | None:
        return self._client.get(txid, key)

    def get_many(self, txid: str, keys: list[str]) -> dict[str, bytes | None]:
        node = self._client.node_for(txid)
        return node.get_many(txid, keys)

    def put(self, txid: str, key: str, value: bytes) -> None:
        self._client.put(txid, key, value)

    def commit_transaction(self, txid: str) -> TransactionId:
        return self._client.commit_transaction(txid)

    def abort_transaction(self, txid: str) -> None:
        self._client.abort_transaction(txid)

    def close(self) -> None:
        if self._owns:
            self.cluster.shutdown()


class _TcpBackend:
    """``tcp://``: a private loop thread driving an ``AsyncRouterClient``."""

    #: Per-operation budget for the loop-thread round trip.
    call_timeout = 60.0

    def __init__(self, host: str, port: int) -> None:
        from repro.rpc.client import AsyncRouterClient

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=f"aft-client-{host}:{port}", daemon=True
        )
        self._thread.start()
        try:
            self._client: AsyncRouterClient = self._call(AsyncRouterClient.connect(host, port))
        except Exception:
            self._stop_loop()
            raise

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(self.call_timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    # ------------------------------------------------------------------ #
    def start_transaction(self, txid: str | None, affinity_key: str | None) -> str:
        # The router round-robins; affinity hints are an in-process balancer
        # feature and are ignored here.
        del affinity_key
        return self._call(self._client.start_transaction(txid))

    def get(self, txid: str, key: str) -> bytes | None:
        return self._call(self._client.get(txid, key))

    def get_many(self, txid: str, keys: list[str]) -> dict[str, bytes | None]:
        return self._call(self._client.get_many(txid, keys))

    def put(self, txid: str, key: str, value: bytes) -> None:
        self._call(self._client.put(txid, key, value))

    def commit_transaction(self, txid: str) -> TransactionId:
        token = self._call(self._client.commit_transaction(txid))
        return TransactionId.from_token(token)

    def abort_transaction(self, txid: str) -> None:
        self._call(self._client.abort_transaction(txid))

    def close(self) -> None:
        try:
            self._call(self._client.close())
        finally:
            self._stop_loop()


def connect(url: str, **kwargs) -> AftClient:
    """Module-level convenience for :meth:`AftClient.connect`."""
    return AftClient.connect(url, **kwargs)


__all__ = ["AftClient", "connect"]
