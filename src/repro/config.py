"""Configuration objects for AFT nodes and clusters.

Keeping all tunables in a single frozen dataclass makes experiment setups
explicit and reproducible: benchmarks construct an :class:`AftConfig`, pass it
to every node in a cluster, and record it alongside results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping


@dataclass(frozen=True)
class ObservabilityConfig:
    """The observability plane's switchboard — fully off by default.

    ``enabled`` turns on span collection (``repro.observability``);
    ``trace_dir`` makes server processes append their spans to
    ``<trace_dir>/trace-<component>.jsonl``; ``metrics_interval`` > 0 makes
    them snapshot their metrics registries to
    ``<trace_dir>/metrics-<component>.jsonl`` every that-many seconds.
    Setting either implies ``enabled`` at the CLI layer; the config object
    itself keeps the three knobs independent so in-process users can trace
    without touching disk.
    """

    enabled: bool = False
    trace_dir: str | None = None
    metrics_interval: float = 0.0
    #: Bound on buffered finished spans per process (a ring: oldest dropped).
    trace_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.metrics_interval < 0:
            raise ValueError("metrics_interval must be >= 0")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")

    def with_overrides(self, **overrides: Any) -> "ObservabilityConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "trace_dir": self.trace_dir,
            "metrics_interval": self.metrics_interval,
            "trace_capacity": self.trace_capacity,
        }


@dataclass(frozen=True)
class AftConfig:
    """Tunables of a single AFT node.

    Attributes
    ----------
    enable_data_cache:
        Whether the node keeps an in-memory cache of key-version *values*
        (Section 3.1 / 6.2).  Metadata caching is always on because the read
        protocol depends on it.
    data_cache_capacity_bytes:
        Capacity of the data cache in bytes of cached payload.
    write_buffer_spill_bytes:
        When a transaction's buffered writes exceed this many bytes, the
        Atomic Write Buffer proactively spills them to storage (Section 3.3).
        ``None`` disables spilling.
    batch_commit_writes:
        Whether the commit protocol pushes a transaction's updates to storage
        with one batched call when the engine supports it (Section 6.1.1).
    enable_io_pipeline:
        Whether node-side storage traffic is routed through the IO-plan
        pipeline (:mod:`repro.core.io_plan`): the commit's data writes, the
        write buffer's spills, and the read protocol's payload fetches become
        explicit plan stages whose operations are issued concurrently and
        charged parallel (per-stage) latency.  Disabling this reproduces the
        original one-operation-at-a-time path with sequential latency — the
        ``bench_ablation_parallel_io`` benchmark compares the two.
    enable_group_commit:
        Whether the node coalesces concurrently-committing transactions into
        a single storage batch through the
        :class:`~repro.core.group_commit.GroupCommitter`.  One combined
        two-stage plan persists every transaction's data first and every
        commit record second, preserving the write-ordering invariant of
        Section 3.3 across the whole batch.
    group_commit_window:
        How long, in seconds of real time, a group-commit leader waits for
        further committers to join its batch before flushing.  ``0`` flushes
        immediately (still coalescing any transactions already queued).
    group_commit_max_txns:
        Upper bound on the number of transactions coalesced into one
        group-commit flush; arrivals beyond it start the next batch.
    io_concurrency:
        Bound on concurrently in-flight request groups per IO-plan stage.
        Applied to the node's storage engines at construction; only engines
        with real blocking IO (``wall_clock_io``) actually fan out — the
        simulated engines meter latency and stay sequential/deterministic.
    async_runtime:
        Declares that this deployment drives the node through the asyncio
        entry points (``get_many_async`` / ``commit_transaction_async`` /
        ``commit_transactions_async``), where stage fan-out runs on
        ``asyncio.gather`` and the group-commit flush is an event-loop timer
        instead of a leader thread.  The sync facade always remains
        available; the discrete-event simulator ignores this flag (it is
        single-threaded simulated time either way) but records it in the
        experiment manifest.
    strict_reads:
        If True, ``get`` raises :class:`~repro.errors.AtomicReadError` when
        Algorithm 1 finds no compatible version; if False it returns ``None``
        (the paper's NULL read, Section 3.6).
    multicast_interval:
        Period, in seconds, of the background thread that broadcasts recently
        committed transactions to peer nodes (Section 4).
    prune_superseded_broadcasts:
        Whether the multicast applies the supersedence pruning optimisation of
        Section 4.1.
    gc_interval:
        Period, in seconds, of the local metadata garbage-collection sweep
        (Section 5.1).
    global_gc_interval:
        Period, in seconds, of the fault manager's global data GC (Section 5.2).
    fault_scan_interval:
        Period of the fault manager's Transaction Commit Set scan used to
        guarantee liveness of committed-but-unbroadcast transactions (Section 4.2).
    metadata_bootstrap_limit:
        How many of the most recent commit records a recovering node loads to
        warm its metadata cache (Section 3.1).
    transaction_timeout:
        Seconds after which an idle, uncommitted transaction is considered
        abandoned and aborted by the node (Section 3.3.1).
    storage_request_timeout:
        Socket round-trip budget, in seconds, for one storage request issued
        by a distributed-runtime node against the router's shared storage
        service (``None`` waits forever).  Only meaningful for deployments
        whose storage engine is :class:`~repro.rpc.storage_client.RemoteStorage`;
        in-process engines ignore it.
    drain_grace_period:
        How long a draining node waits for its in-flight transactions before
        the cluster force-aborts them and retires it anyway.  Drain normally
        completes as soon as the last pinned transaction commits; the grace
        period only bounds pathological stragglers.
    """

    enable_data_cache: bool = True
    data_cache_capacity_bytes: int = 64 * 1024 * 1024
    write_buffer_spill_bytes: int | None = None
    batch_commit_writes: bool = True
    enable_io_pipeline: bool = True
    enable_group_commit: bool = False
    group_commit_window: float = 0.0
    group_commit_max_txns: int = 8
    io_concurrency: int = 16
    async_runtime: bool = False
    strict_reads: bool = False
    multicast_interval: float = 1.0
    prune_superseded_broadcasts: bool = True
    gc_interval: float = 5.0
    global_gc_interval: float = 10.0
    fault_scan_interval: float = 5.0
    metadata_bootstrap_limit: int = 10_000
    transaction_timeout: float = 60.0
    drain_grace_period: float = 30.0
    storage_request_timeout: float | None = 30.0
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)

    def __post_init__(self) -> None:
        if isinstance(self.observability, Mapping):
            # Accept the as_dict form so manifests round-trip: AftConfig(**config.as_dict()).
            object.__setattr__(self, "observability", ObservabilityConfig(**self.observability))
        if self.storage_request_timeout is not None and self.storage_request_timeout <= 0:
            raise ValueError("storage_request_timeout must be > 0 or None")
        if self.group_commit_max_txns < 1:
            raise ValueError("group_commit_max_txns must be >= 1")
        if self.io_concurrency < 1:
            raise ValueError("io_concurrency must be >= 1")
        if self.group_commit_window < 0:
            raise ValueError("group_commit_window must be >= 0")
        if self.enable_group_commit and not self.enable_io_pipeline:
            raise ValueError(
                "enable_group_commit requires enable_io_pipeline: the group "
                "committer persists batches through IO plans"
            )
        if self.enable_group_commit and not self.batch_commit_writes:
            raise ValueError(
                "enable_group_commit contradicts batch_commit_writes=False: "
                "group commit exists to batch commit writes, so the batching "
                "ablation must run with group commit off"
            )

    def with_overrides(self, **overrides: Any) -> "AftConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        """Return a plain dict view, convenient for experiment manifests."""
        return {
            "enable_data_cache": self.enable_data_cache,
            "data_cache_capacity_bytes": self.data_cache_capacity_bytes,
            "write_buffer_spill_bytes": self.write_buffer_spill_bytes,
            "batch_commit_writes": self.batch_commit_writes,
            "enable_io_pipeline": self.enable_io_pipeline,
            "enable_group_commit": self.enable_group_commit,
            "group_commit_window": self.group_commit_window,
            "group_commit_max_txns": self.group_commit_max_txns,
            "io_concurrency": self.io_concurrency,
            "async_runtime": self.async_runtime,
            "strict_reads": self.strict_reads,
            "multicast_interval": self.multicast_interval,
            "prune_superseded_broadcasts": self.prune_superseded_broadcasts,
            "gc_interval": self.gc_interval,
            "global_gc_interval": self.global_gc_interval,
            "fault_scan_interval": self.fault_scan_interval,
            "metadata_bootstrap_limit": self.metadata_bootstrap_limit,
            "transaction_timeout": self.transaction_timeout,
            "drain_grace_period": self.drain_grace_period,
            "storage_request_timeout": self.storage_request_timeout,
            "observability": self.observability.as_dict(),
        }


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Utilization-driven elasticity policy for an AFT cluster.

    The autoscaler samples cluster utilization — in-flight transactions
    divided by the serving capacity of the routable nodes — on every
    evaluation and reacts with hysteresis: a scale event fires only after the
    relevant threshold has been breached for ``scale_up_after`` /
    ``scale_down_after`` *consecutive* evaluations, and never within
    ``cooldown`` seconds of the previous scale event.  The asymmetry (fast
    up, slow down) follows standard practice: under-provisioning hurts tail
    latency immediately, over-provisioning only costs money.

    Attributes
    ----------
    min_nodes / max_nodes:
        Bounds on the number of routable nodes the policy maintains.
    scale_up_threshold / scale_down_threshold:
        Utilization fractions (0..1) above/below which breaches accumulate.
        The gap between them is the hysteresis dead band.
    scale_up_after / scale_down_after:
        Consecutive breached evaluations required before acting.
    cooldown:
        Minimum seconds between scale events, letting the previous event's
        effect show up in utilization before the next decision.
    evaluation_interval:
        Seconds between utilization samples.
    node_capacity:
        In-flight transactions one node serves comfortably; the denominator
        of the utilization metric (mirrors the cost model's request slots).
    """

    min_nodes: int = 1
    max_nodes: int = 8
    scale_up_threshold: float = 0.75
    scale_down_threshold: float = 0.30
    scale_up_after: int = 2
    scale_down_after: int = 5
    cooldown: float = 5.0
    evaluation_interval: float = 1.0
    node_capacity: int = 35

    def __post_init__(self) -> None:
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if not 0.0 < self.scale_down_threshold < self.scale_up_threshold <= 1.0:
            raise ValueError("need 0 < scale_down_threshold < scale_up_threshold <= 1")
        if self.scale_up_after < 1 or self.scale_down_after < 1:
            raise ValueError("hysteresis counts must be >= 1")
        if self.cooldown < 0 or self.evaluation_interval <= 0:
            raise ValueError("cooldown must be >= 0 and evaluation_interval > 0")
        if self.node_capacity < 1:
            raise ValueError("node_capacity must be >= 1")

    def with_overrides(self, **overrides: Any) -> "AutoscalerPolicy":
        return replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        return {
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "scale_up_threshold": self.scale_up_threshold,
            "scale_down_threshold": self.scale_down_threshold,
            "scale_up_after": self.scale_up_after,
            "scale_down_after": self.scale_down_after,
            "cooldown": self.cooldown,
            "evaluation_interval": self.evaluation_interval,
            "node_capacity": self.node_capacity,
        }


@dataclass(frozen=True)
class FaultManagerConfig:
    """Tunables of the sharded fault-manager service (Sections 4.2, 4.3, 5.2).

    The fault manager partitions the transaction-id space across
    ``num_shards`` logical shards on a consistent-hash ring
    (``hash_ring_replicas`` virtual nodes per shard).  Each shard tracks the
    commits it has seen with a *low watermark* plus a recent-window digest
    instead of an unbounded set, and sweeps its slice of the Transaction
    Commit Set incrementally through a resumable cursor.

    Attributes
    ----------
    num_shards:
        Number of logical shards partitioning the transaction-id space.
        ``1`` degenerates to the paper's single fault manager.
    hash_ring_replicas:
        Virtual nodes per shard on the consistent-hash ring.
    scan_read_batch:
        How many commit records one liveness sweep fetches per IO-plan batch
        (the batched replacement for the seed's one ``read_record`` per id).
    max_records_per_scan:
        Per-shard budget of ids examined by one ``scan_commit_set`` call;
        a budget-bounded sweep resumes from its cursor on the next call.
        ``None`` sweeps each shard's full slice every call (the seed
        behaviour, required by the liveness tests).
    watermark_lag:
        Seconds of transaction-id timestamp a shard's low watermark trails
        behind the newest id it has verified.  The watermark only advances
        after a *complete* sweep cycle confirmed every durable id in the
        shard's slice was seen, and never past an id whose record read is
        still unresolved; the lag additionally protects against commit
        records surfacing with bounded clock skew (a node's local clock may
        lag its peers by at most this much — the paper's loosely-synchronised
        clock assumption).
    parallel_recovery:
        Whether node-failure recovery replays the shards concurrently on the
        shared bounded IO runtime (:mod:`repro.runtime`) — the same executor
        budget the data path's plan fan-out uses, not a private pool.  Scans
        stay sequential (deterministic); the simulator charges per-shard
        parallel latency either way.
    """

    num_shards: int = 4
    hash_ring_replicas: int = 16
    scan_read_batch: int = 64
    max_records_per_scan: int | None = None
    watermark_lag: float = 30.0
    parallel_recovery: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.hash_ring_replicas < 1:
            raise ValueError("hash_ring_replicas must be >= 1")
        if self.scan_read_batch < 1:
            raise ValueError("scan_read_batch must be >= 1")
        if self.max_records_per_scan is not None and self.max_records_per_scan < 1:
            raise ValueError("max_records_per_scan must be >= 1 or None")
        if self.watermark_lag < 0:
            raise ValueError("watermark_lag must be >= 0")

    def with_overrides(self, **overrides: Any) -> "FaultManagerConfig":
        return replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        return {
            "num_shards": self.num_shards,
            "hash_ring_replicas": self.hash_ring_replicas,
            "scan_read_batch": self.scan_read_batch,
            "max_records_per_scan": self.max_records_per_scan,
            "watermark_lag": self.watermark_lag,
            "parallel_recovery": self.parallel_recovery,
        }


@dataclass(frozen=True)
class MetadataPlaneConfig:
    """Strategy selection for the pluggable metadata plane (Section 4).

    Each knob names one of the strategies in
    :mod:`repro.core.metadata_plane`; the defaults reproduce the seed's
    hardwired singletons bit-for-bit.

    Attributes
    ----------
    transport:
        Commit-stream transport: ``"direct"`` (the publisher delivers to
        every peer itself, the seed behaviour) or ``"sharded"`` (receivers
        arranged into a hash-ring-ordered relay tree; sender-side cost is
        bounded by ``relay_fanout`` instead of growing with the fleet).
    relay_fanout:
        Degree of the sharded transport's relay tree (ignored by
        ``"direct"``).
    membership:
        Failure detector: ``"polling"`` (ground-truth ``is_running`` checks,
        the seed behaviour) or ``"lease"`` (heartbeat/lease liveness —
        detection is delayed by up to ``lease_duration``, which the
        simulator charges from the deployment cost model).
    lease_duration:
        Seconds a lease survives without a heartbeat renewal.
    heartbeat_interval:
        Seconds between lease renewals.  Heartbeats piggyback on the
        multicast cadence in this repro, so the effective interval is
        ``max(heartbeat_interval, multicast_interval)``; the knob exists so
        the cost model can charge detection delay independently.
    keyspace:
        Commit-record layout: ``"flat"`` (the single ``aft.commit`` prefix)
        or ``"partitioned"`` (one prefix per fault-manager shard, turning
        each shard's sweep into a prefix listing; legacy flat records stay
        readable through the migration shim).
    fencing:
        Whether membership changes mint epoch fencing tokens
        (:mod:`repro.core.metadata_plane.fencing`) that are validated on
        every commit-record write.  Essential when ``membership="lease"``:
        a lease detector can falsely declare a partitioned-but-alive node
        failed, and without fencing that node's late commits would land in
        the Commit Set alongside its replacement's.  Off by default — the
        seed's polling detector never declares a running node failed, and
        unfenced records stay byte-identical to the seed format.
    """

    transport: str = "direct"
    relay_fanout: int = 4
    membership: str = "polling"
    lease_duration: float = 5.0
    heartbeat_interval: float = 1.0
    keyspace: str = "flat"
    fencing: bool = False

    def __post_init__(self) -> None:
        if self.transport not in ("direct", "sharded"):
            raise ValueError(f"unknown commit-stream transport {self.transport!r}")
        if self.membership not in ("polling", "lease"):
            raise ValueError(f"unknown membership mode {self.membership!r}")
        if self.keyspace not in ("flat", "partitioned"):
            raise ValueError(f"unknown commit-keyspace mode {self.keyspace!r}")
        if self.relay_fanout < 1:
            raise ValueError("relay_fanout must be >= 1")
        if self.lease_duration <= 0:
            raise ValueError("lease_duration must be > 0")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.membership == "lease" and self.lease_duration <= self.heartbeat_interval:
            raise ValueError(
                "lease_duration must exceed heartbeat_interval, or every "
                "lease expires between renewals and live nodes flap failed"
            )

    def with_overrides(self, **overrides: Any) -> "MetadataPlaneConfig":
        return replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        return {
            "transport": self.transport,
            "relay_fanout": self.relay_fanout,
            "membership": self.membership,
            "lease_duration": self.lease_duration,
            "heartbeat_interval": self.heartbeat_interval,
            "keyspace": self.keyspace,
            "fencing": self.fencing,
        }


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of a distributed AFT deployment (Section 4).

    ``balancer`` selects the routing policy (``"round_robin"``,
    ``"consistent_hash"``, or ``"least_loaded"``); ``hash_ring_replicas``
    sets the virtual-node count per physical node for consistent hashing.
    ``autoscaler`` enables utilization-driven elasticity: standby nodes are
    promoted under load and idle nodes are drained and retired (``None``
    keeps the cluster at its fixed size).
    """

    num_nodes: int = 1
    node_config: AftConfig = field(default_factory=AftConfig)
    standby_nodes: int = 1
    failure_detection_interval: float = 5.0
    node_replacement_delay: float = 50.0
    balancer: str = "round_robin"
    hash_ring_replicas: int = 100
    autoscaler: AutoscalerPolicy | None = None
    fault_manager: FaultManagerConfig = field(default_factory=FaultManagerConfig)
    metadata_plane: MetadataPlaneConfig = field(default_factory=MetadataPlaneConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Accept a plain mapping for the observability block (deployment
        # specs, JSON configs), mirroring AftConfig's coercion.
        if isinstance(self.observability, Mapping):
            object.__setattr__(self, "observability", ObservabilityConfig(**self.observability))

    def with_overrides(self, **overrides: Any) -> "ClusterConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **overrides)


DEFAULT_CONFIG = AftConfig()
