"""Reproduction of *A Fault-Tolerance Shim for Serverless Computing* (AFT, EuroSys 2020).

The public API is re-exported here for convenience::

    from repro import AftNode, AftCluster, InMemoryStorage, TransactionSession

    storage = InMemoryStorage()
    node = AftNode(storage)
    node.start()
    with TransactionSession(node) as txn:
        txn.put("greeting", b"hello, world")
        txn.get("greeting")

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the system
inventory, and ``EXPERIMENTS.md`` for the paper-versus-measured results.
"""

from repro.clock import Clock, CounterClock, LogicalClock, OffsetClock, SystemClock
from repro.config import (
    AftConfig,
    AutoscalerPolicy,
    ClusterConfig,
    DEFAULT_CONFIG,
    MetadataPlaneConfig,
)
from repro.core import (
    AftCluster,
    AftNode,
    ClusterClient,
    CommitRecord,
    CommitSetStore,
    GroupCommitter,
    IOPlan,
    TransactionSession,
    TransactionStatus,
)
from repro.errors import AftError, AtomicReadError, StorageError, TransactionError
from repro.ids import TransactionId
from repro.storage import (
    InMemoryStorage,
    SimulatedDynamoDB,
    SimulatedRedisCluster,
    SimulatedS3,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "AftNode",
    "AftCluster",
    "ClusterClient",
    "TransactionSession",
    "TransactionStatus",
    "TransactionId",
    "CommitRecord",
    "CommitSetStore",
    "GroupCommitter",
    "IOPlan",
    "AftConfig",
    "MetadataPlaneConfig",
    "AutoscalerPolicy",
    "ClusterConfig",
    "DEFAULT_CONFIG",
    "Clock",
    "SystemClock",
    "LogicalClock",
    "CounterClock",
    "OffsetClock",
    "InMemoryStorage",
    "SimulatedDynamoDB",
    "SimulatedS3",
    "SimulatedRedisCluster",
    "AftError",
    "TransactionError",
    "AtomicReadError",
    "StorageError",
]
