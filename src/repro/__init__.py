"""Reproduction of *A Fault-Tolerance Shim for Serverless Computing* (AFT, EuroSys 2020).

The application API is :func:`repro.connect` — one client for every
deployment shape::

    import repro

    client = repro.connect("inproc://?nodes=3")    # in-process cluster
    # client = repro.connect("tcp://127.0.0.1:7400")  # repro-router cluster

    with client.transaction() as txn:
        txn.put("greeting", b"hello, world")
        txn.get("greeting")
    client.close()

The building blocks (``AftNode``, ``AftCluster``, storage engines, the
``repro.rpc`` transport) remain importable for tests and experiments.

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the system
inventory, and ``EXPERIMENTS.md`` for the paper-versus-measured results.
"""

from repro.client import AftClient, connect
from repro.clock import Clock, CounterClock, LogicalClock, OffsetClock, SystemClock
from repro.config import (
    AftConfig,
    AutoscalerPolicy,
    ClusterConfig,
    DEFAULT_CONFIG,
    MetadataPlaneConfig,
    ObservabilityConfig,
)
from repro.core import (
    AftCluster,
    AftNode,
    ClusterClient,
    CommitRecord,
    CommitSetStore,
    GroupCommitter,
    IOPlan,
    TransactionSession,
    TransactionStatus,
)
from repro.errors import AftError, AtomicReadError, StorageError, TransactionError
from repro.ids import TransactionId
from repro.storage import (
    InMemoryStorage,
    SimulatedDynamoDB,
    SimulatedRedisCluster,
    SimulatedS3,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "AftClient",
    "connect",
    "AftNode",
    "AftCluster",
    "ClusterClient",
    "TransactionSession",
    "TransactionStatus",
    "TransactionId",
    "CommitRecord",
    "CommitSetStore",
    "GroupCommitter",
    "IOPlan",
    "AftConfig",
    "MetadataPlaneConfig",
    "ObservabilityConfig",
    "AutoscalerPolicy",
    "ClusterConfig",
    "DEFAULT_CONFIG",
    "Clock",
    "SystemClock",
    "LogicalClock",
    "CounterClock",
    "OffsetClock",
    "InMemoryStorage",
    "SimulatedDynamoDB",
    "SimulatedS3",
    "SimulatedRedisCluster",
    "AftError",
    "TransactionError",
    "AtomicReadError",
    "StorageError",
]
