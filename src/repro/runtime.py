"""The shared IO runtime: one bounded executor for all blocking storage work.

The async hot path (``StorageEngine.execute_plan_async`` and the ``*_async``
node entry points) fans request groups out with ``asyncio.gather``, but the
storage engines themselves expose blocking calls — real backends block on
sockets, :class:`~repro.storage.latency_injected.LatencyInjectedStorage`
blocks on ``time.sleep``.  Those blocking calls run on the process-wide
executor owned by this module, so the total number of in-flight storage
requests is bounded no matter how many plans, nodes, or event loops are
active at once.

The same executor backs the *sync facade*: ``execute_plan`` dispatches a
stage's request groups here when the engine declares ``wall_clock_io`` (see
:mod:`repro.storage.base`), and the fault manager's parallel per-shard
recovery replay runs through :func:`run_blocking_group` instead of spinning
up a private ``ThreadPoolExecutor`` per recovery.

Re-entrancy: work submitted to the executor is marked with a thread-local
flag.  Code that would otherwise dispatch *more* work to the executor (a
nested plan execution inside a recovery replay, say) detects the flag via
:func:`in_io_worker` and runs inline instead — the classic nested-pool
deadlock (all workers blocked waiting for queue slots that only workers can
free) cannot occur.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Sequence

#: Default bound on concurrently executing storage requests.  Mirrors the
#: default of :attr:`repro.config.AftConfig.io_concurrency`.
DEFAULT_IO_CONCURRENCY = 16

_lock = threading.Lock()
_executor: ThreadPoolExecutor | None = None
_executor_size = DEFAULT_IO_CONCURRENCY

_worker_state = threading.local()


def io_executor() -> ThreadPoolExecutor:
    """Return the process-wide bounded IO executor (created on first use)."""
    global _executor
    with _lock:
        if _executor is None:
            _executor = ThreadPoolExecutor(
                max_workers=_executor_size, thread_name_prefix="aft-io"
            )
        return _executor


def io_executor_size() -> int:
    """Current worker bound of the shared executor."""
    return _executor_size


def configure_io_executor(max_workers: int) -> None:
    """Resize the shared executor (benchmarks sizing it to their client swarm).

    Safe to call at quiet points only: a live executor is shut down without
    waiting, so callers must not have work in flight.
    """
    global _executor, _executor_size
    if max_workers < 1:
        raise ValueError("io executor needs max_workers >= 1")
    with _lock:
        if max_workers == _executor_size and _executor is not None:
            return
        if _executor is not None:
            _executor.shutdown(wait=False)
            _executor = None
        _executor_size = int(max_workers)


def in_io_worker() -> bool:
    """True when the calling thread is one of the shared executor's workers."""
    return getattr(_worker_state, "active", False)


def run_marked(fn: Callable[[], Any]) -> Any:
    """Run ``fn`` with the worker flag set (so nested dispatch stays inline)."""
    _worker_state.active = True
    try:
        return fn()
    finally:
        _worker_state.active = False


def marked(fn: Callable[[], Any]) -> Callable[[], Any]:
    """Wrap ``fn`` for executor dispatch: worker flag + context snapshot.

    ``ThreadPoolExecutor`` (and hence ``loop.run_in_executor``) does *not*
    carry :mod:`contextvars` into the worker thread, unlike asyncio tasks.
    Capturing a context snapshot at the dispatch site keeps context-local
    state — the observability plane's trace context, the storage ledger
    attachment — flowing across the thread hop, so a span opened around a
    sync plan execution still parents the work its groups do on workers.
    """
    ctx = contextvars.copy_context()
    return lambda: ctx.run(run_marked, fn)


def submit_io(fn: Callable[[], Any]) -> Future:
    """Submit one blocking callable to the shared executor."""
    return io_executor().submit(marked(fn))


def run_blocking_group(
    fns: Sequence[Callable[[], Any]], concurrency: int | None = None
) -> list[Any]:
    """Run blocking callables concurrently on the shared executor.

    Results are returned in submission order.  At most ``concurrency``
    callables are in flight at once (default: the executor's own bound);
    the first exception is re-raised after the in-flight wave drains.  When
    called *from* an executor worker the callables run inline sequentially —
    see the module docstring on re-entrancy.
    """
    fns = list(fns)
    if len(fns) <= 1 or in_io_worker():
        return [fn() for fn in fns]
    limit = concurrency if concurrency is not None else _executor_size
    limit = max(1, int(limit))
    results: list[Any] = [None] * len(fns)
    for start in range(0, len(fns), limit):
        wave = {submit_io(fn): start + offset for offset, fn in enumerate(fns[start : start + limit])}
        for future, index in wave.items():
            results[index] = future.result()
    return results
