"""Elle-style dependency-cycle search over transaction histories.

The pairwise :class:`~repro.consistency.checker.AnomalyChecker` inspects each
transaction's reads in isolation — the shape of the paper's Table 2 counting.
Adversarial (nemesis) schedules need a stronger certificate: a **version-order
graph** built from write tags and read observations, searched for dependency
cycles the way Elle does for Jepsen histories.

Graph construction
------------------
Every committed transaction (and every foreign writer observed through a
read tag — e.g. the preload) is a vertex.  Per key, the observed and logged
writes form a **version chain** ordered by the same key the pairwise checker
uses: the registered commit id when known, the tag's write timestamp
otherwise.  Edges:

* ``ww`` — consecutive versions of a key's chain (version order);
* ``wr`` — the writer of an observed version → the transaction that read it;
* ``rw`` — a transaction that read version ``v`` of a key → the writer of
  ``v``'s successor in the chain (an anti-dependency; a NULL read
  anti-depends on the key's *first* version).

What is flagged
---------------
AFT promises read atomicity, not serializability or causal consistency: its
commit broadcasts are unordered and per-record delivery is atomic, so stale
reads (an ``rw``/``ww`` G-single) and causal ``wr``→``wr``→``rw`` chains are
legitimately producible by a correct implementation.  Flagging every
G-single would therefore over-report.  The search returns three precise
shapes instead:

* ``g1c`` — a cycle in ``ww`` ∪ ``wr`` alone (Adya's G1c: circular
  information flow, impossible under any well-defined version order);
* ``fractured`` — the read-atomicity cycle: ``T`` observed ``Ti``'s version
  of key ``k`` (``wr``) yet for some key ``l`` cowritten by ``Ti`` observed
  an *older* version — or NULL — giving an ``rw`` anti-dependency from ``T``
  back into ``Ti`` (Definition 1 / fig. 1 of the paper, as a cycle).  The
  NULL branch catches torn writes the pairwise checker skips (it ignores
  NULL observations entirely);
* ``lost-update`` — ``T`` read version ``v`` of ``k`` and wrote ``k``, but
  another write landed between ``v`` and ``T``'s write in the chain
  (``rw`` + ``ww`` back-edge).  Reported separately: AFT does not prevent
  write-write conflicts, so whether this is an anomaly depends on whether
  the workload performs read-modify-writes (the nemesis workload does not,
  so any occurrence there is a bug).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consistency.checker import AnomalyChecker, TransactionLog
from repro.ids import TransactionId

#: Kinds whose presence certifies a read-atomicity violation (``lost-update``
#: is reported but judged by the caller — see module docstring).
VIOLATION_KINDS = ("g1c", "fractured")


@dataclass(frozen=True)
class CycleEdge:
    """One dependency edge of a reported cycle."""

    kind: str  #: ``ww`` | ``wr`` | ``rw``
    key: str
    src: str  #: writer/reader transaction uuid the edge leaves
    dst: str  #: transaction uuid the edge enters

    def as_dict(self) -> dict[str, str]:
        return {"kind": self.kind, "key": self.key, "src": self.src, "dst": self.dst}


@dataclass(frozen=True)
class AnomalyCycle:
    """A dependency cycle found in the history graph."""

    kind: str  #: ``g1c`` | ``fractured`` | ``lost-update``
    txns: tuple[str, ...]
    edges: tuple[CycleEdge, ...]

    def describe(self) -> str:
        hops = ", ".join(f"{e.src} -{e.kind}[{e.key}]-> {e.dst}" for e in self.edges)
        return f"{self.kind}: {hops}"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "txns": list(self.txns),
            "edges": [e.as_dict() for e in self.edges],
        }


class CycleChecker:
    """Searches transaction logs for dependency cycles.

    Shares the :class:`AnomalyChecker` surface (``add`` / ``extend`` /
    ``register_commit_order``) so workload executors can feed both, and
    :meth:`adopt` imports an already-populated pairwise checker wholesale —
    the simulator's :class:`~repro.simulation.client.ClientGroupResult`
    carries one.
    """

    def __init__(self) -> None:
        self._logs: list[TransactionLog] = []
        self._commit_order: dict[str, TransactionId] = {}

    def add(self, log: TransactionLog) -> None:
        self._logs.append(log)

    def extend(self, logs: list[TransactionLog]) -> None:
        self._logs.extend(logs)

    def register_commit_order(self, txn_uuid: str, commit_id: TransactionId) -> None:
        self._commit_order[txn_uuid] = commit_id

    def adopt(self, checker: AnomalyChecker) -> "CycleChecker":
        """Import the logs and commit order of a pairwise checker."""
        self._logs.extend(checker.logs)
        self._commit_order.update(checker.commit_order)
        return self

    # ------------------------------------------------------------------ #
    def _order(self, uuid: str, fallback: TransactionId) -> TransactionId:
        return self._commit_order.get(uuid, fallback)

    def _committed(self) -> list[TransactionLog]:
        return [log for log in self._logs if log.committed and not log.aborted]

    def _version_chains(
        self, logs: list[TransactionLog]
    ) -> dict[str, list[tuple[TransactionId, str]]]:
        """Per key, the known versions as ``(order, writer uuid)`` ascending."""
        versions: dict[str, dict[str, TransactionId]] = {}
        for log in logs:
            for key, (_op, written) in log.writes.items():
                versions.setdefault(key, {})[log.txn_uuid] = self._order(log.txn_uuid, written)
            for read in log.reads:
                if read.observed is None:
                    continue
                tag = read.observed
                versions.setdefault(read.key, {})[tag.uuid] = self._order(tag.uuid, tag.version)
        return {
            key: sorted(((order, uuid) for uuid, order in writers.items()), key=lambda v: (v[0], v[1]))
            for key, writers in versions.items()
        }

    # ------------------------------------------------------------------ #
    def search(self) -> list[AnomalyCycle]:
        """Return every dependency cycle found, most severe kinds first."""
        logs = self._committed()
        chains = self._version_chains(logs)
        cycles: list[AnomalyCycle] = []
        cycles.extend(self._g1c_cycles(logs, chains))
        for log in logs:
            cycles.extend(self._fractured_cycles(log))
            cycles.extend(self._lost_update_cycles(log, chains))
        return cycles

    def summary(self) -> dict[str, int]:
        """Cycle counts by kind plus the total that certifies a violation."""
        counts = {"g1c": 0, "fractured": 0, "lost-update": 0}
        for cycle in self.search():
            counts[cycle.kind] += 1
        counts["violations"] = sum(counts[kind] for kind in VIOLATION_KINDS)
        return counts

    # ------------------------------------------------------------------ #
    # G1c: cycles in ww ∪ wr
    # ------------------------------------------------------------------ #
    def _info_flow_edges(
        self, logs: list[TransactionLog], chains: dict[str, list[tuple[TransactionId, str]]]
    ) -> dict[str, list[CycleEdge]]:
        edges: dict[str, list[CycleEdge]] = {}

        def link(edge: CycleEdge) -> None:
            if edge.src != edge.dst:
                edges.setdefault(edge.src, []).append(edge)

        for key, chain in chains.items():
            for (_o1, prev), (_o2, succ) in zip(chain, chain[1:]):
                link(CycleEdge(kind="ww", key=key, src=prev, dst=succ))
        for log in logs:
            for read in log.reads:
                if read.observed is not None:
                    link(
                        CycleEdge(
                            kind="wr", key=read.key, src=read.observed.uuid, dst=log.txn_uuid
                        )
                    )
        return edges

    def _g1c_cycles(
        self, logs: list[TransactionLog], chains: dict[str, list[tuple[TransactionId, str]]]
    ) -> list[AnomalyCycle]:
        edges = self._info_flow_edges(logs, chains)
        sccs = _tarjan_sccs(edges)
        cycles = []
        for scc in sccs:
            if len(scc) < 2:
                continue
            cycle_edges = _extract_cycle(edges, scc)
            cycles.append(
                AnomalyCycle(
                    kind="g1c",
                    txns=tuple(e.src for e in cycle_edges),
                    edges=tuple(cycle_edges),
                )
            )
        return cycles

    # ------------------------------------------------------------------ #
    # Fractured reads as wr + rw cycles (incl. the NULL-read rule)
    # ------------------------------------------------------------------ #
    def _fractured_cycles(self, log: TransactionLog) -> list[AnomalyCycle]:
        observed: dict[str, TransactionId | None] = {}
        tags: dict[str, tuple[TransactionId, str, frozenset[str]]] = {}
        for read in log.reads:
            if read.key in log.writes:
                # The RYW check owns reads of self-written keys.
                continue
            if read.observed is None:
                # Record the NULL; only keep it if no version was ever seen
                # (a NULL after a version is a repeatable-read fracture the
                # same-key branch below reports via the tag map).
                observed.setdefault(read.key, None)
                continue
            tag = read.observed
            order = self._order(tag.uuid, tag.version)
            prev = tags.get(read.key)
            if prev is not None and prev[1] != tag.uuid:
                # Repeatable-read violation: two versions of one key.
                older, newer = (prev, (order, tag.uuid, tag.cowritten))
                if older[0] > newer[0]:
                    older, newer = newer, older
                return [
                    AnomalyCycle(
                        kind="fractured",
                        txns=(newer[1], log.txn_uuid),
                        edges=(
                            CycleEdge("wr", read.key, newer[1], log.txn_uuid),
                            CycleEdge("rw", read.key, log.txn_uuid, newer[1]),
                        ),
                    )
                ]
            if prev is None or order > prev[0]:
                tags[read.key] = (order, tag.uuid, tag.cowritten)
            current = observed.get(read.key)
            if current is None or order > current:
                observed[read.key] = order
        cycles: list[AnomalyCycle] = []
        for key, (order, writer, cowritten) in tags.items():
            for other_key in cowritten:
                if other_key == key or other_key in log.writes:
                    continue
                if other_key not in observed:
                    continue
                other = observed[other_key]
                fractured = other is None or (
                    other < order and tags.get(other_key, (None, ""))[1] != writer
                )
                if fractured:
                    cycles.append(
                        AnomalyCycle(
                            kind="fractured",
                            txns=(writer, log.txn_uuid),
                            edges=(
                                CycleEdge("wr", key, writer, log.txn_uuid),
                                CycleEdge("rw", other_key, log.txn_uuid, writer),
                            ),
                        )
                    )
                    return cycles  # one certificate per transaction suffices
        return cycles

    # ------------------------------------------------------------------ #
    # Lost updates: rw + ww back-edge on the same key
    # ------------------------------------------------------------------ #
    def _lost_update_cycles(
        self, log: TransactionLog, chains: dict[str, list[tuple[TransactionId, str]]]
    ) -> list[AnomalyCycle]:
        cycles: list[AnomalyCycle] = []
        for key, (write_op, written) in log.writes.items():
            # Only pre-write reads of foreign versions establish the
            # read-modify-write window; a post-write read observing the
            # transaction's own version is the RYW guarantee at work.
            reads = [
                r
                for r in log.reads
                if r.key == key
                and r.observed is not None
                and r.op_index < write_op
                and r.observed.uuid != log.txn_uuid
            ]
            if not reads:
                continue
            my_order = self._order(log.txn_uuid, written)
            seen = max(self._order(r.observed.uuid, r.observed.version) for r in reads)
            chain = chains.get(key, [])
            for order, writer in chain:
                if writer == log.txn_uuid or writer in {r.observed.uuid for r in reads}:
                    continue
                if seen < order < my_order:
                    cycles.append(
                        AnomalyCycle(
                            kind="lost-update",
                            txns=(log.txn_uuid, writer),
                            edges=(
                                CycleEdge("rw", key, log.txn_uuid, writer),
                                CycleEdge("ww", key, writer, log.txn_uuid),
                            ),
                        )
                    )
                    break
        return cycles


# --------------------------------------------------------------------------- #
# Graph helpers
# --------------------------------------------------------------------------- #
def _tarjan_sccs(edges: dict[str, list[CycleEdge]]) -> list[list[str]]:
    """Iterative Tarjan strongly-connected components over the edge map."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]
    nodes = set(edges)
    for targets in edges.values():
        nodes.update(e.dst for e in targets)

    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work.pop()
            if child_i == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = edges.get(node, [])
            advanced = False
            for i in range(child_i, len(children)):
                dst = children[i].dst
                if dst not in index:
                    work.append((node, i + 1))
                    work.append((dst, 0))
                    advanced = True
                    break
                if dst in on_stack:
                    lowlink[node] = min(lowlink[node], index[dst])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def _extract_cycle(edges: dict[str, list[CycleEdge]], scc: list[str]) -> list[CycleEdge]:
    """One simple cycle inside a (non-trivial) strongly-connected component."""
    members = set(scc)
    start = scc[0]
    path: list[CycleEdge] = []
    visited: set[str] = set()
    node = start
    while True:
        visited.add(node)
        step = next(e for e in edges.get(node, []) if e.dst in members)
        path.append(step)
        node = step.dst
        if node == start:
            return path
        if node in visited:
            # Trim the walk-in prefix: keep the loop from the first visit.
            for i, edge in enumerate(path):
                if edge.src == node:
                    return path[i:]
            return path  # unreachable: the revisited node left via some edge
