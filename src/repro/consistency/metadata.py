"""Tagged payloads used for anomaly detection.

A :class:`TaggedValue` wraps an application payload with the metadata AFT
itself tracks for every version — the writing transaction's commit timestamp,
its uuid, and the set of keys cowritten with it (paper Section 6.1.2).  The
benchmark harness writes tagged payloads through *every* system under test
(AFT and the baselines alike) so that the
:class:`~repro.consistency.checker.AnomalyChecker` can reconstruct which
version each read observed, regardless of whether the storage path preserved
any ordering guarantees.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field

from repro.ids import TransactionId


@dataclass(frozen=True)
class TaggedValue:
    """An application payload plus version-identifying metadata."""

    payload: bytes
    timestamp: float
    uuid: str
    cowritten: frozenset[str] = field(default_factory=frozenset)

    @property
    def version(self) -> TransactionId:
        """The writing transaction's id, reconstructed from the tag."""
        return TransactionId(timestamp=self.timestamp, uuid=self.uuid)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Encode the tag and payload into a single storage value."""
        envelope = {
            "p": base64.b64encode(self.payload).decode("ascii"),
            "t": self.timestamp,
            "u": self.uuid,
            "c": sorted(self.cowritten),
        }
        return json.dumps(envelope, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "TaggedValue":
        """Decode a value previously produced by :meth:`to_bytes`."""
        envelope = json.loads(data.decode("utf-8"))
        return cls(
            payload=base64.b64decode(envelope["p"]),
            timestamp=envelope["t"],
            uuid=envelope["u"],
            cowritten=frozenset(envelope["c"]),
        )

    @classmethod
    def try_from_bytes(cls, data: bytes | None) -> "TaggedValue | None":
        """Decode if possible; return ``None`` for missing or untagged values."""
        if data is None:
            return None
        try:
            return cls.from_bytes(data)
        except (ValueError, KeyError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------ #
    def overhead_bytes(self) -> int:
        """Size of the metadata envelope beyond the raw payload."""
        return len(self.to_bytes()) - len(self.payload)

    def __lt__(self, other: "TaggedValue") -> bool:
        return self.version < other.version
