"""Read-your-write and fractured-read anomaly detection.

Definitions follow the paper (Sections 2.1, 3.2 and 6.1.2):

* A **read-your-write (RYW) anomaly** occurs when a transaction reads a key it
  previously wrote *in the same transaction* and observes a version other
  than its own.
* A **fractured-read (FR) anomaly** occurs when a transaction reads version
  ``k_i`` and also reads version ``l_j`` of a key ``l`` that was cowritten
  with ``k_i``, where ``j < i`` — i.e. it sees part of transaction ``T_i``'s
  write set together with data older than the rest of that write set.  This
  subsumes repeatable-read violations (reading two different versions of the
  same key), since a key is trivially cowritten with itself.

The checker consumes :class:`TransactionLog` objects produced by the workload
executor; it never needs to know which system produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consistency.metadata import TaggedValue
from repro.ids import TransactionId


@dataclass
class ReadObservation:
    """One read performed by a transaction."""

    key: str
    #: The tag of the value observed; ``None`` for a NULL / missing read.
    observed: TaggedValue | None
    #: Position of this operation within the transaction (0-based).
    op_index: int
    #: Index of the function (within the composition) that issued the read.
    function_index: int = 0


@dataclass
class TransactionLog:
    """Everything a transaction observed and wrote, for post-hoc checking."""

    txn_uuid: str
    reads: list[ReadObservation] = field(default_factory=list)
    #: Key -> (op_index, version written).  The version is the tag the
    #: executor attached to the value it wrote for this transaction.
    writes: dict[str, tuple[int, TransactionId]] = field(default_factory=dict)
    committed: bool = True
    aborted: bool = False

    def record_read(self, key: str, observed: TaggedValue | None, op_index: int, function_index: int = 0) -> None:
        self.reads.append(
            ReadObservation(key=key, observed=observed, op_index=op_index, function_index=function_index)
        )

    def record_write(self, key: str, version: TransactionId, op_index: int) -> None:
        self.writes[key] = (op_index, version)


@dataclass
class AnomalyCounts:
    """Aggregated anomaly counts over a set of transactions."""

    transactions: int = 0
    committed_transactions: int = 0
    ryw_anomalies: int = 0
    fractured_read_anomalies: int = 0
    null_reads: int = 0

    @property
    def ryw_rate(self) -> float:
        if self.committed_transactions == 0:
            return 0.0
        return self.ryw_anomalies / self.committed_transactions

    @property
    def fractured_read_rate(self) -> float:
        if self.committed_transactions == 0:
            return 0.0
        return self.fractured_read_anomalies / self.committed_transactions

    def as_dict(self) -> dict[str, float]:
        return {
            "transactions": self.transactions,
            "committed_transactions": self.committed_transactions,
            "ryw_anomalies": self.ryw_anomalies,
            "fractured_read_anomalies": self.fractured_read_anomalies,
            "null_reads": self.null_reads,
            "ryw_rate": self.ryw_rate,
            "fractured_read_rate": self.fractured_read_rate,
        }


class AnomalyChecker:
    """Counts RYW and FR anomalies across transaction logs.

    Matching the paper's Table 2 methodology, a transaction contributes at
    most one RYW anomaly and at most one FR anomaly to the totals, no matter
    how many of its reads were inconsistent.

    Version ordering
    ----------------
    Fractured reads are defined with respect to the system's version order.
    For baselines that order is simply the order in which values were written
    (the tag timestamps).  AFT, however, orders versions by *commit*
    timestamp, which can disagree with write order when a transaction that
    started earlier commits later.  Callers measuring AFT therefore register
    each transaction's commit id via :meth:`register_commit_order`; tags from
    registered transactions are compared using the commit order, and all other
    tags fall back to their embedded write timestamps.
    """

    def __init__(self) -> None:
        self._logs: list[TransactionLog] = []
        self._commit_order: dict[str, TransactionId] = {}

    def add(self, log: TransactionLog) -> None:
        self._logs.append(log)

    def extend(self, logs: list[TransactionLog]) -> None:
        self._logs.extend(logs)

    def register_commit_order(self, txn_uuid: str, commit_id: TransactionId) -> None:
        """Record the commit id the system under test assigned to ``txn_uuid``."""
        self._commit_order[txn_uuid] = commit_id

    @property
    def logs(self) -> list[TransactionLog]:
        return list(self._logs)

    @property
    def commit_order(self) -> dict[str, TransactionId]:
        """The registered txn-uuid → commit-id map (for checker hand-off)."""
        return dict(self._commit_order)

    # ------------------------------------------------------------------ #
    def _order_key(self, tag: TaggedValue) -> TransactionId:
        """The version-order key of a tag (commit order when known)."""
        return self._commit_order.get(tag.uuid, tag.version)

    def transaction_has_ryw_anomaly(self, log: TransactionLog) -> bool:
        """True if any read of a previously written key saw a foreign version."""
        for read in log.reads:
            write = log.writes.get(read.key)
            if write is None:
                continue
            write_index, written_version = write
            if read.op_index < write_index:
                # The read happened before the transaction's own write; the
                # read-your-write guarantee does not apply to it.
                continue
            if read.observed is None or read.observed.version != written_version:
                return True
        return False

    def transaction_has_fractured_read(self, log: TransactionLog) -> bool:
        """True if the transaction's observed reads violate Definition 1."""
        observed: dict[str, TaggedValue] = {}
        for read in log.reads:
            if read.observed is None:
                continue
            # Keys the transaction itself wrote are excluded: after its own
            # write, observing its own version is expected, and before the
            # write the RYW check owns the comparison.
            if read.key in log.writes:
                continue
            previous = observed.get(read.key)
            if previous is not None and previous.version != read.observed.version:
                # Repeatable-read violation: same key, two different versions.
                return True
            if previous is None or self._order_key(read.observed) > self._order_key(previous):
                observed[read.key] = read.observed
        for key, tag in observed.items():
            for cowritten_key in tag.cowritten:
                other = observed.get(cowritten_key)
                if other is not None and self._order_key(other) < self._order_key(tag):
                    return True
        return False

    @staticmethod
    def transaction_null_reads(log: TransactionLog) -> int:
        return sum(1 for read in log.reads if read.observed is None and read.key not in log.writes)

    # ------------------------------------------------------------------ #
    def counts(self) -> AnomalyCounts:
        """Aggregate anomaly counts over every log added so far."""
        counts = AnomalyCounts()
        for log in self._logs:
            counts.transactions += 1
            if not log.committed or log.aborted:
                continue
            counts.committed_transactions += 1
            if self.transaction_has_ryw_anomaly(log):
                counts.ryw_anomalies += 1
            if self.transaction_has_fractured_read(log):
                counts.fractured_read_anomalies += 1
            counts.null_reads += self.transaction_null_reads(log)
        return counts
