"""Consistency-anomaly measurement.

The paper quantifies AFT's benefit by counting two kinds of anomalies over
10,000 transactions (Table 2): read-your-write (RYW) anomalies and fractured
read (FR) anomalies.  To measure them for systems that provide no transaction
metadata of their own, every written value is tagged with the writing
transaction's timestamp, uuid, and cowritten key set — about 70 extra bytes on
a 4 KB payload, exactly as the paper does — and a checker inspects each
transaction's observed reads afterwards.
"""

from repro.consistency.metadata import TaggedValue
from repro.consistency.checker import (
    AnomalyCounts,
    AnomalyChecker,
    ReadObservation,
    TransactionLog,
)
from repro.consistency.cycles import AnomalyCycle, CycleChecker, CycleEdge

__all__ = [
    "TaggedValue",
    "AnomalyChecker",
    "AnomalyCounts",
    "AnomalyCycle",
    "CycleChecker",
    "CycleEdge",
    "ReadObservation",
    "TransactionLog",
]
