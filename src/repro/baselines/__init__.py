"""Baseline systems the paper compares AFT against.

* :class:`~repro.baselines.plain.PlainStorageClient` — functions write and
  read the storage engine directly with no shim ("Plain" bars in Figure 3).
* :class:`~repro.baselines.dynamo_txn.DynamoTransactionClient` — DynamoDB's
  native transaction mode, with read-only and write-only single-call
  transactions and conflict-retry behaviour ("Transactional"/"DynamoDB Txns").
* :class:`~repro.baselines.ramp.RampFastStore` — the original RAMP-Fast
  protocol with pre-declared read/write sets, implemented as an extension for
  the staleness/abort ablation.
"""

from repro.baselines.plain import PlainStorageClient
from repro.baselines.dynamo_txn import DynamoTransactionClient
from repro.baselines.ramp import RampFastStore, RampTransactionAborted

__all__ = [
    "PlainStorageClient",
    "DynamoTransactionClient",
    "RampFastStore",
    "RampTransactionAborted",
]
