"""The "Plain" baseline: direct storage access with no shim.

This is how serverless applications use cloud storage today and is the
baseline labelled "Plain" in Figure 3: every ``Put`` writes the storage engine
immediately and in place, every ``Get`` reads whatever the engine returns, and
"commit" and "abort" are no-ops because there is nothing to make atomic.  A
failure mid-request leaves a fractional set of updates visible, and concurrent
requests freely interleave — exactly the anomalies Table 2 counts.

The client still implements the Table 1 call signatures so that the same
workload executor can drive AFT and the baseline interchangeably.
"""

from __future__ import annotations

import threading

from repro.clock import Clock, SystemClock
from repro.ids import TransactionId, new_uuid
from repro.storage.base import StorageEngine


class PlainStorageClient:
    """Direct, non-transactional access to a storage engine."""

    def __init__(self, storage: StorageEngine, clock: Clock | None = None) -> None:
        self.storage = storage
        self.clock = clock if clock is not None else SystemClock()
        self._active: dict[str, float] = {}
        self._lock = threading.Lock()
        self.puts = 0
        self.gets = 0

    # ------------------------------------------------------------------ #
    # Table 1 API (degenerate, non-atomic semantics)
    # ------------------------------------------------------------------ #
    def start_transaction(self, txid: str | None = None) -> str:
        """Hand out a request id; there is no transactional state to create."""
        txid = txid if txid is not None else new_uuid()
        with self._lock:
            self._active.setdefault(txid, self.clock.now())
        return txid

    def get(self, txid: str, key: str) -> bytes | None:
        """Read the engine directly; no session or isolation guarantees."""
        self.gets += 1
        return self.storage.get(key)

    def put(self, txid: str, key: str, value: bytes | str) -> None:
        """Write the engine immediately and in place (no buffering)."""
        if isinstance(value, str):
            value = value.encode("utf-8")
        self.puts += 1
        self.storage.put(key, value)

    def commit_transaction(self, txid: str) -> TransactionId:
        """Nothing to commit — updates were already persisted one by one."""
        with self._lock:
            started = self._active.pop(txid, self.clock.now())
        return TransactionId(timestamp=started, uuid=txid)

    def abort_transaction(self, txid: str) -> None:
        """Nothing can be undone; previously issued writes remain visible."""
        with self._lock:
            self._active.pop(txid, None)
