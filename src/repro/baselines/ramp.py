"""RAMP-Fast: the original read-atomic protocol (Bailis et al., SIGMOD 2014).

AFT's read protocol is a redesign of RAMP for the serverless setting
(paper Sections 2.2 and 3.6): RAMP assumes *pre-declared* read and write sets
and an unreplicated, linearizable, sharded store, but in exchange it can
"repair" a mismatched first-round read with a targeted second-round read and
therefore never returns data staler than the newest committed sibling.

This module implements RAMP-Fast over any storage engine, both as a
correctness cross-check for our read-atomicity tests and as the comparison
point for the staleness/abort ablation benchmark:

* ``write_transaction(write_set)`` — two-phase: PREPARE every version (value +
  metadata: timestamp and sibling keys), then COMMIT by advancing each item's
  *last-committed* pointer.
* ``read_transaction(keys)`` — first round reads the last-committed version of
  every requested key; a second round fetches, by exact version, any key whose
  observed version is older than what a sibling's metadata proves must exist.

Unlike AFT, the whole read set must be supplied up front, which is exactly the
restriction AFT lifts.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

from repro.clock import Clock, SystemClock
from repro.errors import AftError
from repro.ids import TransactionId, new_uuid
from repro.storage.base import StorageEngine

_VERSION_PREFIX = "ramp.version"
_LATEST_PREFIX = "ramp.latest"


class RampTransactionAborted(AftError):
    """A RAMP read could not be completed (missing version during repair)."""


@dataclass(frozen=True)
class RampVersion:
    """One committed (or prepared) RAMP version of a key."""

    key: str
    value: bytes
    timestamp: float
    uuid: str
    siblings: frozenset[str]

    @property
    def version_id(self) -> TransactionId:
        return TransactionId(timestamp=self.timestamp, uuid=self.uuid)

    def to_bytes(self) -> bytes:
        import base64

        return json.dumps(
            {
                "key": self.key,
                "value": base64.b64encode(self.value).decode("ascii"),
                "timestamp": self.timestamp,
                "uuid": self.uuid,
                "siblings": sorted(self.siblings),
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "RampVersion":
        import base64

        payload = json.loads(data.decode("utf-8"))
        return cls(
            key=payload["key"],
            value=base64.b64decode(payload["value"]),
            timestamp=payload["timestamp"],
            uuid=payload["uuid"],
            siblings=frozenset(payload["siblings"]),
        )


def _version_key(key: str, version: TransactionId) -> str:
    return f"{_VERSION_PREFIX}/{key}/{version.to_token()}"


def _latest_key(key: str) -> str:
    return f"{_LATEST_PREFIX}/{key}"


class RampFastStore:
    """RAMP-Fast reads and writes over a storage engine."""

    def __init__(self, storage: StorageEngine, clock: Clock | None = None) -> None:
        self.storage = storage
        self.clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self.second_round_reads = 0
        self.write_transactions = 0
        self.read_transactions = 0

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def write_transaction(self, write_set: dict[str, bytes]) -> TransactionId:
        """Atomically (in the read-atomic sense) install a set of writes."""
        if not write_set:
            raise ValueError("RAMP write transactions must write at least one key")
        self.write_transactions += 1
        with self._lock:
            version = TransactionId(timestamp=self.clock.now(), uuid=new_uuid())
        siblings = frozenset(write_set)

        # PREPARE: persist every version with its metadata.
        for key, value in write_set.items():
            ramp_version = RampVersion(
                key=key,
                value=bytes(value),
                timestamp=version.timestamp,
                uuid=version.uuid,
                siblings=siblings,
            )
            self.storage.put(_version_key(key, version), ramp_version.to_bytes())

        # COMMIT: advance the last-committed pointer of every key.  Pointers
        # only ever move forward in timestamp order.
        for key in write_set:
            self._advance_latest(key, version)
        return version

    def _advance_latest(self, key: str, version: TransactionId) -> None:
        current = self._read_latest_pointer(key)
        if current is None or current < version:
            self.storage.put(_latest_key(key), version.to_token().encode("utf-8"))

    def _read_latest_pointer(self, key: str) -> TransactionId | None:
        raw = self.storage.get(_latest_key(key))
        if raw is None:
            return None
        return TransactionId.from_token(raw.decode("utf-8"))

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def read_transaction(self, keys: list[str]) -> dict[str, bytes | None]:
        """Read a pre-declared set of keys with read-atomic visibility."""
        self.read_transactions += 1
        first_round: dict[str, RampVersion | None] = {}
        for key in keys:
            first_round[key] = self._read_latest_version(key)

        # Compute, for every requested key, the newest version id that some
        # sibling's metadata proves must exist.
        required: dict[str, TransactionId] = {}
        for version in first_round.values():
            if version is None:
                continue
            for sibling in version.siblings:
                if sibling in first_round and sibling != version.key:
                    current = required.get(sibling)
                    if current is None or current < version.version_id:
                        required[sibling] = version.version_id

        result: dict[str, bytes | None] = {}
        for key, version in first_round.items():
            needed = required.get(key)
            if version is not None and (needed is None or version.version_id >= needed):
                result[key] = version.value
                continue
            if needed is None:
                result[key] = None
                continue
            # Second round: fetch the exact version the metadata requires.
            self.second_round_reads += 1
            repaired = self.storage.get(_version_key(key, needed))
            if repaired is None:
                raise RampTransactionAborted(
                    f"RAMP repair read of {key!r} at version {needed} found no data"
                )
            result[key] = RampVersion.from_bytes(repaired).value
        return result

    def _read_latest_version(self, key: str) -> RampVersion | None:
        pointer = self._read_latest_pointer(key)
        if pointer is None:
            return None
        raw = self.storage.get(_version_key(key, pointer))
        if raw is None:
            return None
        return RampVersion.from_bytes(raw)
