"""The DynamoDB transaction-mode baseline.

DynamoDB's native transactions (``TransactGetItems`` / ``TransactWriteItems``)
are single API calls that are either read-only or write-only and succeed or
fail as a group (paper Section 6.1.2).  They cannot span the multiple
functions of a serverless request, so the paper adapts the workload: each
function batches its reads into one transactional read call, and all of the
request's writes are grouped into a single transactional write issued by the
last function.  That removes read-your-write anomalies but still admits
fractured reads across functions, and under contention the service aborts
conflicting transactions, forcing client-side retries (Figure 4's latency
blow-up at high skew).

:class:`DynamoTransactionClient` reproduces that adapted access pattern over
:class:`~repro.storage.dynamodb.SimulatedDynamoDB`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransactionConflictError
from repro.ids import new_uuid
from repro.storage.dynamodb import SimulatedDynamoDB


@dataclass
class DynamoTxnStats:
    read_transactions: int = 0
    write_transactions: int = 0
    conflicts: int = 0
    retries: int = 0
    gave_up: int = 0


class DynamoTransactionClient:
    """Read-only / write-only native transactions with conflict retries."""

    def __init__(self, storage: SimulatedDynamoDB, max_retries: int = 5) -> None:
        if not isinstance(storage, SimulatedDynamoDB):
            raise TypeError("DynamoTransactionClient requires a SimulatedDynamoDB engine")
        self.storage = storage
        self.max_retries = int(max_retries)
        self.stats = DynamoTxnStats()

    # ------------------------------------------------------------------ #
    def transact_read(self, keys: list[str]) -> dict[str, bytes | None]:
        """One ``TransactGetItems`` call with retry-on-conflict."""
        self.stats.read_transactions += 1
        return self._with_retries(lambda token: self.storage.transact_get_items(keys, token=token))

    def transact_write(self, items: dict[str, bytes]) -> None:
        """One ``TransactWriteItems`` call with retry-on-conflict."""
        self.stats.write_transactions += 1
        self._with_retries(lambda token: self.storage.transact_write_items(items, token=token))

    def _with_retries(self, call):
        attempts = 0
        while True:
            token = new_uuid()
            try:
                return call(token)
            except TransactionConflictError:
                self.stats.conflicts += 1
                attempts += 1
                if attempts > self.max_retries:
                    self.stats.gave_up += 1
                    raise
                self.stats.retries += 1

    # ------------------------------------------------------------------ #
    # Lock-window helpers used by the discrete-event simulator, which needs
    # the conflict window to span simulated time rather than a single call.
    # ------------------------------------------------------------------ #
    def begin_conflict_window(self, keys: list[str], mode: str = "write") -> str:
        """Claim the items for an in-flight transaction; raises on conflict."""
        token = new_uuid()
        self.storage.transact_begin(keys, token, mode=mode)
        return token

    def end_conflict_window(self, token: str) -> None:
        self.storage.transact_end(token)

    def record_conflict(self, retried: bool = True) -> None:
        """Account a conflict detected by the simulator's lock window."""
        self.stats.conflicts += 1
        if retried:
            self.stats.retries += 1
        else:
            self.stats.gave_up += 1
