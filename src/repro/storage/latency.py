"""Latency models for the simulated storage engines.

The engines never sleep: every operation *samples* a latency from a model and
charges it to the currently attached :class:`~repro.storage.base.CostLedger`.
The benchmark harness converts accrued cost into simulated time, while unit
tests run with :class:`ZeroLatency` so they stay fast and deterministic.

The calibrated profiles at the bottom of this module are chosen so that the
low-load medians of the end-to-end experiment (paper Figure 3) land close to
the published numbers; see ``repro.harness.paper_data`` for the targets.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass


class LatencyModel(ABC):
    """Samples per-operation latencies, in seconds."""

    @abstractmethod
    def sample(self, op: str, n_items: int = 1, total_bytes: int = 0) -> float:
        """Return the latency of one storage operation.

        Parameters
        ----------
        op:
            Operation class: ``"read"``, ``"write"``, ``"batch_write"``,
            ``"batch_read"``, ``"delete"``, ``"list"``, or ``"transact"``.
        n_items:
            Number of items touched by the operation (1 for point ops).
        total_bytes:
            Total payload size, used to model size-dependent transfer cost.
        """


class ZeroLatency(LatencyModel):
    """All operations are free.  Used by unit tests."""

    def sample(self, op: str, n_items: int = 1, total_bytes: int = 0) -> float:
        return 0.0


class ConstantLatency(LatencyModel):
    """Every operation costs a fixed amount, regardless of size."""

    def __init__(self, latency: float) -> None:
        self.latency = float(latency)

    def sample(self, op: str, n_items: int = 1, total_bytes: int = 0) -> float:
        return self.latency


@dataclass
class OperationProfile:
    """Lognormal latency profile of one operation class.

    ``median`` is the per-request median in seconds, ``sigma`` the lognormal
    shape parameter (tail heaviness), ``per_item`` an additional cost charged
    per item beyond the first (models batch fan-out inside the service) and
    ``per_mib`` the transfer cost per mebibyte of payload.
    """

    median: float
    sigma: float = 0.25
    per_item: float = 0.0
    per_mib: float = 0.0

    def sample(self, rng: random.Random, n_items: int, total_bytes: int) -> float:
        mu = math.log(self.median)
        base = rng.lognormvariate(mu, self.sigma)
        extra_items = max(0, n_items - 1) * self.per_item
        transfer = (total_bytes / (1024.0 * 1024.0)) * self.per_mib
        return base + extra_items + transfer


class LogNormalLatency(LatencyModel):
    """Latency model with a lognormal base cost per operation class.

    Lognormal distributions capture the long right tail that cloud storage
    services exhibit (the paper's p99 numbers are 2-20x the medians).  The
    model is seeded so experiments are reproducible.
    """

    def __init__(self, profiles: dict[str, OperationProfile], seed: int | None = 0) -> None:
        if "read" not in profiles or "write" not in profiles:
            raise ValueError("latency profiles must define at least 'read' and 'write'")
        self._profiles = dict(profiles)
        self._rng = random.Random(seed)

    def sample(self, op: str, n_items: int = 1, total_bytes: int = 0) -> float:
        profile = self._profiles.get(op)
        if profile is None:
            # Fall back to the closest generic class for unprofiled operations.
            fallback = "write" if op in ("delete", "batch_write", "transact") else "read"
            profile = self._profiles[fallback]
        return profile.sample(self._rng, n_items, total_bytes)

    def reseed(self, seed: int) -> None:
        """Reset the random stream (used by the harness between trials)."""
        self._rng = random.Random(seed)


def dynamodb_latency_profile(seed: int | None = 0) -> LogNormalLatency:
    """DynamoDB latency as seen from Lambda-resident clients.

    Calibrated against Figure 3: plain DynamoDB's 6-IO, 2-function transaction
    has a ~69 ms median, of which roughly 29 ms is compute-side overhead,
    leaving ~6.5 ms per point operation.  Transact-mode operations carry extra
    coordination cost (Figure 4's DynamoDB-transactions line).
    """
    return LogNormalLatency(
        {
            "read": OperationProfile(median=0.0063, sigma=0.50),
            "write": OperationProfile(median=0.0070, sigma=0.55),
            "batch_write": OperationProfile(median=0.0080, sigma=0.50, per_item=0.0007),
            "batch_read": OperationProfile(median=0.0070, sigma=0.45, per_item=0.0005),
            "delete": OperationProfile(median=0.0070, sigma=0.50),
            "list": OperationProfile(median=0.0120, sigma=0.40, per_item=0.0001),
            "transact": OperationProfile(median=0.0160, sigma=0.60, per_item=0.0012),
        },
        seed=seed,
    )


def dynamodb_vm_latency_profile(seed: int | None = 0) -> LogNormalLatency:
    """DynamoDB latency as seen from a long-lived VM client (Figure 2).

    The IO-latency microbenchmark issues requests from a plain EC2 thread with
    warm connections, where a single write lands at ~3 ms median, sequential
    writes have very heavy tails, and a 10-item batch costs ~7 ms.
    """
    return LogNormalLatency(
        {
            "read": OperationProfile(median=0.0028, sigma=0.45),
            "write": OperationProfile(median=0.0031, sigma=0.75),
            "batch_write": OperationProfile(median=0.0034, sigma=0.50, per_item=0.00038),
            "batch_read": OperationProfile(median=0.0032, sigma=0.45, per_item=0.0003),
            "delete": OperationProfile(median=0.0031, sigma=0.50),
            "list": OperationProfile(median=0.0100, sigma=0.40, per_item=0.0001),
            "transact": OperationProfile(median=0.0120, sigma=0.55, per_item=0.0010),
        },
        seed=seed,
    )


def s3_latency_profile(seed: int | None = 0) -> LogNormalLatency:
    """Latency profile calibrated to the paper's S3 measurements.

    S3 is a throughput-oriented object store with high small-object write
    latency and heavy variance (Figure 3: plain S3 medians ~200 ms with p99
    ~650 ms for a 6-IO transaction).
    """
    return LogNormalLatency(
        {
            "read": OperationProfile(median=0.020, sigma=0.60, per_mib=0.010),
            "write": OperationProfile(median=0.045, sigma=0.85, per_mib=0.015),
            "batch_write": OperationProfile(median=0.045, sigma=0.85, per_item=0.030),
            "batch_read": OperationProfile(median=0.020, sigma=0.60, per_item=0.015),
            "delete": OperationProfile(median=0.025, sigma=0.60),
            "list": OperationProfile(median=0.060, sigma=0.50, per_item=0.0002),
        },
        seed=seed,
    )


def redis_latency_profile(seed: int | None = 0) -> LogNormalLatency:
    """Latency profile calibrated to the paper's ElastiCache (Redis) numbers.

    Redis is memory-speed: sub-millisecond point operations, with MSET cost
    growing mildly with the number of keys in the same shard.
    """
    return LogNormalLatency(
        {
            "read": OperationProfile(median=0.0008, sigma=0.30),
            "write": OperationProfile(median=0.0009, sigma=0.30),
            "batch_write": OperationProfile(median=0.0011, sigma=0.30, per_item=0.00015),
            "batch_read": OperationProfile(median=0.0010, sigma=0.30, per_item=0.0001),
            "delete": OperationProfile(median=0.0009, sigma=0.30),
            "list": OperationProfile(median=0.0020, sigma=0.30, per_item=0.00005),
        },
        seed=seed,
    )
