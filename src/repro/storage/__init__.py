"""Simulated cloud storage engines.

AFT only assumes that its storage backend makes updates durable once they are
acknowledged (paper Section 3.1); it never relies on the backend for
consistency.  This package provides in-memory stand-ins for the three
backends evaluated in the paper — DynamoDB, S3, and a Redis cluster — that
reproduce the *semantics* that matter to the shim and to the baselines:

* batching support (DynamoDB batch writes, Redis ``MSET`` within a shard),
* consistency (eventually consistent reads for DynamoDB/S3 overwrites,
  per-shard linearizability for Redis),
* native transactions (DynamoDB transact mode used as a baseline),
* and calibrated latency models used by the benchmark harness.
"""

from repro.storage.base import CostLedger, StorageEngine, StorageStats
from repro.storage.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    ZeroLatency,
    dynamodb_latency_profile,
    dynamodb_vm_latency_profile,
    redis_latency_profile,
    s3_latency_profile,
)
from repro.storage.latency_injected import LatencyInjectedStorage
from repro.storage.memory import InMemoryStorage
from repro.storage.dynamodb import SimulatedDynamoDB
from repro.storage.s3 import SimulatedS3
from repro.storage.rediscluster import SimulatedRedisCluster

__all__ = [
    "CostLedger",
    "StorageEngine",
    "StorageStats",
    "LatencyModel",
    "ZeroLatency",
    "ConstantLatency",
    "LogNormalLatency",
    "dynamodb_latency_profile",
    "dynamodb_vm_latency_profile",
    "s3_latency_profile",
    "redis_latency_profile",
    "InMemoryStorage",
    "LatencyInjectedStorage",
    "SimulatedDynamoDB",
    "SimulatedS3",
    "SimulatedRedisCluster",
]
