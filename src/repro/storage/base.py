"""Storage engine interface and latency metering.

The shim (``repro.core``) only talks to storage through the
:class:`StorageEngine` interface defined here.  The interface is deliberately
small — the paper's only requirement on the backend is that acknowledged
writes are durable — but rich enough to express the behaviours the evaluation
depends on: point reads/writes, optional batching, deletes for garbage
collection, and prefix listing for commit-set scans and node bootstrap.

Latency is *metered*, not slept: each operation samples a cost from the
engine's :class:`~repro.storage.latency.LatencyModel` and records it on the
currently attached :class:`CostLedger`.  The discrete-event simulator converts
accrued cost into simulated time; unit tests simply ignore it.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.clock import Clock, SystemClock
from repro.storage.latency import LatencyModel, ZeroLatency


@dataclass
class CostEntry:
    """One metered storage operation."""

    op: str
    n_items: int
    total_bytes: int
    latency: float


class CostLedger:
    """Accumulates the simulated latency of storage operations.

    A ledger is attached to an engine (via :meth:`StorageEngine.metered`)
    for the duration of one logical step — e.g. one AFT API call — and then
    inspected by the caller.  ``sequential_latency`` models a client that
    issues the operations one after another (the common case inside a single
    AFT call); ``parallel_latency`` models issuing them concurrently and
    waiting for the slowest.
    """

    def __init__(self) -> None:
        self.entries: list[CostEntry] = []

    def add(self, op: str, n_items: int, total_bytes: int, latency: float) -> None:
        self.entries.append(CostEntry(op=op, n_items=n_items, total_bytes=total_bytes, latency=latency))

    @property
    def sequential_latency(self) -> float:
        """Total latency assuming operations were issued back-to-back."""
        return sum(entry.latency for entry in self.entries)

    @property
    def parallel_latency(self) -> float:
        """Latency assuming all operations were issued concurrently."""
        return max((entry.latency for entry in self.entries), default=0.0)

    @property
    def operation_count(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    def merge(self, other: "CostLedger") -> None:
        """Append all entries from ``other``."""
        self.entries.extend(other.entries)


@dataclass
class StorageStats:
    """Aggregate operation counters maintained by every engine."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    lists: int = 0
    batch_writes: int = 0
    batch_reads: int = 0
    items_written: int = 0
    items_read: int = 0
    items_deleted: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the counters."""
        data = {
            "reads": self.reads,
            "writes": self.writes,
            "deletes": self.deletes,
            "lists": self.lists,
            "batch_writes": self.batch_writes,
            "batch_reads": self.batch_reads,
            "items_written": self.items_written,
            "items_read": self.items_read,
            "items_deleted": self.items_deleted,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
        }
        data.update(self.extra)
        return data


class StorageEngine(ABC):
    """Abstract durable key-value store.

    Values are opaque ``bytes``.  ``get`` returns ``None`` for missing keys
    (cloud object stores behave this way and the shim treats absence as an
    expected condition, e.g. when racing the garbage collector).
    """

    #: Human-readable engine name used in experiment reports.
    name: str = "abstract"
    #: Whether the engine can persist several keys in a single request.
    supports_batch_writes: bool = False
    #: Maximum number of items per batched request (None = unlimited).
    max_batch_size: int | None = None

    def __init__(self, latency_model: LatencyModel | None = None, clock: Clock | None = None) -> None:
        self.latency_model = latency_model if latency_model is not None else ZeroLatency()
        self.clock = clock if clock is not None else SystemClock()
        self.stats = StorageStats()
        self._ledger: CostLedger | None = None
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Latency metering
    # ------------------------------------------------------------------ #
    @contextmanager
    def metered(self, ledger: CostLedger) -> Iterator[CostLedger]:
        """Attach ``ledger`` for the duration of the ``with`` block.

        Nested attachments are not supported; the innermost ledger wins and is
        restored on exit.
        """
        previous = self._ledger
        self._ledger = ledger
        try:
            yield ledger
        finally:
            self._ledger = previous

    def _charge(self, op: str, n_items: int = 1, total_bytes: int = 0) -> float:
        """Sample a latency for ``op`` and record it on the attached ledger."""
        latency = self.latency_model.sample(op, n_items=n_items, total_bytes=total_bytes)
        if self._ledger is not None:
            self._ledger.add(op, n_items, total_bytes, latency)
        return latency

    # ------------------------------------------------------------------ #
    # Required data-plane operations
    # ------------------------------------------------------------------ #
    @abstractmethod
    def get(self, key: str) -> bytes | None:
        """Return the value stored under ``key`` or ``None`` if absent."""

    @abstractmethod
    def put(self, key: str, value: bytes) -> None:
        """Durably store ``value`` under ``key`` (overwriting any prior value)."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; deleting a missing key is a no-op."""

    @abstractmethod
    def list_keys(self, prefix: str = "") -> list[str]:
        """Return all keys starting with ``prefix`` in lexicographic order."""

    # ------------------------------------------------------------------ #
    # Batched operations (default implementations loop over point ops)
    # ------------------------------------------------------------------ #
    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        """Fetch several keys.  The default implementation issues point reads."""
        return {key: self.get(key) for key in keys}

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        """Store several keys.  The default implementation issues point writes."""
        for key, value in items.items():
            self.put(key, value)

    def multi_delete(self, keys: Iterable[str]) -> None:
        """Delete several keys.  The default implementation issues point deletes."""
        for key in keys:
            self.delete(key)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        """Return True if ``key`` currently has a value."""
        return self.get(key) is not None

    def size(self) -> int:
        """Number of keys currently stored (for tests and GC accounting)."""
        return len(self.list_keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} keys={self.size()}>"
