"""Storage engine interface and latency metering.

The shim (``repro.core``) only talks to storage through the
:class:`StorageEngine` interface defined here.  The interface is deliberately
small — the paper's only requirement on the backend is that acknowledged
writes are durable — but rich enough to express the behaviours the evaluation
depends on: point reads/writes, optional batching, deletes for garbage
collection, and prefix listing for commit-set scans and node bootstrap.

Latency is *metered*, not slept: each operation samples a cost from the
engine's :class:`~repro.storage.latency.LatencyModel` and records it on the
currently attached :class:`CostLedger`.  The discrete-event simulator converts
accrued cost into simulated time; unit tests simply ignore it.
"""

from __future__ import annotations

import asyncio
import contextvars
import itertools
import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

from repro import runtime
from repro.clock import Clock, SystemClock
from repro.observability import trace as tr
from repro.storage.latency import LatencyModel, ZeroLatency

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports storage)
    from repro.core.io_plan import IOPlan, IOStage, PlanResult

#: Process-wide unique ids for plan stages, so that entries merged from
#: different ledgers never collapse into one stage by accident.
_stage_ids = itertools.count(1)


@dataclass
class CostEntry:
    """One metered storage operation.

    ``stage`` groups entries that were issued concurrently as part of one
    :class:`~repro.core.io_plan.IOPlan` stage; ``None`` marks a plain
    sequential operation.
    """

    op: str
    n_items: int
    total_bytes: int
    latency: float
    stage: int | None = None


class CostLedger:
    """Accumulates the simulated latency of storage operations.

    A ledger is attached to an engine (via :meth:`StorageEngine.metered`)
    for the duration of one logical step — e.g. one AFT API call — and then
    inspected by the caller.  ``sequential_latency`` models a client that
    issues the operations one after another; ``parallel_latency`` models
    issuing them all concurrently and waiting for the slowest;
    ``pipelined_latency`` models the IO-plan pipeline: operations within one
    plan stage run concurrently, stages (and un-staged operations) run
    sequentially.
    """

    def __init__(self) -> None:
        self.entries: list[CostEntry] = []
        self._current_stage: int | None = None

    def add(self, op: str, n_items: int, total_bytes: int, latency: float) -> None:
        self.entries.append(
            CostEntry(
                op=op,
                n_items=n_items,
                total_bytes=total_bytes,
                latency=latency,
                stage=self._current_stage,
            )
        )

    @contextmanager
    def stage(self) -> Iterator[int]:
        """Tag every operation recorded inside the block as one parallel stage."""
        previous = self._current_stage
        stage_id = next(_stage_ids)
        self._current_stage = stage_id
        try:
            yield stage_id
        finally:
            self._current_stage = previous

    @property
    def sequential_latency(self) -> float:
        """Total latency assuming operations were issued back-to-back."""
        return sum(entry.latency for entry in self.entries)

    @property
    def parallel_latency(self) -> float:
        """Latency assuming all operations were issued concurrently."""
        return max((entry.latency for entry in self.entries), default=0.0)

    @property
    def pipelined_latency(self) -> float:
        """Latency under the IO pipeline: max within a stage, sum across stages.

        Entries without a stage tag (plain point operations) are charged
        sequentially, exactly as before the pipeline existed — so for a
        ledger with no staged entries this equals ``sequential_latency``.
        """
        total = 0.0
        stage_max: dict[int, float] = {}
        for entry in self.entries:
            if entry.stage is None:
                total += entry.latency
            else:
                stage_max[entry.stage] = max(stage_max.get(entry.stage, 0.0), entry.latency)
        return total + sum(stage_max.values())

    @property
    def plan_stage_count(self) -> int:
        """Number of distinct plan stages recorded on this ledger."""
        return len({entry.stage for entry in self.entries if entry.stage is not None})

    @property
    def operation_count(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    def merge(self, other: "CostLedger") -> None:
        """Append all entries from ``other`` (stage tags are preserved)."""
        self.entries.extend(other.entries)


@dataclass
class StorageStats:
    """Aggregate operation counters maintained by every engine."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    lists: int = 0
    batch_writes: int = 0
    batch_reads: int = 0
    items_written: int = 0
    items_read: int = 0
    items_deleted: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the counters."""
        data = {
            "reads": self.reads,
            "writes": self.writes,
            "deletes": self.deletes,
            "lists": self.lists,
            "batch_writes": self.batch_writes,
            "batch_reads": self.batch_reads,
            "items_written": self.items_written,
            "items_read": self.items_read,
            "items_deleted": self.items_deleted,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
        }
        data.update(self.extra)
        return data


@dataclass(frozen=True)
class StorageOp:
    """One storage operation in engine-neutral descriptor form.

    The unit of :meth:`StorageEngine.execute_group_async`: a request group
    (one batched or point request) described as data rather than as a bound
    thunk, so engines that talk to a *remote* storage service can ship a
    whole group of ops over the wire in one frame instead of one round trip
    per op.  ``op`` is one of ``get`` / ``multi_get`` / ``put`` /
    ``multi_put`` / ``multi_delete`` / ``list``; ``items`` carries the
    values for writes (keyed exactly by ``keys``); ``prefix`` is only
    meaningful for ``list``.
    """

    op: str
    keys: tuple[str, ...] = ()
    items: Mapping[str, bytes] | None = None
    prefix: str = ""


@dataclass
class StorageOpResult:
    """Outcome of one :class:`StorageOp` — values, a listing, or an error.

    Per-op errors travel as data so one failed op in a batch fails only its
    own waiter (e.g. a fenced commit-record write) instead of the whole
    group.
    """

    values: dict[str, bytes | None] | None = None
    keys: list[str] | None = None
    error: Exception | None = None


class StorageEngine(ABC):
    """Abstract durable key-value store.

    Values are opaque ``bytes``.  ``get`` returns ``None`` for missing keys
    (cloud object stores behave this way and the shim treats absence as an
    expected condition, e.g. when racing the garbage collector).
    """

    #: Human-readable engine name used in experiment reports.
    name: str = "abstract"
    #: Whether the engine can persist several keys in a single request.
    supports_batch_writes: bool = False
    #: Maximum number of items per batched request (None = unlimited).
    max_batch_size: int | None = None
    #: Whether the engine can fetch several keys in a single request.
    supports_batch_reads: bool = False
    #: Maximum number of items per batched read (None = unlimited).
    max_batch_get_size: int | None = None
    #: Whether the engine's operations block for *real* wall-clock time
    #: (network sockets, injected sleeps).  The simulated engines meter their
    #: latency instead of sleeping, so they leave this False and keep the
    #: deterministic sequential issue order; wall-clock engines opt into the
    #: concurrent fan-out of ``execute_plan`` / ``execute_plan_async``.
    wall_clock_io: bool = False
    #: Whether the engine's IO is natively non-blocking (its ``*_async``
    #: operation twins await real IO instead of wrapping the sync methods).
    #: ``execute_plan_async`` then fans request groups out as plain
    #: coroutines on the event loop — no ``run_in_executor`` hop, no
    #: executor-slot contention, no GIL hand-off per group — which is what
    #: lifts the >16-client swarm plateau.  Only meaningful together with
    #: ``wall_clock_io``; metered engines stay sequential either way.
    supports_native_async: bool = False
    #: Whether the engine executes a whole request *group* as one unit when
    #: handed a list of :class:`StorageOp` descriptors.  Remote engines remap
    #: the group onto a single ``storage_batch`` wire frame; for everything
    #: else the default :meth:`execute_group_async` is just a bounded gather
    #: over the ``*_async`` twins and this flag stays False.
    supports_storage_batches: bool = False
    #: Per-engine bound on concurrently issued request groups within one plan
    #: stage.  ``None`` falls back to the shared runtime default; nodes set it
    #: from :attr:`repro.config.AftConfig.io_concurrency`.
    io_concurrency: int | None = None

    def __init__(self, latency_model: LatencyModel | None = None, clock: Clock | None = None) -> None:
        self.latency_model = latency_model if latency_model is not None else ZeroLatency()
        self.clock = clock if clock is not None else SystemClock()
        self.stats = StorageStats()
        #: Ledger attachment is context-local (``contextvars``): concurrent
        #: committers each meter their own operations without cross-wiring
        #: each other's cost accounting.  A ContextVar rather than
        #: ``threading.local`` because the native-async plan path interleaves
        #: many request groups as coroutines *on one loop thread* — asyncio
        #: tasks copy the context at creation, so each group's ledger stays
        #: isolated; plain threads keep their per-thread contexts, preserving
        #: the old thread-local semantics exactly.
        self._ledger_slot: contextvars.ContextVar[CostLedger | None] = contextvars.ContextVar(
            f"repro-ledger-{id(self)}", default=None
        )
        self._lock = threading.RLock()

    @property
    def _ledger(self) -> CostLedger | None:
        return self._ledger_slot.get()

    @_ledger.setter
    def _ledger(self, ledger: CostLedger | None) -> None:
        self._ledger_slot.set(ledger)

    # ------------------------------------------------------------------ #
    # Latency metering
    # ------------------------------------------------------------------ #
    @contextmanager
    def metered(self, ledger: CostLedger) -> Iterator[CostLedger]:
        """Attach ``ledger`` to the calling thread for the ``with`` block.

        Nested attachments are not supported; the innermost ledger wins and is
        restored on exit.  Operations issued by other threads are unaffected.
        """
        previous = self._ledger
        self._ledger = ledger
        try:
            yield ledger
        finally:
            self._ledger = previous

    def _charge(self, op: str, n_items: int = 1, total_bytes: int = 0) -> float:
        """Sample a latency for ``op`` and record it on the attached ledger."""
        latency = self.latency_model.sample(op, n_items=n_items, total_bytes=total_bytes)
        if self._ledger is not None:
            self._ledger.add(op, n_items, total_bytes, latency)
        return latency

    # ------------------------------------------------------------------ #
    # Required data-plane operations
    # ------------------------------------------------------------------ #
    @abstractmethod
    def get(self, key: str) -> bytes | None:
        """Return the value stored under ``key`` or ``None`` if absent."""

    @abstractmethod
    def put(self, key: str, value: bytes) -> None:
        """Durably store ``value`` under ``key`` (overwriting any prior value)."""

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; deleting a missing key is a no-op."""

    @abstractmethod
    def list_keys(self, prefix: str = "") -> list[str]:
        """Return all keys starting with ``prefix`` in lexicographic order."""

    # ------------------------------------------------------------------ #
    # Batched operations (default implementations loop over point ops)
    # ------------------------------------------------------------------ #
    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        """Fetch several keys.  The default implementation issues point reads."""
        return {key: self.get(key) for key in keys}

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        """Store several keys.  The default implementation issues point writes."""
        for key, value in items.items():
            self.put(key, value)

    def multi_delete(self, keys: Iterable[str]) -> None:
        """Delete several keys.  The default implementation issues point deletes."""
        for key in keys:
            self.delete(key)

    # ------------------------------------------------------------------ #
    # Native-async operation twins
    # ------------------------------------------------------------------ #
    # Engines declaring ``supports_native_async`` override these with truly
    # non-blocking implementations (``asyncio.sleep``, async sockets); the
    # defaults delegate to the sync methods so the async plan path stays
    # correct — though not non-blocking — on any engine.
    async def get_async(self, key: str) -> bytes | None:
        return self.get(key)

    async def put_async(self, key: str, value: bytes) -> None:
        self.put(key, value)

    async def delete_async(self, key: str) -> None:
        self.delete(key)

    async def multi_get_async(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        return self.multi_get(keys)

    async def multi_put_async(self, items: Mapping[str, bytes]) -> None:
        self.multi_put(items)

    async def multi_delete_async(self, keys: Iterable[str]) -> None:
        self.multi_delete(keys)

    # ------------------------------------------------------------------ #
    # Storage-op groups (descriptor form of a plan stage)
    # ------------------------------------------------------------------ #
    async def execute_group_async(self, ops: list[StorageOp]) -> list[StorageOpResult]:
        """Execute a group of ops, returning one result per op, in order.

        Exceptions are captured per op (never raised) so callers can fail
        exactly the waiter whose op failed.  The default implementation is a
        semaphore-bounded gather over the ``*_async`` twins; engines with
        ``supports_storage_batches`` override it to execute the whole group
        as a single request.
        """
        if len(ops) == 1:
            return [await self._apply_op_async(ops[0])]
        limit = asyncio.Semaphore(self.effective_io_concurrency)

        async def run_one(op: StorageOp) -> StorageOpResult:
            async with limit:
                return await self._apply_op_async(op)

        return list(await asyncio.gather(*(run_one(op) for op in ops)))

    async def _apply_op_async(self, op: StorageOp) -> StorageOpResult:
        """Apply one descriptor via the ``*_async`` twins, capturing errors."""
        try:
            if op.op == "get":
                key = op.keys[0]
                return StorageOpResult(values={key: await self.get_async(key)})
            if op.op == "multi_get":
                return StorageOpResult(values=dict(await self.multi_get_async(list(op.keys))))
            if op.op == "put":
                key = op.keys[0]
                await self.put_async(key, (op.items or {})[key])
                return StorageOpResult()
            if op.op == "multi_put":
                await self.multi_put_async(op.items or {})
                return StorageOpResult()
            if op.op == "multi_delete":
                await self.multi_delete_async(list(op.keys))
                return StorageOpResult()
            if op.op == "list":
                lister = getattr(self, "list_keys_async", None)
                if lister is not None:
                    return StorageOpResult(keys=list(await lister(op.prefix)))
                return StorageOpResult(keys=self.list_keys(op.prefix))
            raise ValueError(f"unknown storage op {op.op!r}")
        except Exception as exc:
            return StorageOpResult(error=exc)

    def _stage_ops(self, stage: "IOStage") -> list[StorageOp]:
        """Descriptor form of :meth:`_stage_groups`: one ``StorageOp`` per group."""
        ops: list[StorageOp] = []
        for group in self._plan_put_groups(stage.puts):
            keys = tuple(group)
            ops.append(
                StorageOp(op="multi_put" if len(keys) > 1 else "put", keys=keys, items=dict(group))
            )
        for key_group in self._plan_get_groups(stage.gets):
            ops.append(
                StorageOp(
                    op="multi_get" if len(key_group) > 1 else "get", keys=tuple(key_group)
                )
            )
        if stage.deletes:
            ops.append(StorageOp(op="multi_delete", keys=tuple(stage.deletes)))
        return ops

    async def _execute_stage_batched(
        self, stage: "IOStage", stage_id: int
    ) -> list[tuple[dict[str, bytes | None] | None, CostLedger]]:
        """Run one plan stage through :meth:`execute_group_async`.

        The whole stage travels as one op group (for a remote engine: one
        wire frame), so the stage barrier is still a barrier — the next
        stage's ops are only built after every result of this one returned.
        """
        ledger = CostLedger()
        ledger._current_stage = stage_id
        ops = self._stage_ops(stage)
        if not ops:
            return []
        with self.metered(ledger):
            results = await self.execute_group_async(ops)
        values: dict[str, bytes | None] = {}
        for op_result in results:
            if op_result.error is not None:
                raise op_result.error
            if op_result.values:
                values.update(op_result.values)
        return [(values or None, ledger)]

    # ------------------------------------------------------------------ #
    # IO-plan execution (the batched parallel-IO pipeline)
    # ------------------------------------------------------------------ #
    @property
    def effective_io_concurrency(self) -> int:
        """Per-stage request-group concurrency bound actually in effect."""
        if self.io_concurrency is not None:
            return max(1, self.io_concurrency)
        return runtime.io_executor_size()

    def execute_plan(self, plan: "IOPlan") -> "PlanResult":
        """Execute an :class:`~repro.core.io_plan.IOPlan` against this engine.

        Each stage's operations are partitioned into *request groups* by the
        engine's capability hooks (:meth:`_plan_put_groups` /
        :meth:`_plan_get_groups`): a group is one storage request.  How a
        stage's groups are *issued* depends on the engine:

        * Engines with ``wall_clock_io`` (real backends, the latency-injected
          wrapper) dispatch the groups onto the process-wide bounded executor
          (:mod:`repro.runtime`) so blocking requests genuinely overlap, at
          most :attr:`effective_io_concurrency` in flight at once.  This is
          the sync facade over the same fan-out ``execute_plan_async`` drives
          with ``asyncio.gather``.
        * Metered engines (the simulated backends) issue the groups
          sequentially on the calling thread.  Their latency is sampled from
          seeded models, not slept, so threads would buy nothing and would
          scramble the deterministic sampling order the experiment medians
          depend on.  The *charged* concurrency is identical either way:
          every operation lands on the attached :class:`CostLedger` tagged
          with its stage, and ``ledger.pipelined_latency`` charges the max
          latency within a stage plus the sum across stages.

        Stages remain barriers in both modes — no group of stage ``i+1`` is
        issued until every group of stage ``i`` completed — which is how the
        commit plan preserves the paper's data-before-commit-record write
        ordering (Section 3.3).
        """
        from repro.core.io_plan import PlanResult

        outer = self._ledger
        inner = CostLedger()
        result = PlanResult()
        # One span per plan (not per stage): stage names ride along as an
        # attribute so IO-plan structure stays visible in traces without
        # paying span cost per barrier on the hot path.
        with tr.span(
            "io.plan",
            stages=",".join(s.name for s in plan.stages),
            n_ops=plan.operation_count,
        ):
            for stage in plan.stages:
                stage_id = next(_stage_ids)
                groups = self._stage_groups(stage)
                if len(groups) > 1 and self.wall_clock_io:
                    outcomes = runtime.run_blocking_group(
                        [lambda g=group: self._run_group(g, stage_id) for group in groups],
                        concurrency=self.effective_io_concurrency,
                    )
                else:
                    outcomes = [self._run_group(group, stage_id) for group in groups]
                self._collect_stage(outcomes, inner, result)
        if outer is not None:
            outer.merge(inner)
        self._record_plan_stats(plan)
        return result

    async def execute_plan_async(self, plan: "IOPlan") -> "PlanResult":
        """Asynchronously execute an :class:`~repro.core.io_plan.IOPlan`.

        The async core of the IO pipeline: each stage's request groups are
        fanned out with ``asyncio.gather``, every group running as one
        blocking call on the shared bounded executor.  Stages remain
        barriers — the gather of stage ``i`` is awaited before stage ``i+1``
        issues — so the commit plan's data-before-commit-record ordering
        holds exactly as in the sync path, and a caller cancelled mid-stage
        never gets a later stage issued on its behalf.

        Metered (non-``wall_clock_io``) engines run their groups inline on
        the event loop instead: their operations return immediately and the
        sequential issue order keeps the seeded latency sampling — and hence
        the sync/async parity of values, stage latencies, and stats —
        deterministic.

        Engines that additionally declare ``supports_native_async`` skip the
        executor entirely: each request group runs as a coroutine over the
        engine's ``*_async`` operation twins, bounded by the same
        per-stage concurrency semaphore.  No thread hop per group means the
        fan-out is limited by the event loop, not by executor slots.
        """
        from repro.core.io_plan import PlanResult

        outer = self._ledger
        inner = CostLedger()
        result = PlanResult()
        try:
            # One span per plan, mirroring the sync path: stage names become
            # an attribute instead of per-stage spans on the hot path.
            with tr.span(
                "io.plan",
                stages=",".join(s.name for s in plan.stages),
                n_ops=plan.operation_count,
            ):
                for stage in plan.stages:
                    stage_id = next(_stage_ids)
                    if self.supports_storage_batches:
                        outcomes = await self._execute_stage_batched(stage, stage_id)
                        self._collect_stage(outcomes, inner, result)
                        continue
                    if self.wall_clock_io and self.supports_native_async:
                        outcomes = await self._gather_groups_native(
                            self._stage_groups_async(stage), stage_id
                        )
                        self._collect_stage(outcomes, inner, result)
                        continue
                    groups = self._stage_groups(stage)
                    if len(groups) > 1 and self.wall_clock_io:
                        outcomes = await self._gather_groups(groups, stage_id)
                    elif groups and self.wall_clock_io:
                        loop = asyncio.get_running_loop()
                        outcomes = [
                            await loop.run_in_executor(
                                runtime.io_executor(),
                                runtime.marked(
                                    lambda g=groups[0]: self._run_group(g, stage_id)
                                ),
                            )
                        ]
                    else:
                        outcomes = [self._run_group(group, stage_id) for group in groups]
                    self._collect_stage(outcomes, inner, result)
        finally:
            # Surface the charges of completed groups even when cancelled
            # mid-plan, so callers can still account for the work that ran.
            if outer is not None:
                outer.merge(inner)
        self._record_plan_stats(plan)
        return result

    async def _gather_groups(
        self, groups: list[Callable[[], dict[str, bytes | None] | None]], stage_id: int
    ) -> list[tuple[dict[str, bytes | None] | None, CostLedger]]:
        """Fan one stage's groups out on the executor, bounded by a semaphore."""
        loop = asyncio.get_running_loop()
        limit = asyncio.Semaphore(self.effective_io_concurrency)

        async def run_one(group: Callable[[], dict[str, bytes | None] | None]):
            async with limit:
                return await loop.run_in_executor(
                    runtime.io_executor(),
                    runtime.marked(lambda: self._run_group(group, stage_id)),
                )

        return list(await asyncio.gather(*(run_one(group) for group in groups)))

    async def _gather_groups_native(self, thunks, stage_id: int):
        """Fan one stage's groups out as coroutines on the loop (no executor).

        ``asyncio.gather`` wraps each coroutine in a task, and tasks copy the
        current context at creation — so each group's ``metered`` attachment
        (a ContextVar) is isolated per group even though they all interleave
        on one thread.
        """
        limit = asyncio.Semaphore(self.effective_io_concurrency)

        async def run_one(thunk):
            async with limit:
                ledger = CostLedger()
                ledger._current_stage = stage_id
                with self.metered(ledger):
                    values = await thunk()
                return values, ledger

        return list(await asyncio.gather(*(run_one(thunk) for thunk in thunks)))

    def _stage_groups_async(self, stage: "IOStage"):
        """Async twin of :meth:`_stage_groups`: coroutine thunks per request group."""
        thunks = []
        for group in self._plan_put_groups(stage.puts):
            thunks.append(lambda g=group: self._execute_put_group_async(g))
        for key_group in self._plan_get_groups(stage.gets):
            thunks.append(lambda ks=key_group: self._execute_get_group_async(ks))
        deletes = stage.deletes
        if deletes:
            thunks.append(lambda ks=deletes: self.multi_delete_async(ks))
        return thunks

    async def _execute_put_group_async(self, group: Mapping[str, bytes]) -> None:
        if len(group) > 1:
            await self.multi_put_async(group)
        else:
            for key, value in group.items():
                await self.put_async(key, value)

    async def _execute_get_group_async(self, keys: list[str]) -> dict[str, bytes | None]:
        if len(keys) > 1:
            return await self.multi_get_async(keys)
        return {keys[0]: await self.get_async(keys[0])}

    def _stage_groups(
        self, stage: "IOStage"
    ) -> list[Callable[[], dict[str, bytes | None] | None]]:
        """Partition one stage into request-group thunks (one storage request each)."""
        thunks: list[Callable[[], dict[str, bytes | None] | None]] = []
        for group in self._plan_put_groups(stage.puts):
            thunks.append(lambda g=group: self._execute_put_group(g))
        for key_group in self._plan_get_groups(stage.gets):
            thunks.append(lambda ks=key_group: self._execute_get_group(ks))
        deletes = stage.deletes
        if deletes:
            thunks.append(lambda ks=deletes: self._execute_delete_group(ks))
        return thunks

    def _run_group(
        self, thunk: Callable[[], dict[str, bytes | None] | None], stage_id: int
    ) -> tuple[dict[str, bytes | None] | None, CostLedger]:
        """Issue one request group under its own stage-tagged ledger.

        The per-group ledger makes the charge accounting thread-agnostic:
        whichever thread runs the group, its operations land on a private
        ledger (ledger attachment is thread-local) that the plan executor
        merges back in group order — so the merged entry sequence is
        identical to the old single-ledger sequential loop.
        """
        ledger = CostLedger()
        ledger._current_stage = stage_id
        with self.metered(ledger):
            values = thunk()
        return values, ledger

    def _collect_stage(
        self,
        outcomes: list[tuple[dict[str, bytes | None] | None, CostLedger]],
        inner: CostLedger,
        result: "PlanResult",
    ) -> None:
        """Merge one stage's group outcomes into the plan ledger and result."""
        stage_latency = 0.0
        stage_requests = 0
        for values, ledger in outcomes:
            if values:
                result.values.update(values)
            inner.merge(ledger)
            stage_requests += len(ledger.entries)
            stage_latency = max(
                stage_latency, max((entry.latency for entry in ledger.entries), default=0.0)
            )
        result.stage_latencies.append(stage_latency)
        result.requests_issued += stage_requests

    def _record_plan_stats(self, plan: "IOPlan") -> None:
        with self._lock:
            self.stats.extra["plans_executed"] = self.stats.extra.get("plans_executed", 0) + 1
            self.stats.extra["plan_stages"] = self.stats.extra.get("plan_stages", 0) + len(
                plan.stages
            )

    def _plan_put_groups(self, items: Mapping[str, bytes]) -> list[dict[str, bytes]]:
        """Partition a stage's puts into concurrent requests.

        Engines with native batching produce ``max_batch_size``-item chunks;
        everything else falls back to one request per key (the fan-out the
        paper describes for S3's per-object PUTs).
        """
        if not items:
            return []
        if self.supports_batch_writes:
            limit = self.max_batch_size or len(items)
            pairs = list(items.items())
            return [dict(pairs[start : start + limit]) for start in range(0, len(pairs), limit)]
        return [{key: value} for key, value in items.items()]

    def _execute_put_group(self, group: Mapping[str, bytes]) -> None:
        """Issue one put request (a native batch, or a point write)."""
        if len(group) > 1:
            self.multi_put(group)
        else:
            for key, value in group.items():
                self.put(key, value)

    def _plan_get_groups(self, keys: list[str]) -> list[list[str]]:
        """Partition a stage's gets into concurrent requests."""
        if not keys:
            return []
        if self.supports_batch_reads:
            limit = self.max_batch_get_size or len(keys)
            return [keys[start : start + limit] for start in range(0, len(keys), limit)]
        return [[key] for key in keys]

    def _execute_get_group(self, keys: list[str]) -> dict[str, bytes | None]:
        """Issue one get request (a native batch, or a point read)."""
        if len(keys) > 1:
            return self.multi_get(keys)
        return {keys[0]: self.get(keys[0])}

    def _execute_delete_group(self, keys: list[str]) -> None:
        """Issue one delete request covering a stage's deletes."""
        self.multi_delete(keys)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        """Return True if ``key`` currently has a value."""
        return self.get(key) is not None

    def size(self) -> int:
        """Number of keys currently stored (for tests and GC accounting)."""
        return len(self.list_keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} keys={self.size()}>"
