"""A wall-clock latency injector over any storage engine.

The simulated engines *meter* latency (sample a cost, charge a ledger, return
immediately), which is what the discrete-event benchmarks need — but it means
no reproduction code path ever experiences real concurrency.
:class:`LatencyInjectedStorage` is the inverse: it wraps an inner engine
(typically :class:`~repro.storage.memory.InMemoryStorage`) and really
``time.sleep``\\ s a sampled latency before every operation, while charging
**zero** metered cost.  Wall-clock behaviour of a remote backend, none of the
simulated-time accounting — exactly what the async-IO benchmark needs to
measure genuine txn/s scaling (``bench_ablation_async_io``).

The wrapper declares ``wall_clock_io``, so ``execute_plan`` /
``execute_plan_async`` fan its request groups out on the shared bounded
executor instead of issuing them sequentially.  The injected sleep happens
*outside* the wrapper's lock; the inner engine's (instant) operation and the
stats counters are updated under it, so counters stay exact even under heavy
fan-out.
"""

from __future__ import annotations

import asyncio
import time
from typing import Iterable, Mapping

from repro.clock import Clock
from repro.storage.base import StorageEngine
from repro.storage.latency import ConstantLatency, LatencyModel, ZeroLatency


class LatencyInjectedStorage(StorageEngine):
    """Delegate to an inner engine after sleeping a sampled real latency.

    Parameters
    ----------
    inner:
        The engine that actually stores the data.  Its batching capabilities
        are mirrored so IO plans partition into the same request groups they
        would against the inner engine directly.
    injected:
        Latency model whose samples are *slept*, not charged.  Defaults to a
        constant 1 ms per operation.
    charged:
        Latency model whose samples are *charged* to the attached ledger
        (the usual metering).  Defaults to :class:`ZeroLatency` — the whole
        point of the wrapper is that its cost shows up on the wall clock.
    native_async:
        Declare ``supports_native_async``: the injected delay of the
        ``*_async`` operation twins becomes an ``asyncio.sleep`` awaited on
        the event loop, so ``execute_plan_async`` fans request groups out as
        plain coroutines instead of executor hops.  This models a real
        async-socket backend and is what the ``bench_ablation_async_io``
        native-path ablation toggles.
    """

    name = "latency-injected"
    wall_clock_io = True

    def __init__(
        self,
        inner: StorageEngine,
        injected: LatencyModel | None = None,
        charged: LatencyModel | None = None,
        clock: Clock | None = None,
        native_async: bool = False,
    ) -> None:
        super().__init__(
            latency_model=charged if charged is not None else ZeroLatency(), clock=clock
        )
        self.inner = inner
        self.injected = injected if injected is not None else ConstantLatency(0.001)
        self.supports_native_async = bool(native_async)
        self.supports_batch_writes = inner.supports_batch_writes
        self.max_batch_size = inner.max_batch_size
        self.supports_batch_reads = inner.supports_batch_reads
        self.max_batch_get_size = inner.max_batch_get_size

    # ------------------------------------------------------------------ #
    def _sleep(self, op: str, n_items: int = 1, total_bytes: int = 0) -> None:
        delay = self.injected.sample(op, n_items=n_items, total_bytes=total_bytes)
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        self._sleep("read")
        with self._lock:
            value = self.inner.get(key)
            self.stats.reads += 1
            if value is not None:
                self.stats.items_read += 1
                self.stats.bytes_read += len(value)
        self._charge("read", total_bytes=len(value) if value else 0)
        return value

    def put(self, key: str, value: bytes) -> None:
        self._sleep("write", total_bytes=len(value))
        with self._lock:
            self.inner.put(key, value)
            self.stats.writes += 1
            self.stats.items_written += 1
            self.stats.bytes_written += len(value)
        self._charge("write", total_bytes=len(value))

    def delete(self, key: str) -> None:
        self._sleep("delete")
        with self._lock:
            self.inner.delete(key)
            self.stats.deletes += 1
            self.stats.items_deleted += 1
        self._charge("delete")

    def list_keys(self, prefix: str = "") -> list[str]:
        self._sleep("list")
        with self._lock:
            keys = self.inner.list_keys(prefix)
            self.stats.lists += 1
        self._charge("list", n_items=max(1, len(keys)))
        return keys

    # ------------------------------------------------------------------ #
    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        keys = list(keys)
        self._sleep("batch_read", n_items=max(1, len(keys)))
        with self._lock:
            result = self.inner.multi_get(keys)
            total = sum(len(v) for v in result.values() if v is not None)
            self.stats.batch_reads += 1
            self.stats.items_read += sum(1 for v in result.values() if v is not None)
            self.stats.bytes_read += total
        self._charge("batch_read", n_items=max(1, len(keys)), total_bytes=total)
        return result

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        total = sum(len(v) for v in items.values())
        self._sleep("batch_write", n_items=max(1, len(items)), total_bytes=total)
        with self._lock:
            self.inner.multi_put(items)
            self.stats.batch_writes += 1
            self.stats.items_written += len(items)
            self.stats.bytes_written += total
        self._charge("batch_write", n_items=max(1, len(items)), total_bytes=total)

    def multi_delete(self, keys: Iterable[str]) -> None:
        keys = list(keys)
        self._sleep("batch_write", n_items=max(1, len(keys)))
        with self._lock:
            self.inner.multi_delete(keys)
            self.stats.deletes += 1
            self.stats.items_deleted += len(keys)
        self._charge("batch_write", n_items=max(1, len(keys)))

    # ------------------------------------------------------------------ #
    # Native-async twins: the injected delay is awaited, not slept, so the
    # event loop interleaves many in-flight operations on one thread.  The
    # inner (instant) operation and the counters still update under the lock.
    # ------------------------------------------------------------------ #
    async def _sleep_async(self, op: str, n_items: int = 1, total_bytes: int = 0) -> None:
        delay = self.injected.sample(op, n_items=n_items, total_bytes=total_bytes)
        if delay > 0:
            await asyncio.sleep(delay)

    async def get_async(self, key: str) -> bytes | None:
        await self._sleep_async("read")
        with self._lock:
            value = self.inner.get(key)
            self.stats.reads += 1
            if value is not None:
                self.stats.items_read += 1
                self.stats.bytes_read += len(value)
        self._charge("read", total_bytes=len(value) if value else 0)
        return value

    async def put_async(self, key: str, value: bytes) -> None:
        await self._sleep_async("write", total_bytes=len(value))
        with self._lock:
            self.inner.put(key, value)
            self.stats.writes += 1
            self.stats.items_written += 1
            self.stats.bytes_written += len(value)
        self._charge("write", total_bytes=len(value))

    async def delete_async(self, key: str) -> None:
        await self._sleep_async("delete")
        with self._lock:
            self.inner.delete(key)
            self.stats.deletes += 1
            self.stats.items_deleted += 1
        self._charge("delete")

    async def multi_get_async(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        keys = list(keys)
        await self._sleep_async("batch_read", n_items=max(1, len(keys)))
        with self._lock:
            result = self.inner.multi_get(keys)
            total = sum(len(v) for v in result.values() if v is not None)
            self.stats.batch_reads += 1
            self.stats.items_read += sum(1 for v in result.values() if v is not None)
            self.stats.bytes_read += total
        self._charge("batch_read", n_items=max(1, len(keys)), total_bytes=total)
        return result

    async def multi_put_async(self, items: Mapping[str, bytes]) -> None:
        total = sum(len(v) for v in items.values())
        await self._sleep_async("batch_write", n_items=max(1, len(items)), total_bytes=total)
        with self._lock:
            self.inner.multi_put(items)
            self.stats.batch_writes += 1
            self.stats.items_written += len(items)
            self.stats.bytes_written += total
        self._charge("batch_write", n_items=max(1, len(items)), total_bytes=total)

    async def multi_delete_async(self, keys: Iterable[str]) -> None:
        keys = list(keys)
        await self._sleep_async("batch_write", n_items=max(1, len(keys)))
        with self._lock:
            self.inner.multi_delete(keys)
            self.stats.deletes += 1
            self.stats.items_deleted += len(keys)
        self._charge("batch_write", n_items=max(1, len(keys)))

    # ------------------------------------------------------------------ #
    def size(self) -> int:
        return self.inner.size()
