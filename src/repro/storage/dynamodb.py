"""A simulated DynamoDB table.

The behaviours that matter to the paper's evaluation are reproduced here:

* **Point reads and writes** with millisecond-scale latencies.
* **Batched writes** (``BatchWriteItem``) of up to 25 items per request —
  AFT's commit protocol leans on this to turn N sequential client writes into
  a single storage round trip (Figure 2).
* **Eventually consistent reads**: by default DynamoDB reads may return a
  stale value for a recently overwritten item.  The simulation keeps a short
  version history per key and makes an overwrite visible to eventually
  consistent readers only after a sampled *inconsistency window*.  This is the
  mechanism behind the read-your-write anomalies of the "plain DynamoDB"
  baseline in Table 2.
* **Transact mode** (``TransactWriteItems`` / ``TransactGetItems``): single
  request, all-or-nothing, conflict-abort semantics, used by the
  ``repro.baselines.dynamo_txn`` baseline.  Conflicts are detected through an
  item-level lock table whose entries are held for the duration of a
  transaction window (the discrete-event clients hold them across simulated
  time, so contention produces aborts just as it does against the real
  service).
* **Throughput limits**: an optional provisioned-capacity ceiling used by the
  scalability experiment (Figure 8 plateaus at DynamoDB's resource limits).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.clock import Clock
from repro.errors import BatchTooLargeError, TransactionConflictError
from repro.storage.base import StorageEngine
from repro.storage.latency import LatencyModel


@dataclass
class _Version:
    """One stored value together with the time it becomes globally visible."""

    value: bytes
    written_at: float
    visible_at: float


class SimulatedDynamoDB(StorageEngine):
    """In-memory model of a DynamoDB table."""

    name = "dynamodb"
    supports_batch_writes = True
    #: DynamoDB's BatchWriteItem limit.
    max_batch_size = 25
    #: DynamoDB's TransactWriteItems limit.
    max_transact_size = 25
    supports_batch_reads = True
    #: DynamoDB's BatchGetItem limit.
    max_batch_get_size = 100

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        clock: Clock | None = None,
        consistent_reads: bool = False,
        inconsistency_window: float = 0.05,
        history_limit: int = 8,
        seed: int | None = 0,
    ) -> None:
        super().__init__(latency_model=latency_model, clock=clock)
        self._versions: dict[str, list[_Version]] = {}
        #: Item-level claims held by in-flight native transactions:
        #: key -> {token: mode}, where mode is "read" or "write".
        self._transact_locks: dict[str, dict[str, str]] = {}
        self.consistent_reads = consistent_reads
        self.inconsistency_window = float(inconsistency_window)
        self.history_limit = int(history_limit)
        self._rng = random.Random(seed)
        self.stats.extra["transacts"] = 0
        self.stats.extra["transact_conflicts"] = 0

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return self.clock.now()

    def _sample_visibility_delay(self) -> float:
        if self.inconsistency_window <= 0:
            return 0.0
        # Most overwrites converge quickly; a minority take the full window.
        return self._rng.uniform(0.0, self.inconsistency_window)

    def _store(self, key: str, value: bytes, now: float) -> None:
        history = self._versions.setdefault(key, [])
        if history:
            visible_at = now + self._sample_visibility_delay()
        else:
            # First write of a key is read-after-write consistent, matching
            # the behaviour of real cloud stores for new items.  AFT never
            # overwrites keys, so the shim always sees its data immediately.
            visible_at = now
        history.append(_Version(value=bytes(value), written_at=now, visible_at=visible_at))
        if len(history) > self.history_limit:
            del history[: len(history) - self.history_limit]

    def _read(self, key: str, consistent: bool, now: float) -> bytes | None:
        history = self._versions.get(key)
        if not history:
            return None
        if consistent:
            return history[-1].value
        visible = [version for version in history if version.visible_at <= now]
        if visible:
            return visible[-1].value
        # Nothing has converged yet; eventually-consistent readers observe the
        # oldest retained version (the pre-overwrite value).
        return history[0].value

    # ------------------------------------------------------------------ #
    # StorageEngine interface
    # ------------------------------------------------------------------ #
    def get(self, key: str, consistent: bool | None = None) -> bytes | None:
        consistent = self.consistent_reads if consistent is None else consistent
        now = self._now()
        with self._lock:
            value = self._read(key, consistent, now)
        self.stats.reads += 1
        if value is not None:
            self.stats.items_read += 1
            self.stats.bytes_read += len(value)
        self._charge("read", total_bytes=len(value) if value else 0)
        return value

    def put(self, key: str, value: bytes) -> None:
        now = self._now()
        with self._lock:
            self._check_not_locked([key], owner=None)
            self._store(key, value, now)
        self.stats.writes += 1
        self.stats.items_written += 1
        self.stats.bytes_written += len(value)
        self._charge("write", total_bytes=len(value))

    def delete(self, key: str) -> None:
        with self._lock:
            existed = self._versions.pop(key, None) is not None
        self.stats.deletes += 1
        if existed:
            self.stats.items_deleted += 1
        self._charge("delete")

    def list_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            keys = sorted(k for k in self._versions if k.startswith(prefix))
        self.stats.lists += 1
        self._charge("list", n_items=max(1, len(keys)))
        return keys

    def multi_get(self, keys: Iterable[str], consistent: bool | None = None) -> dict[str, bytes | None]:
        keys = list(keys)
        if len(keys) > self.max_batch_get_size:
            raise BatchTooLargeError(
                f"BatchGetItem of {len(keys)} items exceeds the {self.max_batch_get_size}-item limit"
            )
        consistent = self.consistent_reads if consistent is None else consistent
        now = self._now()
        with self._lock:
            result = {key: self._read(key, consistent, now) for key in keys}
        total = sum(len(v) for v in result.values() if v is not None)
        self.stats.batch_reads += 1
        self.stats.items_read += sum(1 for v in result.values() if v is not None)
        self.stats.bytes_read += total
        self._charge("batch_read", n_items=max(1, len(keys)), total_bytes=total)
        return result

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        if len(items) > self.max_batch_size:
            raise BatchTooLargeError(
                f"BatchWriteItem of {len(items)} items exceeds the {self.max_batch_size}-item limit"
            )
        now = self._now()
        with self._lock:
            self._check_not_locked(items.keys(), owner=None)
            for key, value in items.items():
                self._store(key, value, now)
        total = sum(len(v) for v in items.values())
        self.stats.batch_writes += 1
        self.stats.items_written += len(items)
        self.stats.bytes_written += total
        self._charge("batch_write", n_items=max(1, len(items)), total_bytes=total)

    def multi_delete(self, keys: Iterable[str]) -> None:
        keys = list(keys)
        with self._lock:
            for key in keys:
                if self._versions.pop(key, None) is not None:
                    self.stats.items_deleted += 1
        self.stats.deletes += 1
        self._charge("batch_write", n_items=max(1, len(keys)))

    def size(self) -> int:
        with self._lock:
            return len(self._versions)

    # ------------------------------------------------------------------ #
    # Transact mode (used by the DynamoDB-transactions baseline)
    # ------------------------------------------------------------------ #
    def _check_not_locked(self, keys: Iterable[str], owner: str | None, mode: str = "write") -> None:
        """Raise if any key is claimed in a way that conflicts with ``mode``.

        Two concurrent transactional *reads* of the same item do not conflict;
        any combination involving a transactional write does (this mirrors the
        service's documented conflict behaviour).
        """
        for key in keys:
            holders = self._transact_locks.get(key)
            if not holders:
                continue
            for holder_token, holder_mode in holders.items():
                if holder_token == owner:
                    continue
                if mode == "read" and holder_mode == "read":
                    continue
                self.stats.extra["transact_conflicts"] += 1
                raise TransactionConflictError(
                    f"item {key!r} is part of a conflicting in-flight transaction"
                )

    def transact_begin(self, keys: Iterable[str], token: str, mode: str = "write") -> None:
        """Claim item-level locks for a native transaction window.

        The discrete-event clients call this at the simulated start of a
        ``TransactWriteItems``/``TransactGetItems`` request and release with
        :meth:`transact_end` at its simulated completion, so that overlapping
        requests touching the same items conflict (as the real service's
        optimistic concurrency control would).
        """
        if mode not in ("read", "write"):
            raise ValueError(f"transaction mode must be 'read' or 'write', got {mode!r}")
        keys = list(keys)
        if len(keys) > self.max_transact_size:
            raise BatchTooLargeError(
                f"transaction of {len(keys)} items exceeds the {self.max_transact_size}-item limit"
            )
        with self._lock:
            self._check_not_locked(keys, owner=token, mode=mode)
            for key in keys:
                self._transact_locks.setdefault(key, {})[token] = mode

    def transact_end(self, token: str) -> None:
        """Release all locks held by ``token``."""
        with self._lock:
            empty_keys = []
            for key, holders in self._transact_locks.items():
                holders.pop(token, None)
                if not holders:
                    empty_keys.append(key)
            for key in empty_keys:
                del self._transact_locks[key]

    def transact_write_items(self, items: Mapping[str, bytes], token: str | None = None) -> None:
        """All-or-nothing write of up to 25 items, conflict-checked."""
        items = dict(items)
        if len(items) > self.max_transact_size:
            raise BatchTooLargeError(
                f"TransactWriteItems of {len(items)} items exceeds the {self.max_transact_size}-item limit"
            )
        now = self._now()
        with self._lock:
            self._check_not_locked(items.keys(), owner=token)
            for key, value in items.items():
                # Transactional writes are strongly consistent: visible at once.
                history = self._versions.setdefault(key, [])
                history.append(_Version(value=bytes(value), written_at=now, visible_at=now))
                if len(history) > self.history_limit:
                    del history[: len(history) - self.history_limit]
            self.stats.extra["transacts"] += 1
        total = sum(len(v) for v in items.values())
        self.stats.items_written += len(items)
        self.stats.bytes_written += total
        self._charge("transact", n_items=max(1, len(items)), total_bytes=total)

    def transact_get_items(self, keys: Iterable[str], token: str | None = None) -> dict[str, bytes | None]:
        """All-or-nothing, strongly consistent read of up to 25 items."""
        keys = list(keys)
        if len(keys) > self.max_transact_size:
            raise BatchTooLargeError(
                f"TransactGetItems of {len(keys)} items exceeds the {self.max_transact_size}-item limit"
            )
        now = self._now()
        with self._lock:
            self._check_not_locked(keys, owner=token, mode="read")
            result = {key: self._read(key, True, now) for key in keys}
            self.stats.extra["transacts"] += 1
        total = sum(len(v) for v in result.values() if v is not None)
        self.stats.items_read += sum(1 for v in result.values() if v is not None)
        self.stats.bytes_read += total
        self._charge("transact", n_items=max(1, len(keys)), total_bytes=total)
        return result
