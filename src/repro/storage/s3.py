"""A simulated S3 bucket.

S3 is a throughput-oriented object store.  The properties that shape the
paper's results are modelled:

* **No batching**: every object write is its own request, so AFT's
  key-per-version layout issues one PUT per key version plus one PUT for the
  commit record (the paper notes this layout is a poor fit for S3, Section 8).
* **High, variable small-object latency**: captured by the calibrated latency
  profile in :mod:`repro.storage.latency`.
* **Eventual consistency for overwrites**: at the time of the paper, S3
  offered read-after-write consistency for new objects but only eventual
  consistency for overwrites — the source of the plain-S3 anomalies in
  Table 2.  (New-object reads are consistent, which is all AFT needs, since
  the shim never overwrites objects.)
* **Prefix listing**, used by AFT for bootstrap and commit-set scans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.clock import Clock
from repro.storage.base import StorageEngine
from repro.storage.latency import LatencyModel


@dataclass
class _Object:
    """One object version with its global visibility time."""

    value: bytes
    written_at: float
    visible_at: float


class SimulatedS3(StorageEngine):
    """In-memory model of an S3 bucket."""

    name = "s3"
    #: S3 has no multi-object PUT or GET, so the IO-plan executor falls back
    #: to one request per object and hides the cost by issuing the requests of
    #: a stage concurrently (the fan-out emulation of parallel HTTP clients).
    supports_batch_writes = False
    max_batch_size = None
    supports_batch_reads = False
    max_batch_get_size = None

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        clock: Clock | None = None,
        inconsistency_window: float = 0.2,
        history_limit: int = 8,
        seed: int | None = 0,
    ) -> None:
        super().__init__(latency_model=latency_model, clock=clock)
        self._objects: dict[str, list[_Object]] = {}
        self.inconsistency_window = float(inconsistency_window)
        self.history_limit = int(history_limit)
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return self.clock.now()

    def _sample_visibility_delay(self) -> float:
        if self.inconsistency_window <= 0:
            return 0.0
        return self._rng.uniform(0.0, self.inconsistency_window)

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        now = self._now()
        with self._lock:
            history = self._objects.get(key)
            if not history:
                value = None
            else:
                visible = [obj for obj in history if obj.visible_at <= now]
                value = visible[-1].value if visible else history[0].value
        self.stats.reads += 1
        if value is not None:
            self.stats.items_read += 1
            self.stats.bytes_read += len(value)
        self._charge("read", total_bytes=len(value) if value else 0)
        return value

    def put(self, key: str, value: bytes) -> None:
        now = self._now()
        with self._lock:
            history = self._objects.setdefault(key, [])
            visible_at = now if not history else now + self._sample_visibility_delay()
            history.append(_Object(value=bytes(value), written_at=now, visible_at=visible_at))
            if len(history) > self.history_limit:
                del history[: len(history) - self.history_limit]
        self.stats.writes += 1
        self.stats.items_written += 1
        self.stats.bytes_written += len(value)
        self._charge("write", total_bytes=len(value))

    def delete(self, key: str) -> None:
        with self._lock:
            existed = self._objects.pop(key, None) is not None
        self.stats.deletes += 1
        if existed:
            self.stats.items_deleted += 1
        self._charge("delete")

    def list_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            keys = sorted(k for k in self._objects if k.startswith(prefix))
        self.stats.lists += 1
        self._charge("list", n_items=max(1, len(keys)))
        return keys

    # S3 has no batch API: multi_put/multi_get fall back to per-object requests
    # via the StorageEngine defaults, which is exactly the behaviour the paper
    # calls out as expensive.

    def multi_delete(self, keys: Iterable[str]) -> None:
        """S3 *does* support bulk deletes (DeleteObjects, up to 1000 keys)."""
        keys = list(keys)
        with self._lock:
            for key in keys:
                if self._objects.pop(key, None) is not None:
                    self.stats.items_deleted += 1
        self.stats.deletes += 1
        self._charge("batch_write", n_items=max(1, len(keys)))

    def size(self) -> int:
        with self._lock:
            return len(self._objects)
