"""A simulated Redis cluster (AWS ElastiCache style).

The paper deploys Redis in cluster mode with two shards.  The behaviours the
evaluation depends on:

* **Hash sharding**: keys are assigned to shards by a hash of the key (real
  Redis uses CRC16 hash slots; we use Python's stable ``zlib.crc32``).
* **Per-shard linearizability, no cross-shard guarantees**: reads always see
  the latest write of their shard, but a multi-key operation cannot span
  shards — this is why AFT over Redis cannot batch its commit writes
  (Section 6.1.2) and why the plain-Redis baseline still exhibits anomalies
  (Table 2) even though each shard is strongly consistent.
* **MSET/MGET within a single shard** with mild per-key cost.
* **Fixed deployment**: the cluster does not autoscale; reconfiguration is
  expensive (noted in Section 6.5.2).  ``shard_count`` is fixed at
  construction.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Mapping

from repro.clock import Clock
from repro.errors import CrossShardBatchError
from repro.storage.base import StorageEngine
from repro.storage.latency import LatencyModel


class SimulatedRedisCluster(StorageEngine):
    """In-memory model of a sharded Redis cluster."""

    name = "redis"
    #: Multi-key writes are only supported when every key maps to one shard,
    #: so the engine advertises no general batching capability; callers that
    #: know their keys are co-located may still use :meth:`mset`.  The IO-plan
    #: executor regains most of the benefit anyway: it groups a stage's keys
    #: by shard and issues one concurrent MSET/MGET per shard.
    supports_batch_writes = False
    max_batch_size = None
    supports_batch_reads = False
    max_batch_get_size = None

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        clock: Clock | None = None,
        shard_count: int = 2,
        replicas_per_shard: int = 2,
    ) -> None:
        super().__init__(latency_model=latency_model, clock=clock)
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = int(shard_count)
        self.replicas_per_shard = int(replicas_per_shard)
        self._shards: list[dict[str, bytes]] = [dict() for _ in range(self.shard_count)]

    # ------------------------------------------------------------------ #
    def shard_of(self, key: str) -> int:
        """Return the shard index that owns ``key``."""
        return zlib.crc32(key.encode("utf-8")) % self.shard_count

    def _shard(self, key: str) -> dict[str, bytes]:
        return self._shards[self.shard_of(key)]

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        with self._lock:
            value = self._shard(key).get(key)
        self.stats.reads += 1
        if value is not None:
            self.stats.items_read += 1
            self.stats.bytes_read += len(value)
        self._charge("read", total_bytes=len(value) if value else 0)
        return value

    def put(self, key: str, value: bytes) -> None:
        with self._lock:
            self._shard(key)[key] = bytes(value)
        self.stats.writes += 1
        self.stats.items_written += 1
        self.stats.bytes_written += len(value)
        self._charge("write", total_bytes=len(value))

    def delete(self, key: str) -> None:
        with self._lock:
            existed = self._shard(key).pop(key, None) is not None
        self.stats.deletes += 1
        if existed:
            self.stats.items_deleted += 1
        self._charge("delete")

    def list_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            keys = sorted(
                key
                for shard in self._shards
                for key in shard
                if key.startswith(prefix)
            )
        self.stats.lists += 1
        self._charge("list", n_items=max(1, len(keys)))
        return keys

    # ------------------------------------------------------------------ #
    # Multi-key operations
    # ------------------------------------------------------------------ #
    def mset(self, items: Mapping[str, bytes]) -> None:
        """Atomically set several keys, all of which must share a shard."""
        items = dict(items)
        if not items:
            return
        shards = {self.shard_of(key) for key in items}
        if len(shards) > 1:
            raise CrossShardBatchError(
                f"MSET keys span {len(shards)} shards; Redis cluster mode requires a single shard"
            )
        with self._lock:
            shard = self._shards[shards.pop()]
            for key, value in items.items():
                shard[key] = bytes(value)
        total = sum(len(v) for v in items.values())
        self.stats.batch_writes += 1
        self.stats.items_written += len(items)
        self.stats.bytes_written += total
        self._charge("batch_write", n_items=len(items), total_bytes=total)

    def mget(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        """Read several keys from a single shard in one request."""
        keys = list(keys)
        if not keys:
            return {}
        shards = {self.shard_of(key) for key in keys}
        if len(shards) > 1:
            raise CrossShardBatchError(
                f"MGET keys span {len(shards)} shards; Redis cluster mode requires a single shard"
            )
        with self._lock:
            shard = self._shards[shards.pop()]
            result = {key: shard.get(key) for key in keys}
        total = sum(len(v) for v in result.values() if v is not None)
        self.stats.batch_reads += 1
        self.stats.items_read += sum(1 for v in result.values() if v is not None)
        self.stats.bytes_read += total
        self._charge("batch_read", n_items=len(keys), total_bytes=total)
        return result

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        """Group ``items`` by shard and issue one MSET per shard.

        The engine still charges one request per shard, so a write set spread
        over all shards costs roughly one round trip per shard — which is why
        AFT cannot hide its per-version writes behind a single batch on Redis.
        """
        by_shard: dict[int, dict[str, bytes]] = {}
        for key, value in items.items():
            by_shard.setdefault(self.shard_of(key), {})[key] = value
        for shard_items in by_shard.values():
            self.mset(shard_items)

    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        """Group ``keys`` by shard and issue one MGET per shard."""
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        result: dict[str, bytes | None] = {}
        for shard_keys in by_shard.values():
            result.update(self.mget(shard_keys))
        return result

    # ------------------------------------------------------------------ #
    # IO-plan capability hooks: group a stage's operations by shard so each
    # shard receives one MSET/MGET, and the per-shard requests of one stage
    # run concurrently (max, not sum, of shard latencies).
    # ------------------------------------------------------------------ #
    def _plan_put_groups(self, items: Mapping[str, bytes]) -> list[dict[str, bytes]]:
        by_shard: dict[int, dict[str, bytes]] = {}
        for key, value in items.items():
            by_shard.setdefault(self.shard_of(key), {})[key] = value
        return list(by_shard.values())

    def _execute_put_group(self, group: Mapping[str, bytes]) -> None:
        if len(group) > 1:
            self.mset(group)
        else:
            for key, value in group.items():
                self.put(key, value)

    def _plan_get_groups(self, keys: Iterable[str]) -> list[list[str]]:
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        return list(by_shard.values())

    def _execute_get_group(self, keys: list[str]) -> dict[str, bytes | None]:
        if len(keys) > 1:
            return self.mget(keys)
        return {keys[0]: self.get(keys[0])}

    def multi_delete(self, keys: Iterable[str]) -> None:
        keys = list(keys)
        with self._lock:
            for key in keys:
                if self._shard(key).pop(key, None) is not None:
                    self.stats.items_deleted += 1
        self.stats.deletes += 1
        self._charge("batch_write", n_items=max(1, len(keys)))

    def size(self) -> int:
        with self._lock:
            return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        """Number of keys per shard (used in load-balance tests)."""
        with self._lock:
            return [len(shard) for shard in self._shards]
