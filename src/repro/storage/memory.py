"""A plain, linearizable, in-memory storage engine.

This is the simplest possible backend: a dict guarded by a lock.  It is the
default engine for unit tests and examples, and the reference behaviour that
the fancier simulated engines must agree with when their consistency knobs
are turned off.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.clock import Clock
from repro.errors import BatchTooLargeError
from repro.storage.base import StorageEngine
from repro.storage.latency import LatencyModel


class InMemoryStorage(StorageEngine):
    """Linearizable dict-backed storage with optional batching support."""

    name = "memory"
    supports_batch_writes = True
    max_batch_size = None
    supports_batch_reads = True
    max_batch_get_size = None

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        clock: Clock | None = None,
        max_batch_size: int | None = None,
    ) -> None:
        super().__init__(latency_model=latency_model, clock=clock)
        self._data: dict[str, bytes] = {}
        self.max_batch_size = max_batch_size

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        with self._lock:
            value = self._data.get(key)
        self.stats.reads += 1
        if value is not None:
            self.stats.items_read += 1
            self.stats.bytes_read += len(value)
        self._charge("read", total_bytes=len(value) if value else 0)
        return value

    def put(self, key: str, value: bytes) -> None:
        with self._lock:
            self._data[key] = bytes(value)
        self.stats.writes += 1
        self.stats.items_written += 1
        self.stats.bytes_written += len(value)
        self._charge("write", total_bytes=len(value))

    def delete(self, key: str) -> None:
        with self._lock:
            existed = self._data.pop(key, None) is not None
        self.stats.deletes += 1
        if existed:
            self.stats.items_deleted += 1
        self._charge("delete")

    def list_keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            keys = sorted(k for k in self._data if k.startswith(prefix))
        self.stats.lists += 1
        self._charge("list", n_items=max(1, len(keys)))
        return keys

    # ------------------------------------------------------------------ #
    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        keys = list(keys)
        with self._lock:
            result = {key: self._data.get(key) for key in keys}
        total = sum(len(v) for v in result.values() if v is not None)
        self.stats.batch_reads += 1
        self.stats.items_read += sum(1 for v in result.values() if v is not None)
        self.stats.bytes_read += total
        self._charge("batch_read", n_items=max(1, len(keys)), total_bytes=total)
        return result

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        if self.max_batch_size is not None and len(items) > self.max_batch_size:
            raise BatchTooLargeError(
                f"batch of {len(items)} items exceeds the {self.max_batch_size}-item limit"
            )
        with self._lock:
            for key, value in items.items():
                self._data[key] = bytes(value)
        total = sum(len(v) for v in items.values())
        self.stats.batch_writes += 1
        self.stats.items_written += len(items)
        self.stats.bytes_written += total
        self._charge("batch_write", n_items=max(1, len(items)), total_bytes=total)

    def multi_delete(self, keys: Iterable[str]) -> None:
        keys = list(keys)
        with self._lock:
            for key in keys:
                if self._data.pop(key, None) is not None:
                    self.stats.items_deleted += 1
        self.stats.deletes += 1
        self._charge("batch_write", n_items=max(1, len(keys)))

    # ------------------------------------------------------------------ #
    def size(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop all stored data (test helper)."""
        with self._lock:
            self._data.clear()
