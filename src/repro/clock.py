"""Clock abstractions.

AFT timestamps transactions with the committing node's local clock and only
relies on the clock for *relative freshness*, never for correctness
(Section 3.1).  The library therefore takes a clock as a dependency everywhere
instead of calling ``time.time()`` directly, which makes protocol behaviour
deterministic under test and lets the discrete-event simulator drive the same
code with virtual time.
"""

from __future__ import annotations

import itertools
import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Minimal clock interface used throughout the library."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in (possibly virtual) seconds."""


class SystemClock(Clock):
    """Wall-clock time from the operating system."""

    def now(self) -> float:
        return time.time()


class LogicalClock(Clock):
    """A deterministic, manually advanced clock.

    Useful in unit tests: every call to :meth:`tick` advances time by a fixed
    step, and :meth:`advance` moves it by an arbitrary amount.  ``auto_step``
    makes each ``now()`` call advance time slightly so that successive
    transactions naturally receive distinct timestamps.
    """

    def __init__(self, start: float = 0.0, auto_step: float = 0.0) -> None:
        self._now = float(start)
        self._auto_step = float(auto_step)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            current = self._now
            self._now += self._auto_step
            return current

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot move a LogicalClock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def tick(self, step: float = 1.0) -> float:
        """Alias of :meth:`advance` with a default step of one second."""
        return self.advance(step)

    def set(self, value: float) -> None:
        """Set the clock to an absolute value (must not go backwards)."""
        with self._lock:
            if value < self._now:
                raise ValueError("cannot move a LogicalClock backwards")
            self._now = float(value)


class CounterClock(Clock):
    """A clock that returns 1, 2, 3, ... — handy for fully deterministic ids."""

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start + 1)
        self._lock = threading.Lock()
        self._last = float(start)

    def now(self) -> float:
        with self._lock:
            self._last = float(next(self._counter))
            return self._last


class OffsetClock(Clock):
    """A clock derived from another clock with a fixed skew.

    Used in tests and simulations to model unsynchronised node clocks, which
    the paper explicitly tolerates.
    """

    def __init__(self, base: Clock, offset: float) -> None:
        self._base = base
        self._offset = float(offset)

    def now(self) -> float:
        return self._base.now() + self._offset
