"""The ``repro-node`` process: one AFT shim node behind a router connection.

The process owns a single :class:`~repro.core.node.AftNode` on an asyncio
event loop.  Its storage engine is :class:`~repro.rpc.storage_client.RemoteStorage`
over the router connection, so the node's entire §3.3 write protocol — data
writes first, commit record last — executes against the *router's* shared
store, where the epoch fencing check lives.  The same connection carries,
multiplexed:

* **lease renewals** (heartbeat notifications on the cadence the router's
  ``hello_ack`` dictates),
* **the commit stream** (drained recent commits published up; peer commits
  delivered down and merged into the metadata cache),
* **forwarded client sessions** (``txn_*`` requests the router pins here),
* **fault injection** (``nemesis`` pauses heartbeats while leaving the
  data path untouched — the asymmetric-partition / GC-pause scenario that
  makes lease membership produce false positives).

A ``--kind standby`` process registers without a fencing token and idles
until the router's ``activate`` promotes it (fresh epoch, then bootstrap
from the Transaction Commit Set).

Run it: ``repro-node --node-id n0 --router-port 7400``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.config import AftConfig
from repro.core.commit_set import CommitSetStore
from repro.core.metadata_plane.fencing import FenceToken
from repro.core.node import AftNode
from repro.errors import AftError
from repro.observability import metrics as om
from repro.observability import trace as tr
from repro.observability.sink import ObservabilitySink
from repro.rpc import messages as m
from repro.rpc.framing import (
    FORMAT_BINARY,
    FORMAT_JSON,
    SUPPORTED_WIRE_FORMATS,
    RpcConnection,
    connect,
)
from repro.rpc.router import STORAGE_BATCH_FEATURE
from repro.rpc.storage_client import RemoteStorage

#: How often drained commits are published to the router's commit hub.
PUBLISH_INTERVAL = 0.05


class NodeServer:
    """One node process: an :class:`AftNode` served over a router connection."""

    def __init__(
        self,
        node_id: str,
        router_host: str = "127.0.0.1",
        router_port: int = 7400,
        kind: str = "node",
        config: AftConfig | None = None,
        wire_formats: tuple[str, ...] = SUPPORTED_WIRE_FORMATS,
        enable_storage_batching: bool = True,
        coalesce_window: float = 0.0,
    ) -> None:
        if kind not in ("node", "standby"):
            raise ValueError(f"kind must be 'node' or 'standby', not {kind!r}")
        self.node_id = node_id
        self.router_host = router_host
        self.router_port = router_port
        self.kind = kind
        self.config = config if config is not None else AftConfig()
        #: Formats this node offers in its ``hello`` (the router picks).
        self.wire_formats = tuple(wire_formats)
        self.enable_storage_batching = enable_storage_batching
        self.coalesce_window = coalesce_window

        tr.apply_config(self.config.observability)
        self.metrics = om.registry(f"node.{node_id}")
        self._sink = ObservabilitySink(f"node-{node_id}", self.config.observability)

        self.conn: RpcConnection | None = None
        self.node: AftNode | None = None
        self.storage: RemoteStorage | None = None
        self.heartbeat_interval = 1.0
        #: Nemesis switch: heartbeats stop, everything else keeps running.
        self.heartbeats_paused = False
        self._serving = asyncio.Event()
        self._closed = asyncio.Event()
        self._tasks: list[asyncio.Task] = []

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Connect, register, and (for serving nodes) come online."""
        loop = asyncio.get_running_loop()
        self.conn = await connect(
            self.router_host,
            self.router_port,
            handler=self._handle,
            name=f"node-{self.node_id}",
        )
        self.conn.on_close = lambda _conn: self._closed.set()

        ack = await self.conn.request(
            m.Hello(node_id=self.node_id, kind=self.kind, wire_formats=list(self.wire_formats))
        )
        if not isinstance(ack, m.HelloAck):
            raise AftError(f"unexpected registration reply {type(ack).__name__}")
        self.heartbeat_interval = ack.heartbeat_interval
        # Adopt the negotiated wire format.  An old router's ack has no
        # ``wire_format`` field (decode defaults it to "json"), so the
        # connection simply stays on the JSON wire.
        if ack.wire_format == FORMAT_BINARY and FORMAT_BINARY in self.wire_formats:
            self.conn.wire_format = FORMAT_BINARY

        storage = RemoteStorage(
            self.conn,
            loop=loop,
            request_timeout=self.config.storage_request_timeout,
            coalesce_window=self.coalesce_window,
        )
        # Batched storage groups need a router that understands the frame.
        storage.supports_storage_batches = (
            self.enable_storage_batching and STORAGE_BATCH_FEATURE in (ack.features or [])
        )
        self.storage = storage
        self.node = AftNode(
            storage=storage,
            commit_store=CommitSetStore(storage),
            config=self.config,
            node_id=self.node_id,
        )
        if self.kind == "node":
            await self._come_online(ack.epoch)

        self._tasks = [
            loop.create_task(self._heartbeat_loop()),
            loop.create_task(self._publish_loop()),
        ]
        self._sink.start()

    async def _come_online(self, epoch: int) -> None:
        """Start serving: adopt the fencing token, bootstrap off-loop."""
        assert self.node is not None
        if epoch:
            self.node.fence_token = FenceToken(node_id=self.node_id, epoch=epoch)
        self.node.start(bootstrap=False)
        # The bootstrap scan is the sync commit-set path; RemoteStorage's
        # sync facade bridges from a worker thread back onto this loop.
        await asyncio.to_thread(self.node.bootstrap)
        self._serving.set()

    async def run_forever(self) -> None:
        await self._closed.wait()
        await self.stop()

    async def stop(self) -> None:
        await self._sink.stop()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self.node is not None and self.node.is_running:
            self.node.stop()
        if self.conn is not None:
            await self.conn.close()

    # ------------------------------------------------------------------ #
    # Background loops
    # ------------------------------------------------------------------ #
    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            if self.heartbeats_paused or not self._serving.is_set():
                continue
            try:
                await self.conn.notify(m.Heartbeat(node_id=self.node_id))
            except Exception:
                return

    async def _publish_loop(self) -> None:
        while True:
            await asyncio.sleep(PUBLISH_INTERVAL)
            if not self._serving.is_set():
                continue
            try:
                await self._publish_now()
            except Exception:
                return

    async def _publish_now(self) -> None:
        records = self.node.drain_recent_commits()
        if records:
            # A request, not a notification: the router replies only after it
            # has written the deliver frames to every peer, so once the commit
            # ack (which follows this) reaches the client, any later request
            # to a sibling node is behind that sibling's deliver frame.
            # No span of its own: ``router.publish_fanout`` times the same
            # round trip from the other side, parented via the trace field.
            await self.conn.request(
                m.PublishCommits(
                    node_id=self.node_id,
                    records=m.encode_records(records),
                    trace=tr.wire_context(),
                )
            )

    # ------------------------------------------------------------------ #
    # Request handling (router -> node)
    # ------------------------------------------------------------------ #
    async def _handle(self, conn: RpcConnection, msg: m.WireMessage) -> m.WireMessage | None:
        node = self.node
        if isinstance(msg, m.TxnStart):
            with tr.span("node.start", parent=msg.trace) as span:
                txid = node.start_transaction(msg.txid or None)
                span.bind_txn(txid)
            self.metrics.counter("txns_started").inc()
            return m.ClientStarted(txid=txid, node_id=self.node_id)
        if isinstance(msg, m.TxnGet):
            with tr.span("node.get", txid=msg.txid, parent=msg.trace, n_keys=len(msg.keys)):
                values = await node.get_many_async(msg.txid, list(msg.keys))
            return m.ClientValues(values=dict(values))
        if isinstance(msg, m.TxnPut):
            # Un-spanned on purpose: a put is a write-buffer append (see the
            # client-side note); commit spans carry its persistence.
            for key, value in msg.items.items():
                await node.put_async(msg.txid, key, value)
            return m.Ok()
        if isinstance(msg, m.TxnCommit):
            with tr.span("node.commit", txid=msg.txid, parent=msg.trace):
                commit_id = await node.commit_transaction_async(msg.txid)
                # Publish eagerly: the commit ack and the peer broadcast leave
                # together, so a follow-up transaction on a sibling node sees
                # the new version without waiting out the publish interval.
                try:
                    await self._publish_now()
                except Exception:
                    pass
            self.metrics.counter("txns_committed").inc()
            tr.end_txn(msg.txid)
            return m.ClientCommitted(txid=msg.txid, commit_token=commit_id.to_token())
        if isinstance(msg, m.TxnAbort):
            with tr.span("node.abort", txid=msg.txid, parent=msg.trace):
                node.abort_transaction(msg.txid)
            self.metrics.counter("txns_aborted").inc()
            tr.end_txn(msg.txid)
            return m.Ok()
        if isinstance(msg, m.DeliverCommits):
            # Deliberately not annotated: deliveries arrive ~2x per txn with no
            # causal parent, so a span here is pure hot-path noise; the counter
            # below carries the same information.
            self.metrics.counter("commits_delivered").inc(len(msg.records))
            node.receive_commits(m.decode_records(msg.records))
            return m.Ok()
        if isinstance(msg, m.Activate):
            tr.annotate("node.activate", node=self.node_id, epoch=msg.epoch)
            self.kind = "node"
            await self._come_online(msg.epoch)
            return m.Ok()
        if isinstance(msg, m.Nemesis):
            if msg.pause_heartbeats != self.heartbeats_paused:
                tr.annotate(
                    "node.heartbeats_paused" if msg.pause_heartbeats else "node.heartbeats_resumed",
                    node=self.node_id,
                )
            self.heartbeats_paused = msg.pause_heartbeats
            return m.Ok()
        raise AftError(f"node cannot handle {msg.TYPE!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-node", description=__doc__)
    parser.add_argument("--node-id", required=True)
    parser.add_argument("--router-host", default="127.0.0.1")
    parser.add_argument("--router-port", type=int, default=7400)
    parser.add_argument("--kind", choices=("node", "standby"), default="node")
    parser.add_argument(
        "--storage-timeout",
        type=float,
        default=None,
        help="per-request storage round-trip timeout in seconds "
        "(0 waits forever; default: AftConfig.storage_request_timeout)",
    )
    parser.add_argument(
        "--wire-format",
        choices=[FORMAT_BINARY, FORMAT_JSON],
        default=FORMAT_BINARY,
        help="most capable wire format to offer (json emulates a PR 7 node)",
    )
    parser.add_argument(
        "--no-storage-batching",
        action="store_true",
        help="issue one storage frame per op even if the router batches",
    )
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=0.0,
        help="seconds to hold an open storage batch for ops from other "
        "sessions (0 = same-event-loop-tick only; ~0.001 trades up to "
        "1 ms of stage latency for fewer round trips under load)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="enable tracing and append span/metrics JSONL dumps to this directory",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        help="seconds between metrics snapshots (0 disables; implies tracing on)",
    )
    args = parser.parse_args(argv)

    config = AftConfig()
    if args.storage_timeout is not None:
        config = config.with_overrides(
            storage_request_timeout=args.storage_timeout if args.storage_timeout > 0 else None
        )
    if args.trace_dir or args.metrics_interval > 0:
        config = config.with_overrides(
            observability=config.observability.with_overrides(
                enabled=True,
                trace_dir=args.trace_dir,
                metrics_interval=args.metrics_interval,
            )
        )

    async def run() -> None:
        server = NodeServer(
            node_id=args.node_id,
            router_host=args.router_host,
            router_port=args.router_port,
            kind=args.kind,
            config=config,
            wire_formats=(
                SUPPORTED_WIRE_FORMATS if args.wire_format == FORMAT_BINARY else (FORMAT_JSON,)
            ),
            enable_storage_batching=not args.no_storage_batching,
            coalesce_window=args.coalesce_window,
        )
        await server.start()
        print(f"REPRO_NODE_READY node={args.node_id} kind={args.kind}", flush=True)
        await server.run_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
