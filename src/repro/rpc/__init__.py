"""A thin asyncio-TCP transport for the distributed AFT runtime.

The package turns the in-process metadata-plane strategy interfaces of PR 5
into messages on sockets:

* :mod:`repro.rpc.framing` — length-prefixed frames in two negotiated wire
  formats (JSON, and a hybrid binary layout whose bulk bytes travel raw
  after a compact header) and the bidirectional multiplexed
  :class:`~repro.rpc.framing.RpcConnection` with writer coalescing and
  per-connection wire counters.
* :mod:`repro.rpc.messages` — versioned dataclass wire schemas with an
  unknown-field-tolerant codec, so node/router binaries from adjacent
  versions interoperate (including across the JSON/binary wire boundary).
* :mod:`repro.rpc.storage_client` — :class:`~repro.rpc.storage_client.RemoteStorage`,
  a native-async :class:`~repro.storage.base.StorageEngine` speaking storage
  ops to the router's shared storage service, coalescing concurrent ops
  into shared ``storage_batch`` frames.
* :mod:`repro.rpc.router` — the ``repro-router`` process: shared storage,
  lease membership with epoch fencing, the commit-stream hub, and client
  session routing.
* :mod:`repro.rpc.node_server` — the ``repro-node`` process: one
  :class:`~repro.core.node.AftNode` on an event loop behind a router
  connection.
* :mod:`repro.rpc.client` — :class:`~repro.rpc.client.AsyncRouterClient`,
  the asyncio Table-1 client the ``tcp://`` side of
  :class:`repro.client.AftClient` builds on.
"""

from repro.rpc.framing import (
    FORMAT_BINARY,
    FORMAT_JSON,
    SUPPORTED_WIRE_FORMATS,
    ConnectionStats,
    FrameTooLargeError,
    RpcConnection,
    RpcError,
)
from repro.rpc.messages import WIRE_VERSION, WireMessage, decode_body, encode_body

__all__ = [
    "FORMAT_BINARY",
    "FORMAT_JSON",
    "SUPPORTED_WIRE_FORMATS",
    "ConnectionStats",
    "FrameTooLargeError",
    "RpcConnection",
    "RpcError",
    "WIRE_VERSION",
    "WireMessage",
    "decode_body",
    "encode_body",
]
