"""The ``repro-router`` process: the cluster's shared services on one port.

The router plays the roles that live *outside* the shim nodes in the
paper's deployment (Section 4):

* **Shared storage.**  An in-process engine (``InMemoryStorage`` by
  default) serves every node's :class:`~repro.rpc.messages.StorageRequest`.
  This is the stand-in for cloud storage — and therefore the one authority
  a late writer cannot bypass, so **epoch fencing is enforced here**: every
  put whose key is a commit-record key has its record parsed and its
  ``(node_id, epoch)`` stamp validated against the router's
  :class:`~repro.core.metadata_plane.fencing.EpochFence` before the write
  lands.  A fenced node's commit fails at the record write, after its data
  writes — exactly the §3.3 write-ordering failure mode AFT tolerates:
  durable but unreferenced data, garbage, never a visible commit.
* **Lease membership.**  Nodes renew leases with heartbeat frames; a lease
  expiring marks the node failed, revokes its fencing token, removes it
  from client routing, and promotes a standby (fresh token, ``activate``
  message) — the :class:`~repro.core.metadata_plane.membership.LeaseMembership`
  strategy made load-bearing on sockets.
* **Commit-stream hub.**  ``publish_commits`` from a node fans out as
  ``deliver_commits`` to every other serving node — the
  :class:`CommitStream` strategy's role, with the router as the relay.
* **Client session routing.**  Clients open transactions against the
  router; each is pinned round-robin to a serving node and its Table-1 ops
  are forwarded over that node's existing connection.

Run it: ``repro-router --port 7400`` (``--port 0`` picks a free port and
prints it on the ``REPRO_ROUTER_READY`` line that process harnesses wait
for).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
import time
from dataclasses import dataclass, field

from repro import runtime
from repro.config import ObservabilityConfig
from repro.core.commit_set import CommitRecord
from repro.core.metadata_plane.fencing import EpochFence
from repro.core.metadata_plane.keyspace import PARTITIONED_PREFIX
from repro.errors import AftError, NoAvailableNodeError, UnknownTransactionError
from repro.ids import COMMIT_PREFIX, KEY_SEPARATOR
from repro.observability import metrics as om
from repro.observability import trace as tr
from repro.observability.sink import ObservabilitySink
from repro.rpc import messages as m
from repro.rpc.framing import FORMAT_BINARY, FORMAT_JSON, RpcConnection
from repro.storage.base import StorageEngine, StorageOp, StorageOpResult
from repro.storage.memory import InMemoryStorage

#: The ``hello_ack.features`` flag advertising the batched storage service.
STORAGE_BATCH_FEATURE = "storage_batch"

_COMMIT_KEY_PREFIXES = (COMMIT_PREFIX + KEY_SEPARATOR, PARTITIONED_PREFIX + ".")


def is_commit_record_storage_key(key: str) -> bool:
    """Whether ``key`` holds a commit record under any keyspace layout."""
    return key.startswith(_COMMIT_KEY_PREFIXES)


@dataclass
class _NodeSession:
    """Router-side state of one connected node process."""

    conn: RpcConnection
    node_id: str
    kind: str
    #: Serving client traffic (standbys flip True on activation; a declared-
    #: failed node flips False forever).
    active: bool = False
    last_heartbeat: float = field(default_factory=time.monotonic)
    declared_failed: bool = False
    #: Nemesis frame faults: commit deliver frames bound for this node are
    #: delayed by ``deliver_delay`` seconds and dropped when ``deliver_drop``.
    deliver_delay: float = 0.0
    deliver_drop: bool = False


class RouterServer:
    """The cluster's storage, membership, fencing, and routing authority."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        storage: StorageEngine | None = None,
        lease_duration: float = 5.0,
        heartbeat_interval: float = 1.0,
        wire_formats: tuple[str, ...] = (FORMAT_JSON, FORMAT_BINARY),
        enable_storage_batches: bool = True,
        storage_batch_concurrency: int = 16,
        observability: ObservabilityConfig | None = None,
    ) -> None:
        if lease_duration <= heartbeat_interval:
            raise ValueError("lease_duration must exceed heartbeat_interval")
        self.host = host
        self.port = port
        self.storage = storage if storage is not None else InMemoryStorage()
        self.lease_duration = lease_duration
        self.heartbeat_interval = heartbeat_interval
        #: Formats this router will *send* (a JSON-only tuple emulates an old
        #: router: peers offering binary fall back via the negotiation).
        self.wire_formats = tuple(wire_formats)
        self.enable_storage_batches = enable_storage_batches
        self.storage_batch_concurrency = max(1, storage_batch_concurrency)
        self.fence = EpochFence()

        self._server: asyncio.AbstractServer | None = None
        self._sessions: dict[str, _NodeSession] = {}
        self._routes: dict[str, _NodeSession] = {}
        self._round_robin = 0
        self._lease_task: asyncio.Task | None = None
        self._commits_seen = 0
        #: Guards the storage engine: its operations are instant, and one
        #: lock keeps fence-check-then-write atomic under handler concurrency.
        self._storage_lock = threading.Lock()
        self.observability = observability if observability is not None else ObservabilityConfig()
        tr.apply_config(self.observability)
        #: The router's metrics registry — scrapeable over the wire via the
        #: ``info`` RPC (see the InfoReply construction) and snapshotted to
        #: JSON-lines by the sink when ``--metrics-interval`` is set.
        self.metrics = om.registry("router")
        self._sink = ObservabilitySink("router", self.observability)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._accept, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._lease_task = asyncio.get_running_loop().create_task(self._lease_loop())
        self._sink.start()

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        await self._sink.stop()
        if self._lease_task is not None:
            self._lease_task.cancel()
            try:
                await self._lease_task
            except asyncio.CancelledError:
                pass
            self._lease_task = None
        for session in list(self._sessions.values()):
            await session.conn.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        conn = RpcConnection(reader, writer, handler=self._handle, name="router-peer")
        conn.on_close = self._connection_lost
        conn.start()

    def _connection_lost(self, conn: RpcConnection) -> None:
        for node_id, session in list(self._sessions.items()):
            if session.conn is conn:
                # A dropped socket is a hard failure: fence immediately
                # rather than waiting out the lease.
                self._declare_failed(session, reason="connection lost")
                self._sessions.pop(node_id, None)

    # ------------------------------------------------------------------ #
    # Lease membership + fencing
    # ------------------------------------------------------------------ #
    async def _lease_loop(self) -> None:
        interval = max(0.05, self.lease_duration / 4.0)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            expired = [
                session
                for session in self._sessions.values()
                if session.active
                and not session.declared_failed
                and (now - session.last_heartbeat) > self.lease_duration
            ]
            for session in expired:
                self._declare_failed(session, reason="lease expired")
                await self._promote_standby()

    def _declare_failed(self, session: _NodeSession, reason: str) -> None:
        if session.declared_failed:
            return
        session.declared_failed = True
        was_active = session.active
        session.active = False
        tr.annotate("router.node_failed", node=session.node_id, reason=reason)
        self.metrics.counter("nodes_failed").inc()
        if was_active or self.fence.granted_epoch(session.node_id) is not None:
            # Revoke *before* anything else: from here on the node's late
            # commit-record writes carry a dead epoch.
            self.fence.revoke(session.node_id)
        # Transactions pinned to the dead node stay pinned: their next op
        # surfaces the failure to the client (who retries a new txn), rather
        # than silently landing on a node that never heard of the txid.

    async def _promote_standby(self) -> None:
        standby = next(
            (
                s
                for s in self._sessions.values()
                if s.kind == "standby" and not s.active and not s.declared_failed
            ),
            None,
        )
        if standby is None:
            return
        token = self.fence.grant(standby.node_id)
        standby.kind = "node"
        standby.last_heartbeat = time.monotonic()
        try:
            await standby.conn.request(
                m.Activate(node_id=standby.node_id, epoch=token.epoch), timeout=10.0
            )
        except Exception:
            self._declare_failed(standby, reason="activation failed")
            return
        standby.active = True
        tr.annotate("router.promote_standby", node=standby.node_id)
        self.metrics.counter("standbys_promoted").inc()

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    async def _handle(self, conn: RpcConnection, msg: m.WireMessage) -> m.WireMessage | None:
        if isinstance(msg, m.StorageRequest):
            return self._handle_storage(msg)
        if isinstance(msg, m.StorageBatch):
            return await self._handle_storage_batch(conn, msg)
        if isinstance(msg, m.Heartbeat):
            session = self._sessions.get(msg.node_id)
            if session is not None and not session.declared_failed:
                session.last_heartbeat = time.monotonic()
            return None
        if isinstance(msg, m.Hello):
            return self._handle_hello(conn, msg)
        if isinstance(msg, m.PublishCommits):
            await self._handle_publish(msg)
            return m.Ok()
        if isinstance(msg, m.ClientStart):
            return await self._handle_client_start(msg)
        if isinstance(msg, m.ClientGet):
            with tr.span("router.get", txid=msg.txid, parent=msg.trace):
                reply = await self._forward(
                    msg.txid, m.TxnGet(txid=msg.txid, keys=msg.keys, trace=tr.wire_context())
                )
            return m.ClientValues(values=getattr(reply, "values", {}))
        if isinstance(msg, m.ClientPut):
            # Un-spanned on purpose: puts are write-buffer appends (see the
            # client-side note); the commit spans carry their persistence.
            await self._forward(msg.txid, m.TxnPut(txid=msg.txid, items=msg.items))
            return m.Ok()
        if isinstance(msg, m.ClientCommit):
            try:
                with tr.span("router.commit", txid=msg.txid, parent=msg.trace):
                    reply = await self._forward(
                        msg.txid, m.TxnCommit(txid=msg.txid, trace=tr.wire_context())
                    )
                self.metrics.counter("txns_committed").inc()
            finally:
                self._routes.pop(msg.txid, None)
            return m.ClientCommitted(
                txid=msg.txid, commit_token=getattr(reply, "commit_token", "")
            )
        if isinstance(msg, m.ClientAbort):
            try:
                with tr.span("router.abort", txid=msg.txid, parent=msg.trace):
                    await self._forward(
                        msg.txid, m.TxnAbort(txid=msg.txid, trace=tr.wire_context())
                    )
                self.metrics.counter("txns_aborted").inc()
            finally:
                self._routes.pop(msg.txid, None)
            return m.Ok()
        if isinstance(msg, m.Info):
            return m.InfoReply(
                nodes=sorted(s.node_id for s in self._sessions.values() if s.active),
                standbys=sorted(
                    s.node_id
                    for s in self._sessions.values()
                    if s.kind == "standby" and not s.active and not s.declared_failed
                ),
                epoch=self.fence.epoch,
                commits=self._commits_seen,
                wire={
                    node_id: {"format": s.conn.wire_format, **s.conn.stats.as_dict()}
                    for node_id, s in sorted(self._sessions.items())
                },
                metrics=self.metrics.snapshot(),
            )
        if isinstance(msg, m.Nemesis):
            session = self._sessions.get(msg.node_id)
            if session is None:
                raise AftError(f"no such node {msg.node_id!r}")
            session.deliver_delay = msg.deliver_delay
            session.deliver_drop = msg.deliver_drop
            if not msg.router_only:
                await session.conn.request(msg, timeout=10.0)
            return m.Ok()
        raise AftError(f"router cannot handle {msg.TYPE!r}")

    # ------------------------------------------------------------------ #
    def _handle_hello(self, conn: RpcConnection, msg: m.Hello) -> m.HelloAck:
        # Wire negotiation: binary only when both sides allow it.  An old
        # peer's Hello simply lacks ``wire_formats`` (unknown-field-tolerant
        # decode defaults it to ["json"]), so the fallback is automatic —
        # and the ack from an old *router* lacks ``wire_format``, leaving
        # the peer on JSON too.
        offered = set(msg.wire_formats or [FORMAT_JSON])
        chosen = (
            FORMAT_BINARY
            if FORMAT_BINARY in offered and FORMAT_BINARY in self.wire_formats
            else FORMAT_JSON
        )
        conn.wire_format = chosen
        features = [STORAGE_BATCH_FEATURE] if self.enable_storage_batches else []
        if msg.kind == "client":
            # Clients negotiate the wire but are not cluster members: no
            # session, no lease, no fencing token.
            return m.HelloAck(node_id=msg.node_id, wire_format=chosen, features=features)
        session = _NodeSession(conn=conn, node_id=msg.node_id, kind=msg.kind)
        epoch = 0
        if msg.kind == "node":
            token = self.fence.grant(msg.node_id)
            epoch = token.epoch
            session.active = True
        self._sessions[msg.node_id] = session
        return m.HelloAck(
            node_id=msg.node_id,
            epoch=epoch,
            lease_duration=self.lease_duration,
            heartbeat_interval=self.heartbeat_interval,
            wire_format=chosen,
            features=features,
        )

    async def _handle_publish(self, msg: m.PublishCommits) -> None:
        self._commits_seen += len(msg.records)
        self.metrics.counter("commit_records_published").inc(len(msg.records))
        with tr.span("router.publish_fanout", parent=msg.trace, n_records=len(msg.records)):
            await self._fan_out(msg)

    async def _fan_out(self, msg: m.PublishCommits) -> None:
        deliver = m.DeliverCommits(records=msg.records)
        for session in list(self._sessions.values()):
            if session.active and session.node_id != msg.node_id:
                if session.deliver_drop:
                    # Nemesis: the broadcast link to this node is severed.
                    continue
                if session.deliver_delay > 0:
                    # Nemesis: a slow link.  Delivery completes off this
                    # request's critical path, losing the commit-ack ordering
                    # guarantee on purpose — that is the fault being modelled.
                    asyncio.get_running_loop().create_task(
                        self._deliver_later(session, deliver, session.deliver_delay)
                    )
                    continue
                try:
                    await session.conn.notify(deliver)
                except Exception:
                    # The lease loop (or on_close) handles the dead peer.
                    continue

    async def _deliver_later(
        self, session: _NodeSession, deliver: m.DeliverCommits, delay: float
    ) -> None:
        await asyncio.sleep(delay)
        try:
            await session.conn.notify(deliver)
        except Exception:
            pass

    async def _handle_client_start(self, msg: m.ClientStart) -> m.ClientStarted:
        serving = [s for s in self._sessions.values() if s.active]
        if not serving:
            raise NoAvailableNodeError("no serving node connected to the router")
        session = serving[self._round_robin % len(serving)]
        self._round_robin += 1
        with tr.span("router.start", parent=msg.trace, node=session.node_id) as span:
            reply = await session.conn.request(
                m.TxnStart(txid=msg.txid, trace=tr.wire_context()), timeout=10.0
            )
            txid = getattr(reply, "txid", msg.txid)
            span.bind_txn(txid)
        self._routes[txid] = session
        self.metrics.counter("txns_started").inc()
        return m.ClientStarted(txid=txid, node_id=session.node_id)

    async def _forward(self, txid: str, msg: m.WireMessage) -> m.WireMessage:
        session = self._routes.get(txid)
        if session is None:
            raise UnknownTransactionError(
                f"transaction {txid!r} is not routed through this router", txid=txid
            )
        return await session.conn.request(msg, timeout=30.0)

    # ------------------------------------------------------------------ #
    # Storage service (with the fencing gate)
    # ------------------------------------------------------------------ #
    def _check_put_fence(self, key: str, value: bytes) -> None:
        """The load-bearing fencing check: reject stale commit-record writes.

        Data-key writes pass through unfenced (a late node's data writes are
        harmless garbage — §3.3); only the commit record makes a transaction
        visible, so that is where the epoch stamp is validated.
        """
        if not is_commit_record_storage_key(key):
            return
        record = CommitRecord.from_bytes(value)
        self.fence.check(record.node_id, record.epoch)

    def _apply_op_sync(self, op: StorageOp) -> StorageOpResult:
        """Apply one storage op under the lock (fence checks included).

        The single authority for both wire shapes: ``storage`` frames and
        each op of a ``storage_batch`` frame land here, so the fencing gate
        cannot be bypassed by taking the batched path.
        """
        with self._storage_lock:
            if op.op == "get":
                key = op.keys[0]
                return StorageOpResult(values={key: self.storage.get(key)})
            if op.op == "multi_get":
                return StorageOpResult(values=self.storage.multi_get(list(op.keys)))
            if op.op in ("put", "multi_put"):
                items = dict(op.items or {})
                # Validate the whole request before writing any of it: a
                # batch with one fenced record writes nothing (the
                # group-commit flush relies on this all-or-nothing shape).
                for key, value in items.items():
                    self._check_put_fence(key, value)
                if op.op == "put":
                    for key, value in items.items():
                        self.storage.put(key, value)
                else:
                    self.storage.multi_put(items)
                return StorageOpResult()
            if op.op == "delete":
                for key in op.keys:
                    self.storage.delete(key)
                return StorageOpResult()
            if op.op == "multi_delete":
                self.storage.multi_delete(list(op.keys))
                return StorageOpResult()
            if op.op in ("list", "list_keys"):
                return StorageOpResult(keys=self.storage.list_keys(prefix=op.prefix))
        raise AftError(f"unknown storage op {op.op!r}")

    def _handle_storage(self, msg: m.StorageRequest) -> m.StorageResponse:
        self.metrics.counter("storage_ops").inc()
        with tr.span("router.storage", parent=msg.trace, op=msg.op):
            result = self._apply_op_sync(
                StorageOp(
                    op=msg.op, keys=tuple(msg.keys), items=msg.items or None, prefix=msg.prefix
                )
            )
        if result.error is not None:  # pragma: no cover - sync applier raises
            raise result.error
        return m.StorageResponse(values=result.values or {}, keys=result.keys or [])

    async def _handle_storage_batch(
        self, conn: RpcConnection, msg: m.StorageBatch
    ) -> m.StorageBatchResult:
        """Execute one batched op group, one reply frame, errors per op.

        Ops fan out under a bounded gather (mirroring the engine-side plan
        fan-out); the storage lock inside :meth:`_apply_op_sync` keeps each
        fence-check-then-write atomic exactly as on the single-op path.
        Wall-clock engines run their ops on the IO executor so a blocking
        backend cannot stall the router's event loop.
        """
        ops = m.decode_storage_ops(msg)
        conn.stats.batched_ops_received += len(ops)
        self.metrics.counter("storage_ops").inc(len(ops))
        self.metrics.counter("storage_batches").inc()

        def apply_checked(op: StorageOp) -> StorageOpResult:
            try:
                return self._apply_op_sync(op)
            except Exception as exc:
                return StorageOpResult(error=exc)

        with tr.span("router.storage_batch", parent=msg.trace, n_ops=len(ops)):
            if not self.storage.wall_clock_io:
                results = [apply_checked(op) for op in ops]
                return m.encode_storage_results(results)
            loop = asyncio.get_running_loop()
            limit = asyncio.Semaphore(self.storage_batch_concurrency)

            async def run_one(op: StorageOp) -> StorageOpResult:
                async with limit:
                    return await loop.run_in_executor(
                        runtime.io_executor(), runtime.marked(lambda: apply_checked(op))
                    )

            results = list(await asyncio.gather(*(run_one(op) for op in ops)))
            return m.encode_storage_results(results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-router", description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7400, help="0 picks a free port")
    parser.add_argument("--lease-duration", type=float, default=5.0)
    parser.add_argument("--heartbeat-interval", type=float, default=1.0)
    parser.add_argument(
        "--wire-format",
        choices=[FORMAT_BINARY, FORMAT_JSON],
        default=FORMAT_BINARY,
        help="most capable wire format to negotiate (json emulates a PR 7 router)",
    )
    parser.add_argument(
        "--no-storage-batching",
        action="store_true",
        help="do not advertise the storage_batch feature",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="enable tracing and append span/metrics JSONL dumps to this directory",
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        help="seconds between metrics snapshots (0 disables; implies tracing on)",
    )
    args = parser.parse_args(argv)

    async def run() -> None:
        router = RouterServer(
            host=args.host,
            port=args.port,
            lease_duration=args.lease_duration,
            heartbeat_interval=args.heartbeat_interval,
            wire_formats=(
                (FORMAT_JSON, FORMAT_BINARY)
                if args.wire_format == FORMAT_BINARY
                else (FORMAT_JSON,)
            ),
            enable_storage_batches=not args.no_storage_batching,
            observability=ObservabilityConfig(
                enabled=bool(args.trace_dir or args.metrics_interval > 0),
                trace_dir=args.trace_dir,
                metrics_interval=args.metrics_interval,
            ),
        )
        await router.start()
        # The ready line is machine-readable: harnesses parse the port from
        # it (mandatory with --port 0).
        print(f"REPRO_ROUTER_READY host={router.host} port={router.port}", flush=True)
        await router.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
