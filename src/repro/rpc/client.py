"""The asyncio Table-1 client for a router-fronted cluster.

:class:`AsyncRouterClient` speaks the ``client_*`` messages to a
``repro-router``: every transaction is pinned by the router to one serving
node and its operations are forwarded over that node's connection.  The
surface mirrors the paper's Table 1 — start / get / put / commit / abort —
plus the cluster probes tests and benchmarks need (``info``, ``nemesis``,
``wait_ready``).

This is the ``tcp://`` backend of :class:`repro.client.AftClient`; use that
facade unless you are writing asyncio-native code (the benchmark swarm
does, to keep thousands of open-loop sessions on one loop).
"""

from __future__ import annotations

import asyncio

from repro.errors import AftError
from repro.observability import trace as tr
from repro.rpc import messages as m
from repro.rpc.framing import FORMAT_BINARY, SUPPORTED_WIRE_FORMATS, RpcConnection, connect


class AsyncRouterClient:
    """Async Table-1 sessions against a ``repro-router``."""

    def __init__(self, conn: RpcConnection) -> None:
        self._conn = conn

    @classmethod
    async def connect(
        cls, host: str, port: int, wire_formats: tuple[str, ...] = SUPPORTED_WIRE_FORMATS
    ) -> "AsyncRouterClient":
        conn = await connect(host, port, name="client")
        # A ``kind="client"`` hello negotiates the wire format without
        # registering a cluster member.  An old router treats the unknown
        # kind the same way (no token granted) and acks without a
        # ``wire_format`` field, leaving the connection on JSON.
        try:
            ack = await conn.request(
                m.Hello(node_id="client", kind="client", wire_formats=list(wire_formats)),
                timeout=10.0,
            )
            if (
                getattr(ack, "wire_format", "") == FORMAT_BINARY
                and FORMAT_BINARY in wire_formats
            ):
                conn.wire_format = FORMAT_BINARY
        except Exception:
            # Negotiation is best-effort: the JSON wire always works.
            pass
        return cls(conn)

    async def close(self) -> None:
        await self._conn.close()

    @property
    def is_closed(self) -> bool:
        return self._conn.is_closed

    # ------------------------------------------------------------------ #
    # Table 1
    # ------------------------------------------------------------------ #
    async def start_transaction(self, txid: str | None = None) -> str:
        # The start span anchors the transaction's trace: once the reply
        # names the txid, the span re-keys onto the txid-derived trace id and
        # registers as the anchor every later per-op span parents under.
        with tr.span("client.start") as span:
            reply = await self._conn.request(
                m.ClientStart(txid=txid or "", trace=tr.wire_context())
            )
            if not isinstance(reply, m.ClientStarted):
                raise AftError(f"unexpected start reply {type(reply).__name__}")
            span.bind_txn(reply.txid)
            return reply.txid

    async def get_many(self, txid: str, keys: list[str]) -> dict[str, bytes | None]:
        with tr.span("client.get", txid=txid, n_keys=len(keys)):
            reply = await self._conn.request(
                m.ClientGet(txid=txid, keys=list(keys), trace=tr.wire_context())
            )
        values = getattr(reply, "values", {})
        return {key: values.get(key) for key in keys}

    async def get(self, txid: str, key: str) -> bytes | None:
        return (await self.get_many(txid, [key]))[key]

    async def put(self, txid: str, key: str, value: bytes | str) -> None:
        if isinstance(value, str):
            value = value.encode("utf-8")
        await self.put_many(txid, {key: value})

    async def put_many(self, txid: str, items: dict[str, bytes]) -> None:
        # Deliberately un-spanned end to end: a put only appends to the node's
        # write buffer (microseconds, no storage IO), and spanning it at every
        # layer added ~20% to the traced hot path for no timing signal.  The
        # buffered writes surface in the commit spans that persist them.
        await self._conn.request(m.ClientPut(txid=txid, items=dict(items)))

    async def commit_transaction(self, txid: str) -> str:
        try:
            with tr.span("client.commit", txid=txid):
                reply = await self._conn.request(m.ClientCommit(txid=txid, trace=tr.wire_context()))
        finally:
            tr.end_txn(txid)
        return getattr(reply, "commit_token", "")

    async def abort_transaction(self, txid: str) -> None:
        try:
            with tr.span("client.abort", txid=txid):
                await self._conn.request(m.ClientAbort(txid=txid, trace=tr.wire_context()))
        finally:
            tr.end_txn(txid)

    # ------------------------------------------------------------------ #
    # Cluster probes
    # ------------------------------------------------------------------ #
    async def info(self) -> m.InfoReply:
        reply = await self._conn.request(m.Info())
        if not isinstance(reply, m.InfoReply):
            raise AftError(f"unexpected info reply {type(reply).__name__}")
        return reply

    async def wait_ready(self, n_nodes: int, timeout: float = 30.0) -> m.InfoReply:
        """Poll ``info`` until ``n_nodes`` serving nodes are registered."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            info = await self.info()
            if len(info.nodes) >= n_nodes:
                return info
            if asyncio.get_running_loop().time() > deadline:
                raise AftError(
                    f"cluster not ready: {len(info.nodes)}/{n_nodes} nodes after {timeout}s"
                )
            await asyncio.sleep(0.05)

    async def nemesis(
        self,
        node_id: str,
        pause_heartbeats: bool = True,
        deliver_delay: float = 0.0,
        deliver_drop: bool = False,
        router_only: bool = False,
    ) -> None:
        """Inject a fault at ``node_id``: a membership-plane partition
        (``pause_heartbeats``) and/or router-side commit-frame faults
        (``deliver_delay`` seconds of added latency, or ``deliver_drop`` to
        sever the broadcast link).  ``router_only`` keeps the message at the
        router so frame faults do not disturb the node's heartbeat switch."""
        await self._conn.request(
            m.Nemesis(
                node_id=node_id,
                pause_heartbeats=pause_heartbeats,
                deliver_delay=deliver_delay,
                deliver_drop=deliver_drop,
                router_only=router_only,
            )
        )
