"""A storage engine that speaks to the router's shared storage service.

:class:`RemoteStorage` is the node process's view of cloud storage: every
operation becomes one :class:`~repro.rpc.messages.StorageRequest` on the
node's router connection.  It declares ``supports_native_async`` — the
``*_async`` twins await socket round trips directly, so
``execute_plan_async`` fans a plan stage's request groups out as plain
coroutines on the node's event loop with no executor hop.  That composes
the whole PR stack: IO plans (PR 1) route through the async core (PR 6)
onto real sockets (this PR).

The sync :class:`~repro.storage.base.StorageEngine` methods remain usable
*off* the event loop (they bridge with ``run_coroutine_threadsafe``), which
is how ``AftNode.bootstrap`` — a sync commit-set scan — runs in a worker
thread during node warm-up.  Calling them *on* the loop thread raises
instead of deadlocking.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Mapping

from repro.errors import StorageError
from repro.rpc.framing import RpcConnection
from repro.rpc.messages import (
    StorageRequest,
    StorageResponse,
    b64decode,
    b64encode,
    decode_values,
    encode_values,
)
from repro.storage.base import StorageEngine


class RemoteStorage(StorageEngine):
    """Durable key-value store proxied over an :class:`RpcConnection`."""

    name = "remote"
    wall_clock_io = True
    supports_native_async = True
    supports_batch_writes = True
    supports_batch_reads = True

    def __init__(self, conn: RpcConnection, loop: asyncio.AbstractEventLoop | None = None) -> None:
        super().__init__()
        self._conn = conn
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        #: Socket round-trip budget per storage op (generous: a stalled
        #: router should surface as an error, not a hung node).
        self.request_timeout: float | None = 30.0

    # ------------------------------------------------------------------ #
    async def _call(self, request: StorageRequest) -> StorageResponse:
        reply = await self._conn.request(request, timeout=self.request_timeout)
        if not isinstance(reply, StorageResponse):
            raise StorageError(f"unexpected storage reply {type(reply).__name__}")
        return reply

    def _bridge(self, coro):
        """Run an async op from sync code (must be off the event loop)."""
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            coro.close()
            raise StorageError(
                "sync RemoteStorage call on the event loop thread would deadlock; "
                "use the *_async twins (or call from a worker thread)"
            )
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ------------------------------------------------------------------ #
    # Native-async operations
    # ------------------------------------------------------------------ #
    async def get_async(self, key: str) -> bytes | None:
        reply = await self._call(StorageRequest(op="get", keys=[key]))
        value = reply.values.get(key)
        data = b64decode(value) if value is not None else None
        with self._lock:
            self.stats.reads += 1
            if data is not None:
                self.stats.items_read += 1
                self.stats.bytes_read += len(data)
        self._charge("read", total_bytes=len(data) if data else 0)
        return data

    async def put_async(self, key: str, value: bytes) -> None:
        await self._call(StorageRequest(op="put", items={key: b64encode(value)}))
        with self._lock:
            self.stats.writes += 1
            self.stats.items_written += 1
            self.stats.bytes_written += len(value)
        self._charge("write", total_bytes=len(value))

    async def delete_async(self, key: str) -> None:
        await self._call(StorageRequest(op="delete", keys=[key]))
        with self._lock:
            self.stats.deletes += 1
            self.stats.items_deleted += 1
        self._charge("delete")

    async def multi_get_async(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        keys = list(keys)
        if not keys:
            return {}
        reply = await self._call(StorageRequest(op="multi_get", keys=keys))
        values = decode_values(reply.values)
        total = sum(len(v) for v in values.values() if v is not None)
        with self._lock:
            self.stats.batch_reads += 1
            self.stats.items_read += sum(1 for v in values.values() if v is not None)
            self.stats.bytes_read += total
        self._charge("batch_read", n_items=max(1, len(keys)), total_bytes=total)
        return {key: values.get(key) for key in keys}

    async def multi_put_async(self, items: Mapping[str, bytes]) -> None:
        if not items:
            return
        total = sum(len(v) for v in items.values())
        await self._call(StorageRequest(op="multi_put", items=encode_values(items)))
        with self._lock:
            self.stats.batch_writes += 1
            self.stats.items_written += len(items)
            self.stats.bytes_written += total
        self._charge("batch_write", n_items=max(1, len(items)), total_bytes=total)

    async def multi_delete_async(self, keys: Iterable[str]) -> None:
        keys = list(keys)
        if not keys:
            return
        await self._call(StorageRequest(op="multi_delete", keys=keys))
        with self._lock:
            self.stats.deletes += 1
            self.stats.items_deleted += len(keys)
        self._charge("batch_write", n_items=max(1, len(keys)))

    async def list_keys_async(self, prefix: str = "") -> list[str]:
        reply = await self._call(StorageRequest(op="list_keys", prefix=prefix))
        with self._lock:
            self.stats.lists += 1
        self._charge("list", n_items=max(1, len(reply.keys)))
        return list(reply.keys)

    # ------------------------------------------------------------------ #
    # Sync facade (worker threads only)
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        return self._bridge(self.get_async(key))

    def put(self, key: str, value: bytes) -> None:
        self._bridge(self.put_async(key, value))

    def delete(self, key: str) -> None:
        self._bridge(self.delete_async(key))

    def list_keys(self, prefix: str = "") -> list[str]:
        return self._bridge(self.list_keys_async(prefix))

    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        return self._bridge(self.multi_get_async(list(keys)))

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        self._bridge(self.multi_put_async(dict(items)))

    def multi_delete(self, keys: Iterable[str]) -> None:
        self._bridge(self.multi_delete_async(list(keys)))
