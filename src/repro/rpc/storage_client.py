"""A storage engine that speaks to the router's shared storage service.

:class:`RemoteStorage` is the node process's view of cloud storage.  It
declares ``supports_native_async`` — the ``*_async`` twins await socket
round trips directly, so ``execute_plan_async`` fans a plan stage's request
groups out as plain coroutines on the node's event loop with no executor
hop.  That composes the whole PR stack: IO plans (PR 1) route through the
async core (PR 6) onto real sockets (PR 7).

On top of that sits the wire hot-path optimisation: when the router
advertised the ``storage_batch`` feature (see the ``hello`` negotiation),
``supports_storage_batches`` flips on and every operation routes through a
cross-transaction :class:`_OpCoalescer`.  Ops submitted within one
event-loop tick (or a configurable window) are packed into a single
``storage_batch`` frame — an IO-plan stage's whole request group crosses
the wire as one round trip, and independent single ops from *concurrent*
transactions opportunistically share frames.  Per-op errors come back as
data, so a fenced commit-record write fails exactly its own waiter.

Accounting rule: the layer that returns to the caller does the stats and
latency accounting — the single-op twins account for themselves, the
batched ``execute_group_async`` accounts per op for the plan path, and the
submission machinery (`_submit`, the coalescer) never accounts.  Nothing is
double-counted whichever path an op takes.

The sync :class:`~repro.storage.base.StorageEngine` methods remain usable
*off* the event loop (they bridge with ``run_coroutine_threadsafe``), which
is how ``AftNode.bootstrap`` — a sync commit-set scan — runs in a worker
thread during node warm-up.  Calling them *on* the loop thread raises
instead of deadlocking.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Mapping

from repro.errors import StorageError
from repro.observability import trace as tr
from repro.rpc import messages as m
from repro.rpc.framing import RpcConnection
from repro.rpc.messages import StorageRequest, StorageResponse
from repro.storage.base import StorageEngine, StorageOp, StorageOpResult

#: Default socket round-trip budget per storage op (generous: a stalled
#: router should surface as an error, not a hung node).  Configurable per
#: deployment via ``AftConfig.storage_request_timeout``.
DEFAULT_REQUEST_TIMEOUT = 30.0


class _OpCoalescer:
    """Packs concurrently submitted storage ops into shared wire frames.

    ``submit`` parks the op and schedules a flush; every op that lands
    before the flush callback runs — ops from the same plan stage *and* from
    other transactions interleaved on the loop — rides the same
    ``storage_batch`` frame.  The default window of 0 flushes on the next
    event-loop tick (``call_soon``): no added latency, pure piggybacking on
    natural concurrency.  A positive window trades that latency for bigger
    frames via ``call_later``.
    """

    def __init__(self, conn: RpcConnection, owner: "RemoteStorage", window: float, max_ops: int) -> None:
        self._conn = conn
        self._owner = owner
        self._window = window
        self._max_ops = max(1, max_ops)
        self._pending_ops: list[StorageOp] = []
        self._pending_futures: list[asyncio.Future] = []
        self._flush_handle: asyncio.TimerHandle | None = None

    def submit(self, op: StorageOp) -> asyncio.Future:
        """Park one op; the returned future resolves to its StorageOpResult."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending_ops.append(op)
        self._pending_futures.append(future)
        if len(self._pending_ops) >= self._max_ops:
            self._flush(loop)
        elif self._flush_handle is None:
            if self._window > 0:
                self._flush_handle = loop.call_later(self._window, self._flush, loop)
            else:
                self._flush_handle = loop.call_soon(self._flush, loop)
        return future

    def submit_many(self, ops: list[StorageOp]) -> list[asyncio.Future]:
        return [self.submit(op) for op in ops]

    def _flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending_ops:
            return
        ops, self._pending_ops = self._pending_ops, []
        futures, self._pending_futures = self._pending_futures, []
        loop.create_task(self._send_batch(ops, futures))

    async def _send_batch(self, ops: list[StorageOp], futures: list[asyncio.Future]) -> None:
        try:
            # The flush span parents under whichever submitter's context the
            # flush callback inherited — a shared frame belongs to one trace
            # at most, and the per-op waiters carry their own spans anyway.
            with tr.span("storage.flush", n_ops=len(ops)):
                batch = m.encode_storage_ops(ops)
                batch.trace = tr.wire_context()
                self._conn.stats.batched_ops_sent += len(ops)
                reply = await self._conn.request(batch, timeout=self._owner.request_timeout)
            if not isinstance(reply, m.StorageBatchResult):
                raise StorageError(f"unexpected batch reply {type(reply).__name__}")
            results = m.decode_storage_results(reply)
            if len(results) != len(ops):
                raise StorageError(
                    f"batch reply carried {len(results)} results for {len(ops)} ops"
                )
        except Exception as exc:
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(futures, results):
            if not future.done():
                future.set_result(result)


class RemoteStorage(StorageEngine):
    """Durable key-value store proxied over an :class:`RpcConnection`."""

    name = "remote"
    wall_clock_io = True
    supports_native_async = True
    supports_batch_writes = True
    supports_batch_reads = True

    def __init__(
        self,
        conn: RpcConnection,
        loop: asyncio.AbstractEventLoop | None = None,
        request_timeout: float | None = DEFAULT_REQUEST_TIMEOUT,
        coalesce_window: float = 0.0,
        coalesce_max_ops: int = 128,
    ) -> None:
        super().__init__()
        self._conn = conn
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        #: Socket round-trip budget per storage op / batch.
        self.request_timeout: float | None = request_timeout
        self._coalescer = _OpCoalescer(conn, self, coalesce_window, coalesce_max_ops)
        #: Flipped on by the node entrypoint once the ``hello`` negotiation
        #: confirms the router accepts ``storage_batch`` frames.
        self.supports_storage_batches = False

    # ------------------------------------------------------------------ #
    async def _call(self, request: StorageRequest) -> StorageResponse:
        with tr.span("storage.rpc", op=request.op):
            request.trace = tr.wire_context()
            reply = await self._conn.request(request, timeout=self.request_timeout)
        if not isinstance(reply, StorageResponse):
            raise StorageError(f"unexpected storage reply {type(reply).__name__}")
        return reply

    async def _submit(self, op: StorageOp) -> StorageOpResult:
        """Route one op to the wire (coalesced or standalone).  No accounting."""
        if self.supports_storage_batches:
            return await self._coalescer.submit(op)
        return await self._request_single(op)

    async def _request_single(self, op: StorageOp) -> StorageOpResult:
        """Ship one op as its own ``storage`` frame (the PR 7 wire shape)."""
        try:
            if op.op == "get":
                reply = await self._call(StorageRequest(op="get", keys=list(op.keys)))
                return StorageOpResult(values={op.keys[0]: reply.values.get(op.keys[0])})
            if op.op == "multi_get":
                reply = await self._call(StorageRequest(op="multi_get", keys=list(op.keys)))
                return StorageOpResult(values={key: reply.values.get(key) for key in op.keys})
            if op.op == "put":
                await self._call(StorageRequest(op="put", items=dict(op.items or {})))
                return StorageOpResult()
            if op.op == "multi_put":
                await self._call(StorageRequest(op="multi_put", items=dict(op.items or {})))
                return StorageOpResult()
            if op.op == "multi_delete":
                await self._call(StorageRequest(op="multi_delete", keys=list(op.keys)))
                return StorageOpResult()
            if op.op == "list":
                reply = await self._call(StorageRequest(op="list_keys", prefix=op.prefix))
                return StorageOpResult(keys=list(reply.keys))
            raise StorageError(f"unknown storage op {op.op!r}")
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            return StorageOpResult(error=exc)

    def _bridge(self, coro):
        """Run an async op from sync code (must be off the event loop)."""
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            coro.close()
            raise StorageError(
                "sync RemoteStorage call on the event loop thread would deadlock; "
                "use the *_async twins (or call from a worker thread)"
            )
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ------------------------------------------------------------------ #
    # Accounting (stats + metered latency), one call per completed op
    # ------------------------------------------------------------------ #
    def _account_op(self, op: StorageOp, result: StorageOpResult) -> None:
        if op.op == "get":
            data = (result.values or {}).get(op.keys[0])
            with self._lock:
                self.stats.reads += 1
                if data is not None:
                    self.stats.items_read += 1
                    self.stats.bytes_read += len(data)
            self._charge("read", total_bytes=len(data) if data else 0)
        elif op.op == "multi_get":
            values = result.values or {}
            total = sum(len(v) for v in values.values() if v is not None)
            with self._lock:
                self.stats.batch_reads += 1
                self.stats.items_read += sum(1 for v in values.values() if v is not None)
                self.stats.bytes_read += total
            self._charge("batch_read", n_items=max(1, len(op.keys)), total_bytes=total)
        elif op.op == "put":
            total = sum(len(v) for v in (op.items or {}).values())
            with self._lock:
                self.stats.writes += 1
                self.stats.items_written += 1
                self.stats.bytes_written += total
            self._charge("write", total_bytes=total)
        elif op.op == "multi_put":
            items = op.items or {}
            total = sum(len(v) for v in items.values())
            with self._lock:
                self.stats.batch_writes += 1
                self.stats.items_written += len(items)
                self.stats.bytes_written += total
            self._charge("batch_write", n_items=max(1, len(items)), total_bytes=total)
        elif op.op == "multi_delete":
            with self._lock:
                self.stats.deletes += 1
                self.stats.items_deleted += len(op.keys)
            self._charge("batch_write", n_items=max(1, len(op.keys)))
        elif op.op == "list":
            with self._lock:
                self.stats.lists += 1
            self._charge("list", n_items=max(1, len(result.keys or [])))

    # ------------------------------------------------------------------ #
    # Storage-op groups: one wire frame per plan stage (plus stowaways)
    # ------------------------------------------------------------------ #
    async def execute_group_async(self, ops: list[StorageOp]) -> list[StorageOpResult]:
        if not self.supports_storage_batches:
            return await super().execute_group_async(ops)
        results = list(await asyncio.gather(*self._coalescer.submit_many(ops)))
        for op, result in zip(ops, results):
            if result.error is None:
                self._account_op(op, result)
        return results

    # ------------------------------------------------------------------ #
    # Native-async operations
    # ------------------------------------------------------------------ #
    async def get_async(self, key: str) -> bytes | None:
        op = StorageOp(op="get", keys=(key,))
        result = await self._submit(op)
        if result.error is not None:
            raise result.error
        self._account_op(op, result)
        return (result.values or {}).get(key)

    async def put_async(self, key: str, value: bytes) -> None:
        op = StorageOp(op="put", keys=(key,), items={key: value})
        result = await self._submit(op)
        if result.error is not None:
            raise result.error
        self._account_op(op, result)

    async def delete_async(self, key: str) -> None:
        await self._call(StorageRequest(op="delete", keys=[key]))
        with self._lock:
            self.stats.deletes += 1
            self.stats.items_deleted += 1
        self._charge("delete")

    async def multi_get_async(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        keys = list(keys)
        if not keys:
            return {}
        op = StorageOp(op="multi_get", keys=tuple(keys))
        result = await self._submit(op)
        if result.error is not None:
            raise result.error
        self._account_op(op, result)
        values = result.values or {}
        return {key: values.get(key) for key in keys}

    async def multi_put_async(self, items: Mapping[str, bytes]) -> None:
        if not items:
            return
        op = StorageOp(op="multi_put", keys=tuple(items), items=dict(items))
        result = await self._submit(op)
        if result.error is not None:
            raise result.error
        self._account_op(op, result)

    async def multi_delete_async(self, keys: Iterable[str]) -> None:
        keys = list(keys)
        if not keys:
            return
        op = StorageOp(op="multi_delete", keys=tuple(keys))
        result = await self._submit(op)
        if result.error is not None:
            raise result.error
        self._account_op(op, result)

    async def list_keys_async(self, prefix: str = "") -> list[str]:
        op = StorageOp(op="list", prefix=prefix)
        result = await self._submit(op)
        if result.error is not None:
            raise result.error
        self._account_op(op, result)
        return list(result.keys or [])

    # ------------------------------------------------------------------ #
    # Sync facade (worker threads only)
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        return self._bridge(self.get_async(key))

    def put(self, key: str, value: bytes) -> None:
        self._bridge(self.put_async(key, value))

    def delete(self, key: str) -> None:
        self._bridge(self.delete_async(key))

    def list_keys(self, prefix: str = "") -> list[str]:
        return self._bridge(self.list_keys_async(prefix))

    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        return self._bridge(self.multi_get_async(list(keys)))

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        self._bridge(self.multi_put_async(dict(items)))

    def multi_delete(self, keys: Iterable[str]) -> None:
        self._bridge(self.multi_delete_async(list(keys)))
