"""Versioned wire schemas for the distributed runtime.

Every payload crossing a socket is a dataclass here, serialised to a plain
JSON object by :func:`encode_body` and reconstructed by :func:`decode_body`.
Two compatibility rules make node/router binaries from adjacent versions
interoperate:

* **Unknown fields are ignored on decode.**  A newer peer may add fields;
  an older peer simply drops them (``from_body`` filters the body against
  its declared dataclass fields).
* **New fields must carry defaults.**  An older peer's message omits them;
  the dataclass default fills the gap.

Messages carry a schema ``VERSION`` (bumped only on *incompatible* change —
a removed or re-typed field); the frame envelope transports it alongside the
``type`` tag, and a peer receiving a message whose major version it does not
know rejects the frame rather than mis-parsing it.

**Bulk bytes are first-class.**  Fields holding storage payloads or
serialised commit records (declared per message via ``BYTES_MAP_FIELDS`` /
``BYTES_LIST_FIELDS``) carry raw ``bytes`` in memory.  How they cross the
wire depends on the negotiated frame format (:mod:`repro.rpc.framing`):

* the legacy **JSON** wire base64-encodes them in place
  (:func:`body_to_jsonable` / :func:`body_from_jsonable`) — ~33% size
  inflation plus encode cost, kept for compatibility with old peers;
* the **binary** wire moves them into a raw payload section after the JSON
  header, replaced in the header by compact ``[offset, length]`` references
  (:func:`split_bulk` / :func:`join_bulk`) — no base64, no JSON string
  escaping, and decode slices straight out of the frame buffer.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Mapping

from repro import errors
from repro.core.commit_set import CommitRecord
from repro.storage.base import StorageOp, StorageOpResult

#: Protocol-level version of the frame envelope itself.
WIRE_VERSION = 1


def b64encode(value: bytes) -> str:
    return base64.b64encode(value).decode("ascii")


def b64decode(value: str) -> bytes:
    return base64.b64decode(value.encode("ascii"))


def _jsonable_values(values: Mapping[str, bytes | None]) -> dict[str, str | None]:
    """Base64 a key->bytes-or-missing mapping for the JSON wire."""
    return {key: (b64encode(v) if v is not None else None) for key, v in values.items()}


def _values_from_jsonable(values: Mapping[str, str | None]) -> dict[str, bytes | None]:
    return {key: (b64decode(v) if v is not None else None) for key, v in values.items()}


def encode_records(records: list[CommitRecord]) -> list[bytes]:
    """Commit records as their existing binary codec (raw bytes on the wire)."""
    return [record.to_bytes() for record in records]


def decode_records(blobs: list[bytes]) -> list[CommitRecord]:
    return [CommitRecord.from_bytes(bytes(blob)) for blob in blobs]


@dataclass
class WireMessage:
    """Base class: a typed, versioned JSON-object payload."""

    #: Wire tag, unique across the protocol (set by every subclass).
    TYPE: ClassVar[str] = ""
    #: Schema version of this message type.
    VERSION: ClassVar[int] = 1
    #: Fields holding ``dict[str, bytes | None]`` payload maps.  These are the
    #: frame's *bulk section*: base64 on the JSON wire, raw payload bytes on
    #: the binary wire.
    BYTES_MAP_FIELDS: ClassVar[tuple[str, ...]] = ()
    #: Fields holding ``list[bytes]`` blob sequences (same bulk treatment).
    BYTES_LIST_FIELDS: ClassVar[tuple[str, ...]] = ()

    def to_body(self) -> dict[str, Any]:
        """Serialise to a plain body object (bulk fields stay raw bytes)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "WireMessage":
        """Reconstruct from a body object, ignoring unknown fields.

        The filter is the forward-compatibility contract: bodies produced by
        a newer schema simply lose their extra fields here instead of
        crashing the older binary.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in body.items() if key in known})


# --------------------------------------------------------------------- #
# Membership / fencing (node <-> router)
# --------------------------------------------------------------------- #
@dataclass
class Hello(WireMessage):
    """Peer registration. ``kind`` is ``"node"``, ``"standby"``, or ``"client"``.

    ``wire_formats`` advertises the frame formats this peer can *decode*
    (always including ``"json"``).  An old peer omits the field — the default
    — and therefore never gets a binary frame; an old *receiver* drops the
    unknown field and replies without ``wire_format``, which pins the
    connection to JSON.  Negotiation costs nothing beyond the fields.
    """

    TYPE: ClassVar[str] = "hello"
    node_id: str = ""
    kind: str = "node"
    wire_formats: list = field(default_factory=lambda: ["json"])


@dataclass
class HelloAck(WireMessage):
    """Router's admission reply: fencing token epoch, lease cadence, and the
    negotiated wire capabilities (``wire_format`` both peers will send;
    ``features`` the optional protocol extensions the router serves, e.g.
    ``"storage_batch"``)."""

    TYPE: ClassVar[str] = "hello_ack"
    node_id: str = ""
    #: Epoch of the node's fencing token (0 for standbys — no token until
    #: activation).
    epoch: int = 0
    lease_duration: float = 5.0
    heartbeat_interval: float = 1.0
    wire_format: str = "json"
    features: list = field(default_factory=list)


@dataclass
class Heartbeat(WireMessage):
    """Lease renewal (a notification, no reply expected)."""

    TYPE: ClassVar[str] = "heartbeat"
    node_id: str = ""


@dataclass
class Activate(WireMessage):
    """Router -> standby: promote into service with a fresh fencing token."""

    TYPE: ClassVar[str] = "activate"
    node_id: str = ""
    epoch: int = 0


@dataclass
class Ok(WireMessage):
    """Generic empty success reply."""

    TYPE: ClassVar[str] = "ok"


# --------------------------------------------------------------------- #
# Commit stream (node <-> router hub)
# --------------------------------------------------------------------- #
@dataclass
class PublishCommits(WireMessage):
    """Node -> router: recently committed records for fan-out (raw blobs)."""

    TYPE: ClassVar[str] = "publish_commits"
    BYTES_LIST_FIELDS: ClassVar[tuple[str, ...]] = ("records",)
    node_id: str = ""
    records: list = field(default_factory=list)
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class DeliverCommits(WireMessage):
    """Router -> node: peer commit records to merge into the metadata cache."""

    TYPE: ClassVar[str] = "deliver_commits"
    BYTES_LIST_FIELDS: ClassVar[tuple[str, ...]] = ("records",)
    records: list = field(default_factory=list)


# --------------------------------------------------------------------- #
# Storage service (node -> router)
# --------------------------------------------------------------------- #
@dataclass
class StorageRequest(WireMessage):
    """One storage-engine operation against the router's shared store.

    ``op`` is one of ``get`` / ``put`` / ``delete`` / ``multi_get`` /
    ``multi_put`` / ``multi_delete`` / ``list_keys``.  ``keys`` carries the
    read/delete targets, ``items`` the writes (raw bytes), ``prefix``
    the listing prefix.
    """

    TYPE: ClassVar[str] = "storage"
    BYTES_MAP_FIELDS: ClassVar[tuple[str, ...]] = ("items",)
    op: str = "get"
    keys: list = field(default_factory=list)
    items: dict = field(default_factory=dict)
    prefix: str = ""
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class StorageResponse(WireMessage):
    """Result of a :class:`StorageRequest` (raw values, misses None)."""

    TYPE: ClassVar[str] = "storage_result"
    BYTES_MAP_FIELDS: ClassVar[tuple[str, ...]] = ("values",)
    values: dict = field(default_factory=dict)
    keys: list = field(default_factory=list)


@dataclass
class StorageBatch(WireMessage):
    """A whole group of storage ops in one frame (one round trip).

    ``ops`` is a list of compact descriptors ``{"op", "keys", "prefix",
    "v"}`` where ``v`` holds per-key indexes into the shared ``blobs``
    table for write values.  The flat blob table is what lets the batch ride
    the binary wire's bulk section untouched; build/parse through
    :func:`encode_storage_ops` / :func:`decode_storage_ops`.
    """

    TYPE: ClassVar[str] = "storage_batch"
    BYTES_LIST_FIELDS: ClassVar[tuple[str, ...]] = ("blobs",)
    ops: list = field(default_factory=list)
    blobs: list = field(default_factory=list)
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class StorageBatchResult(WireMessage):
    """Per-op results of a :class:`StorageBatch`.

    Each entry of ``results`` mirrors its request op: ``{"keys", "v"}`` for
    value-returning ops (``v`` indexes into ``blobs``, ``None`` marks a
    miss), ``{"listing"}`` for ``list_keys``, ``{"error"}`` for an op that
    failed — errors are *per op*, so one fenced commit-record write in a
    coalesced batch fails only its own waiter.
    """

    TYPE: ClassVar[str] = "storage_batch_result"
    BYTES_LIST_FIELDS: ClassVar[tuple[str, ...]] = ("blobs",)
    results: list = field(default_factory=list)
    blobs: list = field(default_factory=list)


# --------------------------------------------------------------------- #
# Client sessions (client <-> router) and their node-side forwards
# --------------------------------------------------------------------- #
@dataclass
class ClientStart(WireMessage):
    """Client -> router: open a transaction (router pins it to a node)."""

    TYPE: ClassVar[str] = "client_start"
    txid: str = ""
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class ClientStarted(WireMessage):
    TYPE: ClassVar[str] = "client_started"
    txid: str = ""
    node_id: str = ""


@dataclass
class ClientGet(WireMessage):
    TYPE: ClassVar[str] = "client_get"
    txid: str = ""
    keys: list = field(default_factory=list)
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class ClientValues(WireMessage):
    TYPE: ClassVar[str] = "client_values"
    BYTES_MAP_FIELDS: ClassVar[tuple[str, ...]] = ("values",)
    values: dict = field(default_factory=dict)


@dataclass
class ClientPut(WireMessage):
    """Buffered writes (raw bytes); several keys per call are allowed."""

    TYPE: ClassVar[str] = "client_put"
    BYTES_MAP_FIELDS: ClassVar[tuple[str, ...]] = ("items",)
    txid: str = ""
    items: dict = field(default_factory=dict)
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class ClientCommit(WireMessage):
    TYPE: ClassVar[str] = "client_commit"
    txid: str = ""
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class ClientCommitted(WireMessage):
    """Commit acknowledgement: the commit id as a ``TransactionId`` token."""

    TYPE: ClassVar[str] = "client_committed"
    txid: str = ""
    commit_token: str = ""


@dataclass
class ClientAbort(WireMessage):
    TYPE: ClassVar[str] = "client_abort"
    txid: str = ""
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class TxnStart(WireMessage):
    """Router -> node forwards of the client session ops (same shapes)."""

    TYPE: ClassVar[str] = "txn_start"
    txid: str = ""
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class TxnGet(WireMessage):
    TYPE: ClassVar[str] = "txn_get"
    txid: str = ""
    keys: list = field(default_factory=list)
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class TxnPut(WireMessage):
    TYPE: ClassVar[str] = "txn_put"
    BYTES_MAP_FIELDS: ClassVar[tuple[str, ...]] = ("items",)
    txid: str = ""
    items: dict = field(default_factory=dict)
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class TxnCommit(WireMessage):
    TYPE: ClassVar[str] = "txn_commit"
    txid: str = ""
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


@dataclass
class TxnAbort(WireMessage):
    TYPE: ClassVar[str] = "txn_abort"
    txid: str = ""
    #: Optional causal-trace context ("trace_id:parent_span_id").
    #: Old peers drop the unknown field on decode; empty means untraced.
    trace: str = ""


# --------------------------------------------------------------------- #
# Introspection and fault injection
# --------------------------------------------------------------------- #
@dataclass
class Info(WireMessage):
    """Cluster readiness probe (clients poll this while the fleet boots)."""

    TYPE: ClassVar[str] = "info"


@dataclass
class InfoReply(WireMessage):
    TYPE: ClassVar[str] = "info_reply"
    nodes: list = field(default_factory=list)
    standbys: list = field(default_factory=list)
    epoch: int = 0
    commits: int = 0
    #: Per-connection wire counters, node_id -> {frames_in, frames_out,
    #: bytes_in, bytes_out, batched_ops_in, batched_ops_out, drains,
    #: wire_format} — the router's view of each peer's protocol traffic.
    wire: dict = field(default_factory=dict)
    #: The router's metrics-registry snapshot (counters/gauges/histograms
    #: from :mod:`repro.observability.metrics`) — the over-the-wire scrape.
    #: Old routers omit the field; old clients drop it.
    metrics: dict = field(default_factory=dict)


@dataclass
class Nemesis(WireMessage):
    """Fault injection: degrade ``node_id``'s view of the cluster.

    ``pause_heartbeats`` models the classic lease false positive — the node
    keeps its data-plane connection (a long GC pause, an asymmetric
    partition) but its lease renewals stop, so the router declares it dead
    while it is still able to issue late commit-record writes.

    ``deliver_delay`` / ``deliver_drop`` act on the *router* side: commit
    deliver frames bound for the node are delayed by the given seconds, or
    dropped entirely — a slow or partitioned broadcast link.  When
    ``router_only`` is set the message is not forwarded to the node process
    at all, so frame faults compose with (and heal independently of) the
    heartbeat switch.  Old routers/nodes ignore the extra fields
    (unknown-field-tolerant decode), degrading to the heartbeat-only
    nemesis.
    """

    TYPE: ClassVar[str] = "nemesis"
    node_id: str = ""
    pause_heartbeats: bool = False
    deliver_delay: float = 0.0
    deliver_drop: bool = False
    router_only: bool = False


# --------------------------------------------------------------------- #
# Codec
# --------------------------------------------------------------------- #
MESSAGE_TYPES: dict[str, type[WireMessage]] = {
    cls.TYPE: cls
    for cls in (
        Hello,
        HelloAck,
        Heartbeat,
        Activate,
        Ok,
        PublishCommits,
        DeliverCommits,
        StorageRequest,
        StorageResponse,
        StorageBatch,
        StorageBatchResult,
        ClientStart,
        ClientStarted,
        ClientGet,
        ClientValues,
        ClientPut,
        ClientCommit,
        ClientCommitted,
        ClientAbort,
        TxnStart,
        TxnGet,
        TxnPut,
        TxnCommit,
        TxnAbort,
        Info,
        InfoReply,
        Nemesis,
    )
}


def encode_body(message: WireMessage) -> tuple[str, int, dict[str, Any]]:
    """Return the ``(type, version, body)`` triple the frame envelope carries."""
    return message.TYPE, message.VERSION, message.to_body()


def decode_body(msg_type: str, version: int, body: Mapping[str, Any]) -> WireMessage:
    """Reconstruct a message, tolerating unknown fields and newer minor schemas.

    An unknown *type* raises — the peer speaks a protocol we do not — but an
    unknown *field* within a known type is silently dropped, which is what
    lets adjacent versions interoperate.
    """
    cls = MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise errors.AftError(f"unknown wire message type {msg_type!r}")
    del version  # schema versions are additive today; kept in the envelope
    return cls.from_body(body)


# --------------------------------------------------------------------- #
# Bulk-field conversions (used by the frame codecs in repro.rpc.framing)
# --------------------------------------------------------------------- #
def _bulk_spec(msg_type: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    cls = MESSAGE_TYPES.get(msg_type)
    if cls is None:
        return (), ()
    return cls.BYTES_MAP_FIELDS, cls.BYTES_LIST_FIELDS


def body_to_jsonable(msg_type: str, body: Mapping[str, Any]) -> dict[str, Any]:
    """JSON-wire view of a body: bulk bytes become base64 strings in place."""
    map_fields, list_fields = _bulk_spec(msg_type)
    if not map_fields and not list_fields:
        return dict(body)
    out = dict(body)
    for name in map_fields:
        if name in out:
            out[name] = _jsonable_values(out[name])
    for name in list_fields:
        if name in out:
            out[name] = [b64encode(bytes(blob)) for blob in out[name]]
    return out


def body_from_jsonable(msg_type: str, body: Mapping[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`body_to_jsonable` (unknown types pass through)."""
    map_fields, list_fields = _bulk_spec(msg_type)
    if not map_fields and not list_fields:
        return dict(body)
    out = dict(body)
    for name in map_fields:
        if name in out:
            out[name] = _values_from_jsonable(out[name])
    for name in list_fields:
        if name in out:
            out[name] = [b64decode(blob) for blob in out[name]]
    return out


def split_bulk(
    msg_type: str, body: Mapping[str, Any]
) -> tuple[dict[str, Any], list[bytes], int]:
    """Binary-wire split: bulk bytes move to a payload section.

    Returns ``(header_body, chunks, payload_size)`` where bulk fields in
    ``header_body`` are replaced by ``[offset, length]`` references (``None``
    for missing values) into the concatenation of ``chunks``.
    """
    map_fields, list_fields = _bulk_spec(msg_type)
    header = dict(body)
    chunks: list[bytes] = []
    offset = 0

    def ref(blob: bytes) -> list[int]:
        nonlocal offset
        chunks.append(blob)
        entry = [offset, len(blob)]
        offset += len(blob)
        return entry

    for name in map_fields:
        if name in header:
            header[name] = {
                key: (ref(value) if value is not None else None)
                for key, value in header[name].items()
            }
    for name in list_fields:
        if name in header:
            header[name] = [ref(bytes(blob)) for blob in header[name]]
    return header, chunks, offset


def join_bulk(
    msg_type: str, header_body: Mapping[str, Any], payload: memoryview
) -> dict[str, Any]:
    """Inverse of :func:`split_bulk`: resolve references against ``payload``."""
    map_fields, list_fields = _bulk_spec(msg_type)
    body = dict(header_body)

    def deref(entry: list[int]) -> bytes:
        start, length = entry
        return bytes(payload[start : start + length])

    for name in map_fields:
        if name in body:
            body[name] = {
                key: (deref(entry) if entry is not None else None)
                for key, entry in body[name].items()
            }
    for name in list_fields:
        if name in body:
            body[name] = [deref(entry) for entry in body[name]]
    return body


# --------------------------------------------------------------------- #
# Storage-batch construction/parsing (the op <-> descriptor mapping)
# --------------------------------------------------------------------- #
def encode_storage_ops(ops: list[StorageOp]) -> StorageBatch:
    """Pack a group of storage ops into one :class:`StorageBatch` frame."""
    blobs: list[bytes] = []
    descriptors: list[dict[str, Any]] = []
    for op in ops:
        desc: dict[str, Any] = {"op": op.op, "keys": list(op.keys)}
        if op.prefix:
            desc["prefix"] = op.prefix
        if op.items is not None:
            indexes = []
            for key in op.keys:
                blobs.append(op.items[key])
                indexes.append(len(blobs) - 1)
            desc["v"] = indexes
        descriptors.append(desc)
    return StorageBatch(ops=descriptors, blobs=blobs)


def decode_storage_ops(batch: StorageBatch) -> list[StorageOp]:
    ops: list[StorageOp] = []
    for desc in batch.ops:
        keys = tuple(desc.get("keys", ()))
        items = None
        if "v" in desc:
            items = {key: bytes(batch.blobs[index]) for key, index in zip(keys, desc["v"])}
        ops.append(
            StorageOp(op=desc.get("op", "get"), keys=keys, items=items, prefix=desc.get("prefix", ""))
        )
    return ops


def encode_storage_results(results: list[StorageOpResult]) -> StorageBatchResult:
    """Pack per-op outcomes (values / listings / errors) into one reply frame."""
    blobs: list[bytes] = []
    descriptors: list[dict[str, Any]] = []
    for result in results:
        if result.error is not None:
            descriptors.append({"error": error_to_wire(result.error)})
            continue
        desc: dict[str, Any] = {}
        if result.values is not None:
            keys, refs = [], []
            for key, value in result.values.items():
                keys.append(key)
                if value is None:
                    refs.append(None)
                else:
                    blobs.append(value)
                    refs.append(len(blobs) - 1)
            desc["keys"] = keys
            desc["v"] = refs
        if result.keys is not None:
            desc["listing"] = list(result.keys)
        descriptors.append(desc)
    return StorageBatchResult(results=descriptors, blobs=blobs)


def decode_storage_results(reply: StorageBatchResult) -> list[StorageOpResult]:
    results: list[StorageOpResult] = []
    for desc in reply.results:
        if "error" in desc:
            results.append(StorageOpResult(error=error_from_wire(desc["error"])))
            continue
        values = None
        if "v" in desc:
            values = {
                key: (bytes(reply.blobs[index]) if index is not None else None)
                for key, index in zip(desc.get("keys", ()), desc["v"])
            }
        listing = list(desc["listing"]) if "listing" in desc else None
        results.append(StorageOpResult(values=values, keys=listing))
    return results


# --------------------------------------------------------------------- #
# Error transport
# --------------------------------------------------------------------- #
#: Exception types that survive the wire round trip as themselves.  The far
#: side of an RPC re-raises the *same* class, so e.g. a fenced node's commit
#: failure surfaces as FencedNodeError three hops away from the fence.
_ERROR_KINDS: dict[str, type[Exception]] = {
    "fenced": errors.FencedNodeError,
    "transaction": errors.TransactionError,
    "unknown_transaction": errors.UnknownTransactionError,
    "transaction_aborted": errors.TransactionAbortedError,
    "transaction_committed": errors.TransactionAlreadyCommittedError,
    "atomic_read": errors.AtomicReadError,
    "storage": errors.StorageError,
    "node_stopped": errors.NodeStoppedError,
    "node_draining": errors.NodeDrainingError,
    "no_available_node": errors.NoAvailableNodeError,
    "aft": errors.AftError,
}
_KIND_BY_TYPE = {cls: kind for kind, cls in _ERROR_KINDS.items()}


def error_to_wire(exc: BaseException) -> dict[str, str]:
    """Encode an exception for an error reply frame."""
    for cls in type(exc).__mro__:
        kind = _KIND_BY_TYPE.get(cls)
        if kind is not None:
            return {"kind": kind, "message": str(exc)}
    return {"kind": "error", "message": f"{type(exc).__name__}: {exc}"}


def error_from_wire(payload: Mapping[str, str]) -> Exception:
    """Reconstruct the closest matching exception class from an error reply."""
    from repro.rpc.framing import RpcError

    kind = payload.get("kind", "error")
    message = payload.get("message", "remote error")
    cls = _ERROR_KINDS.get(kind)
    if cls is None:
        return RpcError(message)
    return cls(message)
