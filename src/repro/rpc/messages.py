"""Versioned wire schemas for the distributed runtime.

Every payload crossing a socket is a dataclass here, serialised to a plain
JSON object by :func:`encode_body` and reconstructed by :func:`decode_body`.
Two compatibility rules make node/router binaries from adjacent versions
interoperate:

* **Unknown fields are ignored on decode.**  A newer peer may add fields;
  an older peer simply drops them (``from_body`` filters the body against
  its declared dataclass fields).
* **New fields must carry defaults.**  An older peer's message omits them;
  the dataclass default fills the gap.

Messages carry a schema ``VERSION`` (bumped only on *incompatible* change —
a removed or re-typed field); the frame envelope transports it alongside the
``type`` tag, and a peer receiving a message whose major version it does not
know rejects the frame rather than mis-parsing it.

Binary values (storage payloads, serialised commit records) travel as
base64 strings — frames are JSON end to end, chosen over msgpack because the
toolchain bakes in no third-party codec and the paper's workloads are
metadata-dominated.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Mapping

from repro import errors
from repro.core.commit_set import CommitRecord

#: Protocol-level version of the frame envelope itself.
WIRE_VERSION = 1


def b64encode(value: bytes) -> str:
    return base64.b64encode(value).decode("ascii")


def b64decode(value: str) -> bytes:
    return base64.b64decode(value.encode("ascii"))


def encode_values(values: Mapping[str, bytes | None]) -> dict[str, str | None]:
    """Encode a key->bytes-or-missing mapping for the wire."""
    return {key: (b64encode(v) if v is not None else None) for key, v in values.items()}


def decode_values(values: Mapping[str, str | None]) -> dict[str, bytes | None]:
    return {key: (b64decode(v) if v is not None else None) for key, v in values.items()}


def encode_records(records: list[CommitRecord]) -> list[str]:
    return [b64encode(record.to_bytes()) for record in records]


def decode_records(blobs: list[str]) -> list[CommitRecord]:
    return [CommitRecord.from_bytes(b64decode(blob)) for blob in blobs]


@dataclass
class WireMessage:
    """Base class: a typed, versioned JSON-object payload."""

    #: Wire tag, unique across the protocol (set by every subclass).
    TYPE: ClassVar[str] = ""
    #: Schema version of this message type.
    VERSION: ClassVar[int] = 1

    def to_body(self) -> dict[str, Any]:
        """Serialise to a plain JSON object (field name -> value)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_body(cls, body: Mapping[str, Any]) -> "WireMessage":
        """Reconstruct from a JSON object, ignoring unknown fields.

        The filter is the forward-compatibility contract: bodies produced by
        a newer schema simply lose their extra fields here instead of
        crashing the older binary.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in body.items() if key in known})


# --------------------------------------------------------------------- #
# Membership / fencing (node <-> router)
# --------------------------------------------------------------------- #
@dataclass
class Hello(WireMessage):
    """Node registration. ``kind`` is ``"node"`` (serving) or ``"standby"``."""

    TYPE: ClassVar[str] = "hello"
    node_id: str = ""
    kind: str = "node"


@dataclass
class HelloAck(WireMessage):
    """Router's admission reply: the fencing token epoch and lease cadence."""

    TYPE: ClassVar[str] = "hello_ack"
    node_id: str = ""
    #: Epoch of the node's fencing token (0 for standbys — no token until
    #: activation).
    epoch: int = 0
    lease_duration: float = 5.0
    heartbeat_interval: float = 1.0


@dataclass
class Heartbeat(WireMessage):
    """Lease renewal (a notification, no reply expected)."""

    TYPE: ClassVar[str] = "heartbeat"
    node_id: str = ""


@dataclass
class Activate(WireMessage):
    """Router -> standby: promote into service with a fresh fencing token."""

    TYPE: ClassVar[str] = "activate"
    node_id: str = ""
    epoch: int = 0


@dataclass
class Ok(WireMessage):
    """Generic empty success reply."""

    TYPE: ClassVar[str] = "ok"


# --------------------------------------------------------------------- #
# Commit stream (node <-> router hub)
# --------------------------------------------------------------------- #
@dataclass
class PublishCommits(WireMessage):
    """Node -> router: recently committed records for fan-out (b64 blobs)."""

    TYPE: ClassVar[str] = "publish_commits"
    node_id: str = ""
    records: list = field(default_factory=list)


@dataclass
class DeliverCommits(WireMessage):
    """Router -> node: peer commit records to merge into the metadata cache."""

    TYPE: ClassVar[str] = "deliver_commits"
    records: list = field(default_factory=list)


# --------------------------------------------------------------------- #
# Storage service (node -> router)
# --------------------------------------------------------------------- #
@dataclass
class StorageRequest(WireMessage):
    """One storage-engine operation against the router's shared store.

    ``op`` is one of ``get`` / ``put`` / ``delete`` / ``multi_get`` /
    ``multi_put`` / ``multi_delete`` / ``list_keys``.  ``keys`` carries the
    read/delete targets, ``items`` the writes (values base64), ``prefix``
    the listing prefix.
    """

    TYPE: ClassVar[str] = "storage"
    op: str = "get"
    keys: list = field(default_factory=list)
    items: dict = field(default_factory=dict)
    prefix: str = ""


@dataclass
class StorageResponse(WireMessage):
    """Result of a :class:`StorageRequest` (values base64, misses None)."""

    TYPE: ClassVar[str] = "storage_result"
    values: dict = field(default_factory=dict)
    keys: list = field(default_factory=list)


# --------------------------------------------------------------------- #
# Client sessions (client <-> router) and their node-side forwards
# --------------------------------------------------------------------- #
@dataclass
class ClientStart(WireMessage):
    """Client -> router: open a transaction (router pins it to a node)."""

    TYPE: ClassVar[str] = "client_start"
    txid: str = ""


@dataclass
class ClientStarted(WireMessage):
    TYPE: ClassVar[str] = "client_started"
    txid: str = ""
    node_id: str = ""


@dataclass
class ClientGet(WireMessage):
    TYPE: ClassVar[str] = "client_get"
    txid: str = ""
    keys: list = field(default_factory=list)


@dataclass
class ClientValues(WireMessage):
    TYPE: ClassVar[str] = "client_values"
    values: dict = field(default_factory=dict)


@dataclass
class ClientPut(WireMessage):
    """Buffered writes (values base64); several keys per call are allowed."""

    TYPE: ClassVar[str] = "client_put"
    txid: str = ""
    items: dict = field(default_factory=dict)


@dataclass
class ClientCommit(WireMessage):
    TYPE: ClassVar[str] = "client_commit"
    txid: str = ""


@dataclass
class ClientCommitted(WireMessage):
    """Commit acknowledgement: the commit id as a ``TransactionId`` token."""

    TYPE: ClassVar[str] = "client_committed"
    txid: str = ""
    commit_token: str = ""


@dataclass
class ClientAbort(WireMessage):
    TYPE: ClassVar[str] = "client_abort"
    txid: str = ""


@dataclass
class TxnStart(WireMessage):
    """Router -> node forwards of the client session ops (same shapes)."""

    TYPE: ClassVar[str] = "txn_start"
    txid: str = ""


@dataclass
class TxnGet(WireMessage):
    TYPE: ClassVar[str] = "txn_get"
    txid: str = ""
    keys: list = field(default_factory=list)


@dataclass
class TxnPut(WireMessage):
    TYPE: ClassVar[str] = "txn_put"
    txid: str = ""
    items: dict = field(default_factory=dict)


@dataclass
class TxnCommit(WireMessage):
    TYPE: ClassVar[str] = "txn_commit"
    txid: str = ""


@dataclass
class TxnAbort(WireMessage):
    TYPE: ClassVar[str] = "txn_abort"
    txid: str = ""


# --------------------------------------------------------------------- #
# Introspection and fault injection
# --------------------------------------------------------------------- #
@dataclass
class Info(WireMessage):
    """Cluster readiness probe (clients poll this while the fleet boots)."""

    TYPE: ClassVar[str] = "info"


@dataclass
class InfoReply(WireMessage):
    TYPE: ClassVar[str] = "info_reply"
    nodes: list = field(default_factory=list)
    standbys: list = field(default_factory=list)
    epoch: int = 0
    commits: int = 0


@dataclass
class Nemesis(WireMessage):
    """Fault injection: partition ``node_id`` from the membership plane.

    ``pause_heartbeats`` models the classic lease false positive — the node
    keeps its data-plane connection (a long GC pause, an asymmetric
    partition) but its lease renewals stop, so the router declares it dead
    while it is still able to issue late commit-record writes.
    """

    TYPE: ClassVar[str] = "nemesis"
    node_id: str = ""
    pause_heartbeats: bool = False


# --------------------------------------------------------------------- #
# Codec
# --------------------------------------------------------------------- #
MESSAGE_TYPES: dict[str, type[WireMessage]] = {
    cls.TYPE: cls
    for cls in (
        Hello,
        HelloAck,
        Heartbeat,
        Activate,
        Ok,
        PublishCommits,
        DeliverCommits,
        StorageRequest,
        StorageResponse,
        ClientStart,
        ClientStarted,
        ClientGet,
        ClientValues,
        ClientPut,
        ClientCommit,
        ClientCommitted,
        ClientAbort,
        TxnStart,
        TxnGet,
        TxnPut,
        TxnCommit,
        TxnAbort,
        Info,
        InfoReply,
        Nemesis,
    )
}


def encode_body(message: WireMessage) -> tuple[str, int, dict[str, Any]]:
    """Return the ``(type, version, body)`` triple the frame envelope carries."""
    return message.TYPE, message.VERSION, message.to_body()


def decode_body(msg_type: str, version: int, body: Mapping[str, Any]) -> WireMessage:
    """Reconstruct a message, tolerating unknown fields and newer minor schemas.

    An unknown *type* raises — the peer speaks a protocol we do not — but an
    unknown *field* within a known type is silently dropped, which is what
    lets adjacent versions interoperate.
    """
    cls = MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise errors.AftError(f"unknown wire message type {msg_type!r}")
    del version  # schema versions are additive today; kept in the envelope
    return cls.from_body(body)


# --------------------------------------------------------------------- #
# Error transport
# --------------------------------------------------------------------- #
#: Exception types that survive the wire round trip as themselves.  The far
#: side of an RPC re-raises the *same* class, so e.g. a fenced node's commit
#: failure surfaces as FencedNodeError three hops away from the fence.
_ERROR_KINDS: dict[str, type[Exception]] = {
    "fenced": errors.FencedNodeError,
    "transaction": errors.TransactionError,
    "unknown_transaction": errors.UnknownTransactionError,
    "transaction_aborted": errors.TransactionAbortedError,
    "transaction_committed": errors.TransactionAlreadyCommittedError,
    "atomic_read": errors.AtomicReadError,
    "storage": errors.StorageError,
    "node_stopped": errors.NodeStoppedError,
    "node_draining": errors.NodeDrainingError,
    "no_available_node": errors.NoAvailableNodeError,
    "aft": errors.AftError,
}
_KIND_BY_TYPE = {cls: kind for kind, cls in _ERROR_KINDS.items()}


def error_to_wire(exc: BaseException) -> dict[str, str]:
    """Encode an exception for an error reply frame."""
    for cls in type(exc).__mro__:
        kind = _KIND_BY_TYPE.get(cls)
        if kind is not None:
            return {"kind": kind, "message": str(exc)}
    return {"kind": "error", "message": f"{type(exc).__name__}: {exc}"}


def error_from_wire(payload: Mapping[str, str]) -> Exception:
    """Reconstruct the closest matching exception class from an error reply."""
    from repro.rpc.framing import RpcError

    kind = payload.get("kind", "error")
    message = payload.get("message", "remote error")
    cls = _ERROR_KINDS.get(kind)
    if cls is None:
        return RpcError(message)
    return cls(message)
