"""Length-prefixed JSON frames and the multiplexed RPC connection.

The wire format is deliberately minimal: each frame is a 4-byte big-endian
length followed by one UTF-8 JSON object —

``{"id": 7, "re": null, "type": "storage", "v": 1, "body": {...}}``

``id`` names a request awaiting a reply; a frame with ``re`` set is the
reply to the request of that id.  Frames with neither are one-way
notifications.  Error replies carry ``{"error": {"kind", "message"}}``
instead of a body and re-raise as the matching exception class on the
requesting side (:func:`repro.rpc.messages.error_from_wire`).

:class:`RpcConnection` multiplexes both directions over one TCP stream: a
single reader task resolves reply futures and dispatches incoming requests
to the connection's handler, each in its own task — so both peers can issue
concurrent requests over the same socket without head-of-line blocking on
the handlers.  This is what lets one node connection simultaneously carry
storage ops (node -> router) and forwarded client sessions (router -> node).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
from typing import Any, Awaitable, Callable

from repro.errors import AftError
from repro.rpc import messages
from repro.rpc.messages import WIRE_VERSION, WireMessage

#: Frames above this size are rejected — a corrupt length prefix otherwise
#: reads as a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class RpcError(AftError):
    """Transport-level failure (connection lost, malformed frame, timeout)."""


class ConnectionClosedError(RpcError):
    """The peer closed the connection while requests were outstanding."""


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any]:
    """Read one length-prefixed JSON frame (raises ``IncompleteReadError`` at EOF)."""
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RpcError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    payload = await reader.readexactly(length)
    return json.loads(payload.decode("utf-8"))


def frame_bytes(envelope: dict[str, Any]) -> bytes:
    payload = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(payload)) + payload


#: Handler signature: ``async def handle(conn, message) -> WireMessage | None``.
Handler = Callable[["RpcConnection", WireMessage], Awaitable[WireMessage | None]]


class RpcConnection:
    """One bidirectional, multiplexed RPC stream over asyncio TCP."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        handler: Handler | None = None,
        name: str = "",
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._handler = handler
        self.name = name
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._handler_tasks: set[asyncio.Task] = set()
        self._closed = False
        #: Callback invoked once when the connection drops (router uses it to
        #: deregister the session).
        self.on_close: Callable[["RpcConnection"], None] | None = None
        self._write_lock = asyncio.Lock()

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the reader task (idempotent)."""
        if self._reader_task is None:
            self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @property
    def is_closed(self) -> bool:
        return self._closed

    def peername(self) -> str:
        try:
            return str(self._writer.get_extra_info("peername"))
        except Exception:  # pragma: no cover - platform quirk
            return "?"

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    async def _send(self, envelope: dict[str, Any]) -> None:
        if self._closed:
            raise ConnectionClosedError(f"connection {self.name or self.peername()} is closed")
        data = frame_bytes(envelope)
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()

    async def request(self, message: WireMessage, timeout: float | None = 30.0) -> WireMessage:
        """Send ``message`` and await the peer's (decoded) reply.

        Error replies re-raise as the matching exception class; a dropped
        connection fails every outstanding request with
        :class:`ConnectionClosedError`.
        """
        msg_type, version, body = messages.encode_body(message)
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self._send(
                {"id": request_id, "type": msg_type, "v": version, "body": body}
            )
            if timeout is not None:
                return await asyncio.wait_for(future, timeout)
            return await future
        except asyncio.TimeoutError:
            raise RpcError(
                f"request {msg_type!r} to {self.name or self.peername()} timed out"
            ) from None
        finally:
            self._pending.pop(request_id, None)

    async def notify(self, message: WireMessage) -> None:
        """Send a one-way message (no reply expected)."""
        msg_type, version, body = messages.encode_body(message)
        await self._send({"type": msg_type, "v": version, "body": body})

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        try:
            while True:
                envelope = await read_frame(self._reader)
                self._dispatch(envelope)
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            raise
        finally:
            self._shutdown()

    def _dispatch(self, envelope: dict[str, Any]) -> None:
        reply_to = envelope.get("re")
        if reply_to is not None:
            future = self._pending.pop(reply_to, None)
            if future is None or future.done():
                return
            error = envelope.get("error")
            if error is not None:
                future.set_exception(messages.error_from_wire(error))
            else:
                try:
                    future.set_result(
                        messages.decode_body(
                            envelope.get("type", ""), envelope.get("v", 1), envelope.get("body", {})
                        )
                    )
                except Exception as exc:  # malformed reply
                    future.set_exception(RpcError(f"undecodable reply: {exc}"))
            return
        # Incoming request or notification: run the handler in its own task
        # so slow handlers never block the reader (and replies from both
        # directions keep flowing).
        task = asyncio.get_running_loop().create_task(self._handle(envelope))
        self._handler_tasks.add(task)
        task.add_done_callback(self._handler_tasks.discard)

    async def _handle(self, envelope: dict[str, Any]) -> None:
        request_id = envelope.get("id")
        try:
            if self._handler is None:
                raise RpcError("peer sent a request but this side has no handler")
            message = messages.decode_body(
                envelope.get("type", ""), envelope.get("v", 1), envelope.get("body", {})
            )
            result = await self._handler(self, message)
            if request_id is not None:
                reply = result if result is not None else messages.Ok()
                msg_type, version, body = messages.encode_body(reply)
                await self._send(
                    {"re": request_id, "type": msg_type, "v": version, "body": body}
                )
        except Exception as exc:
            if request_id is not None and not self._closed:
                try:
                    await self._send({"re": request_id, "error": messages.error_to_wire(exc)})
                except Exception:  # pragma: no cover - peer already gone
                    pass

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def _shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionClosedError("connection lost"))
        self._pending.clear()
        try:
            self._writer.close()
        except Exception:  # pragma: no cover - already torn down
            pass
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback(self)

    async def close(self) -> None:
        """Close the stream and stop the reader task."""
        self._shutdown()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
            self._reader_task = None
        try:
            await self._writer.wait_closed()
        except Exception:  # pragma: no cover - platform quirk
            pass


async def connect(
    host: str, port: int, handler: Handler | None = None, name: str = ""
) -> RpcConnection:
    """Open a client connection and start its reader task."""
    reader, writer = await asyncio.open_connection(host, port)
    conn = RpcConnection(reader, writer, handler=handler, name=name)
    conn.start()
    return conn
