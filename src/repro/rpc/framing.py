"""Wire frames (JSON and hybrid-binary) and the multiplexed RPC connection.

Every frame is a 4-byte big-endian length followed by one frame body in one
of two formats, distinguished by the body's first byte:

* **JSON** (first byte ``{``, the PR 7 wire): one UTF-8 JSON object —

  ``{"id": 7, "re": null, "type": "storage", "v": 1, "body": {...}}``

  with bulk bytes (storage values, commit records) base64-encoded in place.

* **Binary** (first byte ``0x01``): a hybrid layout —

  ``[0x01][4B header len][header JSON][raw payload section]``

  where the header is the same envelope object but with every bulk field
  replaced by compact ``[offset, length]`` references into the raw payload
  section (:func:`repro.rpc.messages.split_bulk`).  Values cross the wire as
  the bytes they are: no base64 inflation, no JSON string escaping, and the
  decoder slices payloads straight out of the frame buffer.

Readers sniff the format per frame, so a connection can carry both; senders
only emit binary after the peer advertised support during the ``hello``
negotiation (:attr:`RpcConnection.wire_format`).  ``MAX_FRAME_BYTES`` is
enforced on **both** sides: an oversized outgoing frame raises
:class:`FrameTooLargeError` locally instead of poisoning the peer.

``id`` names a request awaiting a reply; a frame with ``re`` set is the
reply to the request of that id.  Frames with neither are one-way
notifications.  Error replies carry ``{"error": {"kind", "message"}}``
instead of a body and re-raise as the matching exception class on the
requesting side (:func:`repro.rpc.messages.error_from_wire`).

:class:`RpcConnection` multiplexes both directions over one TCP stream: a
single reader task resolves reply futures and dispatches incoming requests
to the connection's handler, each in its own task — so both peers can issue
concurrent requests over the same socket without head-of-line blocking on
the handlers.  Writes go through a coalescing send queue: frames queued
while a drain is in flight ride out in one ``write``/``drain`` pair
(:attr:`ConnectionStats.drains` counts how often that batching pays off),
and every socket runs with ``TCP_NODELAY`` so small frames are not parked
by Nagle's algorithm.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.errors import AftError
from repro.rpc import messages
from repro.rpc.messages import WIRE_VERSION, WireMessage

#: Frames above this size are rejected — a corrupt length prefix otherwise
#: reads as a multi-gigabyte allocation.  Enforced on receive *and* send.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Wire format names, as negotiated in ``hello`` / ``hello_ack``.
FORMAT_JSON = "json"
FORMAT_BINARY = "binary"
SUPPORTED_WIRE_FORMATS = (FORMAT_JSON, FORMAT_BINARY)

_LENGTH = struct.Struct(">I")
_HEADER_LEN = struct.Struct(">I")
#: First byte of a binary frame body.  Cannot collide with JSON: a JSON
#: envelope always starts with ``{`` (0x7B).
_BINARY_TAG = b"\x01"


class RpcError(AftError):
    """Transport-level failure (connection lost, malformed frame, timeout)."""


class ConnectionClosedError(RpcError):
    """The peer closed the connection while requests were outstanding."""


class FrameTooLargeError(RpcError):
    """An outgoing frame exceeds ``MAX_FRAME_BYTES``.

    Raised locally, *before* anything is written: the old behaviour shipped
    the frame and let the peer kill the connection with an opaque length
    error, failing every other request multiplexed on it.
    """


# --------------------------------------------------------------------- #
# Frame codecs
# --------------------------------------------------------------------- #
def frame_bytes(envelope: dict[str, Any], wire_format: str = FORMAT_JSON) -> bytes:
    """Encode one envelope into a length-prefixed frame.

    ``envelope["body"]`` is the canonical in-memory body (bulk fields hold
    raw bytes); this function owns the per-format bulk conversion.
    """
    msg_type = envelope.get("type", "")
    if wire_format == FORMAT_BINARY:
        body = envelope.get("body")
        if body is not None:
            header_body, chunks, payload_size = messages.split_bulk(msg_type, body)
            header = {**envelope, "body": header_body}
        else:
            header, chunks, payload_size = dict(envelope), [], 0
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        length = 1 + _HEADER_LEN.size + len(header_bytes) + payload_size
        if length > MAX_FRAME_BYTES:
            raise FrameTooLargeError(
                f"outgoing {msg_type or 'reply'} frame of {length} bytes exceeds "
                f"the {MAX_FRAME_BYTES}-byte limit"
            )
        return b"".join(
            (_LENGTH.pack(length), _BINARY_TAG, _HEADER_LEN.pack(len(header_bytes)), header_bytes, *chunks)
        )
    body = envelope.get("body")
    if body is not None:
        envelope = {**envelope, "body": messages.body_to_jsonable(msg_type, body)}
    payload = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"outgoing {msg_type or 'reply'} frame of {len(payload)} bytes exceeds "
            f"the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(data: bytes) -> dict[str, Any]:
    """Decode one frame body (either format, sniffed off the first byte)."""
    if data[:1] == _BINARY_TAG:
        (header_len,) = _HEADER_LEN.unpack_from(data, 1)
        header_end = 1 + _HEADER_LEN.size + header_len
        envelope = json.loads(data[1 + _HEADER_LEN.size : header_end].decode("utf-8"))
        body = envelope.get("body")
        if body is not None:
            payload = memoryview(data)[header_end:]
            envelope["body"] = messages.join_bulk(envelope.get("type", ""), body, payload)
        return envelope
    envelope = json.loads(data.decode("utf-8"))
    body = envelope.get("body")
    if body is not None:
        envelope["body"] = messages.body_from_jsonable(envelope.get("type", ""), body)
    return envelope


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any]:
    """Read one length-prefixed frame (raises ``IncompleteReadError`` at EOF)."""
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RpcError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    payload = await reader.readexactly(length)
    return decode_frame(payload)


@dataclass
class ConnectionStats:
    """Per-connection wire counters (one direction pair per connection)."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Storage ops carried inside ``storage_batch`` frames, each way.
    batched_ops_sent: int = 0
    batched_ops_received: int = 0
    #: ``drain()`` calls on the writer; ``frames_sent / drains`` is the
    #: writer-coalescing factor (frames that shared one flush).
    drains: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        return {
            "frames_out": self.frames_sent,
            "frames_in": self.frames_received,
            "bytes_out": self.bytes_sent,
            "bytes_in": self.bytes_received,
            "batched_ops_out": self.batched_ops_sent,
            "batched_ops_in": self.batched_ops_received,
            "drains": self.drains,
            **self.extra,
        }


#: Handler signature: ``async def handle(conn, message) -> WireMessage | None``.
Handler = Callable[["RpcConnection", WireMessage], Awaitable[WireMessage | None]]


class RpcConnection:
    """One bidirectional, multiplexed RPC stream over asyncio TCP."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        handler: Handler | None = None,
        name: str = "",
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._handler = handler
        self.name = name
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._handler_tasks: set[asyncio.Task] = set()
        self._closed = False
        #: Callback invoked once when the connection drops (router uses it to
        #: deregister the session).
        self.on_close: Callable[["RpcConnection"], None] | None = None
        #: Outgoing frame format.  Starts at the universally-decodable JSON
        #: wire; flipped to binary after ``hello`` negotiation confirms the
        #: peer can sniff it.  Incoming frames are always sniffed per frame.
        self.wire_format = FORMAT_JSON
        self.stats = ConnectionStats()
        #: Writer-coalescing queue: frames append here, and whichever task
        #: finds no flush in progress drains the whole queue with a single
        #: ``write`` + ``drain`` pair — frames arriving while a drain is
        #: awaited ride out together on the next pass.
        self._send_queue: deque[bytes] = deque()
        self._flushing = False
        self._enable_nodelay()

    def _enable_nodelay(self) -> None:
        """Disable Nagle: RPC frames are latency-bound, not bandwidth-bound."""
        sock = self._writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except (OSError, ValueError):  # pragma: no cover - non-TCP transport
                pass

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the reader task (idempotent)."""
        if self._reader_task is None:
            self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @property
    def is_closed(self) -> bool:
        return self._closed

    def peername(self) -> str:
        try:
            return str(self._writer.get_extra_info("peername"))
        except Exception:  # pragma: no cover - platform quirk
            return "?"

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    async def _send(self, envelope: dict[str, Any]) -> None:
        if self._closed:
            raise ConnectionClosedError(f"connection {self.name or self.peername()} is closed")
        data = frame_bytes(envelope, self.wire_format)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(data)
        self._send_queue.append(data)
        await self._flush_sends()

    async def _flush_sends(self) -> None:
        if self._flushing:
            # Another task is mid-drain; it re-checks the queue after its
            # drain resumes, so the frame just queued rides its next pass.
            return
        self._flushing = True
        try:
            while self._send_queue and not self._closed:
                if len(self._send_queue) == 1:
                    data = self._send_queue.popleft()
                else:
                    data = b"".join(self._send_queue)
                    self._send_queue.clear()
                self._writer.write(data)
                self.stats.drains += 1
                await self._writer.drain()
        finally:
            self._flushing = False

    async def request(self, message: WireMessage, timeout: float | None = 30.0) -> WireMessage:
        """Send ``message`` and await the peer's (decoded) reply.

        Error replies re-raise as the matching exception class; a dropped
        connection fails every outstanding request with
        :class:`ConnectionClosedError`.
        """
        msg_type, version, body = messages.encode_body(message)
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self._send(
                {"id": request_id, "type": msg_type, "v": version, "body": body}
            )
            if timeout is not None:
                return await asyncio.wait_for(future, timeout)
            return await future
        except asyncio.TimeoutError:
            raise RpcError(
                f"request {msg_type!r} to {self.name or self.peername()} timed out"
            ) from None
        finally:
            self._pending.pop(request_id, None)

    async def notify(self, message: WireMessage) -> None:
        """Send a one-way message (no reply expected)."""
        msg_type, version, body = messages.encode_body(message)
        await self._send({"type": msg_type, "v": version, "body": body})

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise RpcError(
                        f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                    )
                payload = await self._reader.readexactly(length)
                self.stats.frames_received += 1
                self.stats.bytes_received += _LENGTH.size + length
                self._dispatch(decode_frame(payload))
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            raise
        finally:
            self._shutdown()

    def _dispatch(self, envelope: dict[str, Any]) -> None:
        reply_to = envelope.get("re")
        if reply_to is not None:
            future = self._pending.pop(reply_to, None)
            if future is None or future.done():
                return
            error = envelope.get("error")
            if error is not None:
                future.set_exception(messages.error_from_wire(error))
            else:
                try:
                    future.set_result(
                        messages.decode_body(
                            envelope.get("type", ""), envelope.get("v", 1), envelope.get("body", {})
                        )
                    )
                except Exception as exc:  # malformed reply
                    future.set_exception(RpcError(f"undecodable reply: {exc}"))
            return
        # Incoming request or notification: run the handler in its own task
        # so slow handlers never block the reader (and replies from both
        # directions keep flowing).
        task = asyncio.get_running_loop().create_task(self._handle(envelope))
        self._handler_tasks.add(task)
        task.add_done_callback(self._handler_tasks.discard)

    async def _handle(self, envelope: dict[str, Any]) -> None:
        request_id = envelope.get("id")
        try:
            if self._handler is None:
                raise RpcError("peer sent a request but this side has no handler")
            message = messages.decode_body(
                envelope.get("type", ""), envelope.get("v", 1), envelope.get("body", {})
            )
            result = await self._handler(self, message)
            if request_id is not None:
                reply = result if result is not None else messages.Ok()
                msg_type, version, body = messages.encode_body(reply)
                await self._send(
                    {"re": request_id, "type": msg_type, "v": version, "body": body}
                )
        except Exception as exc:
            if request_id is not None and not self._closed:
                try:
                    await self._send({"re": request_id, "error": messages.error_to_wire(exc)})
                except Exception:  # pragma: no cover - peer already gone
                    pass

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #
    def _shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._send_queue.clear()
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionClosedError("connection lost"))
        self._pending.clear()
        try:
            self._writer.close()
        except Exception:  # pragma: no cover - already torn down
            pass
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback(self)

    async def close(self) -> None:
        """Close the stream and stop the reader task."""
        self._shutdown()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # pragma: no cover
                pass
            self._reader_task = None
        try:
            await self._writer.wait_closed()
        except Exception:  # pragma: no cover - platform quirk
            pass


async def connect(
    host: str, port: int, handler: Handler | None = None, name: str = ""
) -> RpcConnection:
    """Open a client connection and start its reader task."""
    reader, writer = await asyncio.open_connection(host, port)
    conn = RpcConnection(reader, writer, handler=handler, name=name)
    conn.start()
    return conn
