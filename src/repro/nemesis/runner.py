"""Replay a fault schedule against a target and certify the history.

``run_schedule`` drives a small closed-loop workload (a few logical
clients, one Table-1 operation per step) while firing the schedule's fault
actions at their due times, then heals everything, quiesces, and renders a
verdict from three independent oracles:

* the pairwise :class:`~repro.consistency.AnomalyChecker` (Table 2's RYW +
  fractured-read counters),
* the Elle-style :class:`~repro.consistency.CycleChecker` (G1c and
  read-atomicity cycles over the version-order graph),
* the target's convergence probe (post-heal, every replica must serve every
  key's latest acked version — or, on the socket runtime, observe a fresh
  sealing write).

The workload writes disjoint read/write key sets (the paper's workloads
touch distinct keys per transaction), so *any* anomaly — including an
unexpected ``NULL`` read of a preloaded key — is a bug, not a workload
artifact.  Torn writes in ``abort`` mode only ever produce failed commits,
which is exactly the §3.3 guarantee the verdict encodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.consistency import AnomalyChecker, CycleChecker, TaggedValue, TransactionLog
from repro.ids import TransactionId
from repro.nemesis.schedule import Schedule
from repro.nemesis.targets import DISRUPTIVE_KINDS
from repro.observability import trace as tr


@dataclass
class NemesisResult:
    """The verdict of one schedule replay."""

    schedule: Schedule
    target: str
    committed: int = 0
    failed: int = 0
    anomalies: dict = field(default_factory=dict)
    cycles: dict = field(default_factory=dict)
    convergence_violations: list[str] = field(default_factory=list)
    unexpected_null_reads: int = 0
    recovery_samples: list[float] = field(default_factory=list)

    @property
    def recovery_p99(self) -> float:
        if not self.recovery_samples:
            return 0.0
        ordered = sorted(self.recovery_samples)
        idx = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[idx]

    @property
    def ok(self) -> bool:
        return (
            self.anomalies.get("ryw_anomalies", 0) == 0
            and self.anomalies.get("fractured_read_anomalies", 0) == 0
            and self.cycles.get("violations", 0) == 0
            and not self.convergence_violations
            and self.unexpected_null_reads == 0
        )

    def verdict(self) -> str:
        if self.ok:
            return "PASS"
        reasons = []
        if self.anomalies.get("ryw_anomalies", 0):
            reasons.append(f"ryw={self.anomalies['ryw_anomalies']}")
        if self.anomalies.get("fractured_read_anomalies", 0):
            reasons.append(f"fractured={self.anomalies['fractured_read_anomalies']}")
        if self.cycles.get("violations", 0):
            reasons.append(f"cycles={self.cycles['violations']}")
        if self.convergence_violations:
            reasons.append(f"divergent_replicas={len(self.convergence_violations)}")
        if self.unexpected_null_reads:
            reasons.append(f"null_reads={self.unexpected_null_reads}")
        return "FAIL: " + ", ".join(reasons)

    def as_dict(self) -> dict:
        return {
            "schedule": self.schedule.to_dict(),
            "target": self.target,
            "verdict": self.verdict(),
            "ok": self.ok,
            "committed": self.committed,
            "failed": self.failed,
            "anomalies": dict(self.anomalies),
            "cycles": dict(self.cycles),
            "convergence_violations": list(self.convergence_violations),
            "unexpected_null_reads": self.unexpected_null_reads,
            "recovery_p99": self.recovery_p99,
            "recovery_samples": list(self.recovery_samples),
        }


class _Client:
    """One closed-loop logical client: a 2-read / 2-write transaction,
    one operation per workload step."""

    def __init__(self, index: int, keys: list[str], seed: int) -> None:
        self.index = index
        self.keys = keys
        self.rng = random.Random(seed * 7919 + index)
        self.txid: str | None = None
        self.log: TransactionLog | None = None
        self.ops: list[tuple] = []
        self.op_index = 0

    def plan(self) -> None:
        chosen = self.rng.sample(self.keys, 4)
        read_keys, write_keys = chosen[:2], chosen[2:]
        cowritten = tuple(write_keys)
        self.ops = (
            [("read", k) for k in read_keys]
            + [("write", k, cowritten) for k in write_keys]
            + [("commit",)]
        )
        self.op_index = 0


def run_schedule(
    target,
    schedule: Schedule,
    clients: int = 4,
    keys: int = 8,
    step: float = 0.25,
) -> NemesisResult:
    """Replay ``schedule`` against ``target`` and return the verdict."""
    if hasattr(target, "run") and not hasattr(target, "txn_start"):
        # The simulator target replays schedules wholesale.
        sim = target.run(schedule)
        return NemesisResult(
            schedule=schedule,
            target=target.name,
            committed=sim.get("transactions", 0),
            anomalies=sim.get("anomalies", {}),
            cycles=sim.get("cycles", {}),
        )

    key_names = [f"nk{i}" for i in range(keys)]
    checker = AnomalyChecker()
    result = NemesisResult(schedule=schedule, target=target.name)
    latest_acked: dict[str, TransactionId] = {}
    target.start()
    try:
        _preload(target, key_names, checker, latest_acked)
        # Let the preload broadcast reach every node before clients read, or
        # startup races masquerade as NULL-read anomalies.
        target.advance(1.0)
        workers = [_Client(i, key_names, schedule.seed) for i in range(clients)]
        actions = list(schedule.actions)
        action_idx = 0
        t = 0.0
        disruption_start: float | None = None
        while t < schedule.duration:
            # Actions due inside the upcoming step window fire before the
            # window's maintenance ticks run, so a fault aimed at time T is
            # armed when the first broadcast round at/after T publishes.
            while action_idx < len(actions) and actions[action_idx].at < t + step:
                action = actions[action_idx]
                action_idx += 1
                disruptive = False
                tr.annotate(f"nemesis.{action.kind}", at=action.at)
                try:
                    disruptive = target.apply(action)
                except Exception:
                    pass
                if disruptive and action.kind in DISRUPTIVE_KINDS and disruption_start is None:
                    disruption_start = t
            for worker in workers:
                committed_at = _step_client(target, worker, checker, latest_acked, result)
                if committed_at and disruption_start is not None:
                    result.recovery_samples.append(t - disruption_start)
                    disruption_start = None
            target.advance(step)
            t += step
        # Fire any actions scheduled in the final partial step (e.g. a relay
        # death aimed at the last broadcast round).
        while action_idx < len(actions) and actions[action_idx].at <= schedule.duration:
            tr.annotate(f"nemesis.{actions[action_idx].kind}", at=actions[action_idx].at)
            try:
                target.apply(actions[action_idx])
            except Exception:
                pass
            action_idx += 1
        target.heal_all()
        target.quiesce()
        for worker in workers:
            _abandon(target, worker, checker, result)
        result.convergence_violations = target.convergence_violations(dict(latest_acked))
    finally:
        target.stop()
    result.anomalies = checker.counts().as_dict()
    cycles = CycleChecker()
    cycles.adopt(checker)
    result.cycles = cycles.summary()
    return result


# ---------------------------------------------------------------------- #
def _preload(target, key_names, checker, latest_acked) -> None:
    txid = target.txn_start()
    now = target.now()
    cowritten = frozenset(key_names)
    log = TransactionLog(txn_uuid=txid)
    for i, key in enumerate(key_names):
        tag = TaggedValue(payload=b"preload", timestamp=now, uuid=txid, cowritten=cowritten)
        target.txn_write(txid, key, tag.to_bytes())
        log.record_write(key, tag.version, op_index=i)
    commit_id = target.txn_commit(txid)
    checker.add(log)
    checker.register_commit_order(txid, commit_id)
    for key in key_names:
        latest_acked[key] = commit_id


def _step_client(target, worker: _Client, checker, latest_acked, result) -> bool:
    """Run one operation of ``worker``'s transaction.  Returns True when
    this step committed a transaction (closes a recovery-timing sample)."""
    try:
        if worker.txid is None:
            worker.plan()
            worker.txid = target.txn_start()
            worker.log = TransactionLog(txn_uuid=worker.txid)
            return False
        op = worker.ops[worker.op_index]
        if op[0] == "read":
            raw = target.txn_read(worker.txid, op[1])
            tag = TaggedValue.try_from_bytes(raw)
            worker.log.record_read(op[1], tag, op_index=worker.op_index)
            if tag is None:
                result.unexpected_null_reads += 1
            worker.op_index += 1
            return False
        if op[0] == "write":
            key, cowritten = op[1], frozenset(op[2])
            tag = TaggedValue(
                payload=f"c{worker.index}".encode(),
                timestamp=target.now(),
                uuid=worker.txid,
                cowritten=cowritten,
            )
            target.txn_write(worker.txid, key, tag.to_bytes())
            worker.log.record_write(key, tag.version, op_index=worker.op_index)
            worker.op_index += 1
            return False
        # commit
        commit_id = target.txn_commit(worker.txid)
        checker.add(worker.log)
        checker.register_commit_order(worker.txid, commit_id)
        for key in worker.log.writes:
            if key not in latest_acked or latest_acked[key] < commit_id:
                latest_acked[key] = commit_id
        result.committed += 1
        worker.txid = None
        worker.log = None
        return True
    except Exception:
        _fail_txn(target, worker, checker, result)
        return False


def _fail_txn(target, worker: _Client, checker, result) -> None:
    if worker.log is not None:
        worker.log.committed = False
        worker.log.aborted = True
        checker.add(worker.log)
    if worker.txid is not None:
        try:
            target.txn_abort(worker.txid)
        except Exception:
            pass
    worker.txid = None
    worker.log = None
    result.failed += 1


def _abandon(target, worker: _Client, checker, result) -> None:
    """Abort any transaction still open when the run ends."""
    if worker.txid is not None:
        _fail_txn(target, worker, checker, result)
        result.failed -= 1  # an end-of-run abort is not a fault-induced failure
