"""Storage-level fault injectors.

:class:`TornWriteStorage` wraps any engine and, when armed, tears the next
multi-key data write in one of two ways:

``abort``
    Write a strict prefix of the data items, then raise
    :class:`TornWriteError`.  This is the failure §3.3 of the paper is
    engineered around: the commit record is written *last*, so a crash that
    loses the tail of the data writes leaves only invisible garbage —
    readers can never observe the partial transaction.

``silent``
    Drop the tail of the data items but report success, so the node goes on
    to write the commit record.  This violates the §3.3 ordering contract
    (a commit record lands whose data never did) and is the *mutant* the
    nemesis suite must catch: readers see ``None`` for a key the commit set
    says is written, which the cycle checker's NULL-read rule flags as a
    fractured read.

Only ``aft.data``-prefixed keys are torn; commit records and unrelated
metadata pass through untouched.  Arming is one-shot: the injector disarms
after the first tear so a schedule controls exactly how many torn writes
occur.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import AftError
from repro.ids import DATA_PREFIX
from repro.storage.base import StorageEngine


class TornWriteError(AftError):
    """The injected storage failure that tears a multi-key write."""


class TornWriteStorage(StorageEngine):
    """Delegate to ``inner``, tearing the next armed multi-key data write."""

    name = "torn-write"

    def __init__(self, inner: StorageEngine, mode: str = "abort") -> None:
        super().__init__()
        self.inner = inner
        self.mode = mode
        self.torn_writes = 0
        self._armed = False
        self._singles_seen = 0
        self.supports_batch_writes = inner.supports_batch_writes
        self.max_batch_size = inner.max_batch_size
        self.supports_batch_reads = inner.supports_batch_reads
        self.max_batch_get_size = inner.max_batch_get_size

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #
    def arm(self, mode: str | None = None) -> None:
        """Arm the injector for the next multi-key data write (one-shot)."""
        if mode is not None:
            self.mode = mode
        if self.mode not in ("abort", "silent"):
            raise ValueError(f"unknown torn-write mode {self.mode!r}")
        self._armed = True
        self._singles_seen = 0

    def disarm(self) -> None:
        self._armed = False
        self._singles_seen = 0

    @property
    def armed(self) -> bool:
        return self._armed

    def _fire(self) -> None:
        self._armed = False
        self._singles_seen = 0
        self.torn_writes += 1

    # ------------------------------------------------------------------ #
    # Write path (where tearing happens)
    # ------------------------------------------------------------------ #
    def put(self, key: str, value: bytes) -> None:
        if self._armed and key.startswith(DATA_PREFIX):
            # Single-put path (engines without batch writes): let the first
            # data write of the doomed transaction land, tear the second.
            self._singles_seen += 1
            if self._singles_seen >= 2:
                mode = self.mode
                self._fire()
                if mode == "abort":
                    raise TornWriteError(f"torn write: lost {key!r}")
                return  # silent: drop the write, report success
        self.inner.put(key, value)

    def multi_put(self, items: Mapping[str, bytes]) -> None:
        if self._armed:
            data_keys = [k for k in items if k.startswith(DATA_PREFIX)]
            if len(data_keys) >= 2:
                victim = data_keys[-1]
                mode = self.mode
                self._fire()
                self.inner.multi_put({k: v for k, v in items.items() if k != victim})
                if mode == "abort":
                    raise TornWriteError(f"torn write: lost {victim!r}")
                return
        self.inner.multi_put(items)

    # ------------------------------------------------------------------ #
    # Pass-through
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> bytes | None:
        return self.inner.get(key)

    def multi_get(self, keys: Iterable[str]) -> dict[str, bytes | None]:
        return self.inner.multi_get(keys)

    def delete(self, key: str) -> None:
        self.inner.delete(key)

    def multi_delete(self, keys: Iterable[str]) -> None:
        self.inner.multi_delete(keys)

    def list_keys(self, prefix: str = "") -> list[str]:
        return self.inner.list_keys(prefix)
