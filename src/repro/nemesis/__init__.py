"""Composable, seeded fault injection against every runtime.

The nemesis layer (named for Jepsen's fault injector) replays
deterministic :class:`~repro.nemesis.schedule.Schedule`\\ s — timed crash /
partition / stalled-heartbeat / torn-write / relay-death / frame-fault
actions — against the in-process cluster, the discrete-event simulator,
and the real socket cluster, then certifies the resulting histories with
the pairwise anomaly checker, the Elle-style cycle checker, and a
post-heal convergence probe.  ``scripts/run_nemesis.py`` wraps it in a
CLI with shrink-on-failure; the ``nemesis`` CI lane runs a seeded
schedule matrix on every PR and a long randomized sweep nightly.
"""

from repro.nemesis.faults import TornWriteError, TornWriteStorage
from repro.nemesis.runner import NemesisResult, run_schedule
from repro.nemesis.schedule import (
    FAULT_KINDS,
    HEAL_KINDS,
    FaultAction,
    Schedule,
    generate_schedule,
    shrink_schedule,
)
from repro.nemesis.targets import InprocTarget, SimTarget, SocketTarget

__all__ = [
    "FAULT_KINDS",
    "HEAL_KINDS",
    "FaultAction",
    "InprocTarget",
    "NemesisResult",
    "Schedule",
    "SimTarget",
    "SocketTarget",
    "TornWriteError",
    "TornWriteStorage",
    "generate_schedule",
    "run_schedule",
    "shrink_schedule",
]
