"""Fault schedules: seeded generation and delta-debugging shrink.

A :class:`Schedule` is a small, fully deterministic program of timed fault
and heal actions replayed against a nemesis target (in-process cluster,
simulator, or socket cluster).  Times are in *schedule units* — virtual
seconds on the logical-clock targets, scaled wall-clock seconds on the
socket target — so one schedule is portable across runtimes.

``generate_schedule`` derives everything from a single integer seed, and
``shrink_schedule`` runs ddmin over fault *atoms* (a fault grouped with its
paired heal) to reduce a failing schedule to a minimal reproduction, which
the CI lane uploads as a JSON artifact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Fault kinds that require an explicit heal action, and the heal kind that
#: undoes each of them.  Crash / torn-write / relay-death are one-shot
#: disruptions the cluster itself recovers from (standby promotion, §3.3
#: write ordering, relay reroute) and need no heal.
HEAL_KINDS: dict[str, str] = {
    "stall_heartbeats": "resume_heartbeats",
    "partition": "heal_partition",
    "frame_delay": "heal_frames",
    "frame_drop": "heal_frames",
}

#: Every fault kind a schedule may contain (heals excluded).
FAULT_KINDS: tuple[str, ...] = (
    "crash",
    "stall_heartbeats",
    "partition",
    "torn_write",
    "relay_death",
    "frame_delay",
    "frame_drop",
)


@dataclass(frozen=True)
class FaultAction:
    """One timed action: inject a fault (or heal one) at ``at`` units."""

    at: float
    kind: str
    node_index: int = 0
    params: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "kind": self.kind,
            "node_index": self.node_index,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultAction":
        return cls(
            at=float(data["at"]),
            kind=str(data["kind"]),
            node_index=int(data.get("node_index", 0)),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class Schedule:
    """A seeded, time-sorted sequence of fault/heal actions."""

    seed: int
    duration: float
    actions: tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.actions, key=lambda a: (a.at, a.kind)))
        object.__setattr__(self, "actions", ordered)

    @property
    def fault_kinds(self) -> list[str]:
        return [a.kind for a in self.actions if a.kind in FAULT_KINDS]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "actions": [a.as_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        return cls(
            seed=int(data["seed"]),
            duration=float(data["duration"]),
            actions=tuple(FaultAction.from_dict(a) for a in data.get("actions", [])),
        )


def generate_schedule(
    seed: int,
    kinds: tuple[str, ...] = FAULT_KINDS,
    duration: float = 20.0,
    max_actions: int = 6,
    num_nodes: int = 4,
) -> Schedule:
    """Derive a random schedule from ``seed`` (same seed → same schedule).

    Faults land in the first 70% of the run; every healable fault gets its
    heal before 85% so the tail of the run always observes a healed cluster
    (the convergence probe requires it).
    """
    rng = random.Random(seed)
    n_actions = rng.randint(1, max_actions)
    actions: list[FaultAction] = []
    crashes = 0
    for _ in range(n_actions):
        kind = rng.choice(kinds)
        if kind == "crash":
            # Never crash a majority: standby promotion keeps the cluster
            # serving, but unbounded crashes exhaust the standby pool.
            if crashes >= max(1, num_nodes // 2):
                kind = "stall_heartbeats" if "stall_heartbeats" in kinds else "torn_write"
            else:
                crashes += 1
        at = round(rng.uniform(0.1, 0.7) * duration, 3)
        node_index = rng.randrange(num_nodes)
        params: dict = {}
        if kind == "relay_death":
            params["after_handoffs"] = rng.randint(0, 2)
        elif kind == "frame_delay":
            params["delay"] = round(rng.uniform(0.2, 1.5), 3)
        elif kind == "torn_write":
            pass
        actions.append(FaultAction(at=at, kind=kind, node_index=node_index, params=params))
        heal_kind = HEAL_KINDS.get(kind)
        if heal_kind is not None:
            heal_at = round(rng.uniform(at + 0.05 * duration, 0.85 * duration), 3)
            actions.append(FaultAction(at=heal_at, kind=heal_kind, node_index=node_index))
    return Schedule(seed=seed, duration=duration, actions=tuple(actions))


# ---------------------------------------------------------------------- #
# Shrinking
# ---------------------------------------------------------------------- #
def _atoms(schedule: Schedule) -> list[tuple[FaultAction, ...]]:
    """Group each fault with its paired heal so ddmin removes them together.

    The heal chosen is the earliest unclaimed heal of the matching kind and
    node_index at or after the fault (mirrors how ``generate_schedule``
    pairs them).  Unpaired heals become their own atoms — removing a
    redundant heal alone can also shrink a schedule.
    """
    actions = list(schedule.actions)
    claimed: set[int] = set()
    atoms: list[tuple[FaultAction, ...]] = []
    for i, action in enumerate(actions):
        if i in claimed or action.kind not in FAULT_KINDS:
            continue
        claimed.add(i)
        heal_kind = HEAL_KINDS.get(action.kind)
        group = [action]
        if heal_kind is not None:
            for j in range(i + 1, len(actions)):
                other = actions[j]
                if (
                    j not in claimed
                    and other.kind == heal_kind
                    and other.node_index == action.node_index
                    and other.at >= action.at
                ):
                    claimed.add(j)
                    group.append(other)
                    break
        atoms.append(tuple(group))
    for i, action in enumerate(actions):
        if i not in claimed:
            atoms.append((action,))
    return atoms


def _rebuild(schedule: Schedule, atoms: list[tuple[FaultAction, ...]]) -> Schedule:
    actions = tuple(a for group in atoms for a in group)
    return Schedule(seed=schedule.seed, duration=schedule.duration, actions=actions)


def shrink_schedule(schedule: Schedule, fails, max_runs: int = 48) -> Schedule:
    """ddmin: reduce ``schedule`` to a small subset that still fails.

    ``fails(candidate: Schedule) -> bool`` replays a candidate and reports
    whether the failure reproduces.  The input schedule is assumed failing;
    at most ``max_runs`` replays are spent, so the result is minimal-ish
    (1-minimal when the budget allows), never worse than the input.
    """
    atoms = _atoms(schedule)
    runs = 0

    def failing(candidate_atoms: list[tuple[FaultAction, ...]]) -> bool:
        nonlocal runs
        runs += 1
        return bool(fails(_rebuild(schedule, candidate_atoms)))

    granularity = 2
    while len(atoms) >= 2 and runs < max_runs:
        chunk = max(1, len(atoms) // granularity)
        subsets = [atoms[i : i + chunk] for i in range(0, len(atoms), chunk)]
        reduced = False
        for i in range(len(subsets)):
            if runs >= max_runs:
                break
            complement = [a for j, s in enumerate(subsets) if j != i for a in s]
            if complement and failing(complement):
                atoms = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(atoms):
                break
            granularity = min(len(atoms), granularity * 2)
    return _rebuild(schedule, atoms)
