"""Nemesis targets: one adapter per runtime the harness can disrupt.

A target exposes a small uniform surface — start/stop, a Table-1
transaction API, ``advance`` (move schedule time forward, running the
cluster's maintenance cadence), ``apply`` (inject one
:class:`~repro.nemesis.schedule.FaultAction`), ``heal_all`` / ``quiesce``,
and a post-heal ``convergence_violations`` probe — so one schedule replays
identically against:

* :class:`InprocTarget` — a real :class:`~repro.core.cluster.AftCluster` on
  a :class:`~repro.clock.LogicalClock`.  Fully deterministic; supports the
  richest fault set (crash, stalled heartbeats, commit-broadcast partition,
  torn multi-key writes, relay death mid-round).
* :class:`SimTarget` — the discrete-event simulator, via its scripted
  failure hook (crash only).
* :class:`SocketTarget` — the real router/node socket cluster from PR 7/8,
  driven over the nemesis RPC (crash, stalled heartbeats, router-side
  frame delay/drop).  Wall-clock; schedule units are scaled real seconds.

Convergence probes differ by design.  The in-process cluster has
anti-entropy (§4.2: the fault-manager scan re-broadcasts records it has not
seen), so after heal + quiescence *every* member's metadata cache must hold
every key's latest acked version — a leaked relay hand-off is permanent
precisely because the fault manager's unpruned feed marked the records
seen, which is what makes the reverted relay-reroute mutant detectable.
The socket runtime has no anti-entropy, so the probe writes a fresh
*sealing* version per key and requires every subsequent read to observe at
least the pre-seal acked version (a healed broadcast link must deliver the
sealing write; observing anything older is a violation).
"""

from __future__ import annotations

import asyncio
import threading

from repro.clock import LogicalClock
from repro.config import AftConfig, ClusterConfig, FaultManagerConfig, MetadataPlaneConfig
from repro.core.cluster import AftCluster
from repro.core.metadata_plane import RelayFault
from repro.errors import AftError
from repro.ids import TransactionId
from repro.nemesis.faults import TornWriteStorage
from repro.nemesis.schedule import FaultAction, Schedule
from repro.storage.memory import InMemoryStorage

#: Fault kinds that disrupt service (start a recovery-timing sample).
DISRUPTIVE_KINDS = frozenset(
    {"crash", "stall_heartbeats", "partition", "relay_death", "frame_drop"}
)


class InprocTarget:
    """A deterministic in-process AFT cluster under a logical clock.

    ``reroute_orphans=False`` and ``torn_mode="silent"`` are the *mutant*
    switches: they re-introduce the relay hand-off leak and break the §3.3
    write-ordering contract respectively, and exist so the test suite can
    prove the harness detects them (the falsely-benign check).
    """

    name = "inproc"
    supported_kinds = ("crash", "stall_heartbeats", "partition", "torn_write", "relay_death")

    MULTICAST_EVERY = 0.5
    SCAN_EVERY = 1.0
    LEASE = 3.0

    def __init__(
        self,
        num_nodes: int = 4,
        fencing: bool = True,
        reroute_orphans: bool = True,
        torn_mode: str = "abort",
        relay_fanout: int = 2,
    ) -> None:
        self.num_nodes = num_nodes
        self.torn_mode = torn_mode
        self.reroute_orphans = reroute_orphans
        self.fencing = fencing
        self.relay_fanout = relay_fanout
        self.clock: LogicalClock | None = None
        self.cluster: AftCluster | None = None
        self.storage: TornWriteStorage | None = None
        self._client = None
        self._stalled: set[str] = set()
        #: node_id -> (node, buffered record batches) for partitioned nodes.
        self._partitions: dict[str, tuple] = {}
        self._next_multicast = self.MULTICAST_EVERY
        self._next_scan = self.SCAN_EVERY

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self.clock = LogicalClock(start=0.0, auto_step=0.0001)
        self.storage = TornWriteStorage(InMemoryStorage(), mode=self.torn_mode)
        config = ClusterConfig(
            num_nodes=self.num_nodes,
            standby_nodes=2,
            fault_manager=FaultManagerConfig(num_shards=2),
            metadata_plane=MetadataPlaneConfig(
                transport="sharded",
                relay_fanout=self.relay_fanout,
                membership="lease",
                lease_duration=self.LEASE,
                heartbeat_interval=self.MULTICAST_EVERY,
                keyspace="partitioned",
                fencing=self.fencing,
            ),
        )
        self.cluster = AftCluster(
            storage=self.storage,
            cluster_config=config,
            node_config=AftConfig(multicast_interval=self.MULTICAST_EVERY, fault_scan_interval=self.SCAN_EVERY),
            clock=self.clock,
        )
        self.cluster.multicast.stream.reroute_orphans = self.reroute_orphans
        self._client = self.cluster.client()

    def stop(self) -> None:
        if self.cluster is not None:
            self.cluster.shutdown()

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    def now(self) -> float:
        return self.clock.now()

    def advance(self, dt: float) -> None:
        """Move schedule time forward, firing due maintenance ticks."""
        deadline = self.clock.now() + dt
        while True:
            next_event = min(self._next_multicast, self._next_scan)
            if next_event > deadline:
                break
            self.clock.advance(max(0.0, next_event - self.clock.now()))
            if self._next_multicast <= next_event:
                self._tick_multicast()
                self._next_multicast += self.MULTICAST_EVERY
            if self._next_scan <= next_event:
                self.cluster.run_fault_scan()
                self.cluster.replace_failed_nodes()
                self._next_scan += self.SCAN_EVERY
        self.clock.advance(max(0.0, deadline - self.clock.now()))

    def _tick_multicast(self) -> None:
        # Like AftCluster.run_multicast_round, except stalled nodes skip
        # their lease renewal (that *is* the stall fault).
        now = self.clock.now()
        for node in self.cluster.live_nodes():
            if node.node_id not in self._stalled:
                self.cluster.membership.heartbeat(node, now)
        self.cluster.multicast.run_once()

    # ------------------------------------------------------------------ #
    # Faults
    # ------------------------------------------------------------------ #
    def apply(self, action: FaultAction) -> bool:
        kind = action.kind
        members = self.cluster.live_nodes()
        if kind == "crash":
            if members:
                self.cluster.fail_node(members[action.node_index % len(members)])
            return True
        if kind == "stall_heartbeats":
            if members:
                self._stalled.add(members[action.node_index % len(members)].node_id)
            return True
        if kind == "resume_heartbeats":
            self._stalled.clear()
            return False
        if kind == "partition":
            if members:
                self._partition(members[action.node_index % len(members)])
            return True
        if kind == "heal_partition":
            self._heal_partitions()
            return False
        if kind == "torn_write":
            self.storage.arm(self.torn_mode)
            return self.torn_mode == "silent"
        if kind == "relay_death":
            if members:
                victim = members[action.node_index % len(members)]
                self.cluster.multicast.stream.inject_relay_fault(
                    RelayFault(
                        node_id=victim.node_id,
                        after_handoffs=int(action.params.get("after_handoffs", 0)),
                        on_death=self.cluster.fail_node,
                    )
                )
            return True
        return False

    def _partition(self, node) -> None:
        """Buffer the node's commit deliveries (a broadcast-plane partition).

        Healing flushes the buffer, so the model is *delayed* delivery — the
        cluster must still converge once healed."""
        if node.node_id in self._partitions:
            return
        buffer: list[list] = []
        self._partitions[node.node_id] = (node, buffer)
        node.receive_commits = lambda records, _buf=buffer: _buf.append(list(records))

    def _heal_partitions(self) -> None:
        for node, buffer in self._partitions.values():
            node.__dict__.pop("receive_commits", None)
            if node.is_running:
                for batch in buffer:
                    try:
                        node.receive_commits(batch)
                    except AftError:
                        pass
        self._partitions.clear()

    def heal_all(self) -> None:
        # An armed relay death is deliberately left armed in the stream: it
        # is a crash, not a healable link fault, and a schedule may aim it at
        # the final broadcast round (whose records are never superseded — the
        # sharpest probe of the reroute path).
        self._stalled.clear()
        self._heal_partitions()
        self.storage.disarm()

    def quiesce(self) -> None:
        # Two lease lifetimes: enough for stalled-node declarations to
        # resolve, standbys to promote, and the §4.2 scan to re-broadcast
        # anything the fault manager has not seen.
        self.advance(2 * self.LEASE)

    # ------------------------------------------------------------------ #
    # Table-1 API
    # ------------------------------------------------------------------ #
    def txn_start(self) -> str:
        return self._client.start_transaction()

    def txn_read(self, txid: str, key: str) -> bytes | None:
        return self._client.get(txid, key)

    def txn_write(self, txid: str, key: str, value: bytes) -> None:
        self._client.put(txid, key, value)

    def txn_commit(self, txid: str) -> TransactionId:
        return self._client.commit_transaction(txid)

    def txn_abort(self, txid: str) -> None:
        self._client.abort_transaction(txid)

    # ------------------------------------------------------------------ #
    # Convergence
    # ------------------------------------------------------------------ #
    def convergence_violations(self, expected: dict[str, TransactionId]) -> list[str]:
        """After heal+quiesce every member must hold every key's latest
        acked version — the §4.2 anti-entropy guarantee.  A permanently
        leaked broadcast (the relay-reroute mutant) shows up here."""
        from repro.ids import data_key

        violations: list[str] = []
        for node in self.cluster.live_nodes():
            for key, want in expected.items():
                index = node.metadata_cache.version_index
                have = index.latest(key)
                if have is None or have < want:
                    violations.append(
                        f"{node.node_id} stale on {key!r}: have "
                        f"{have.uuid if have else None}, want {want.uuid}"
                    )
                # §3.3 durability audit: a commit record is only written
                # after its data, so every version a replica advertises must
                # have durable data (GC never runs inside a nemesis run).  A
                # silently torn write is the only way to break this.
                for version in index.versions(key):
                    if self.storage.get(data_key(key, version)) is None:
                        violations.append(
                            f"{node.node_id} advertises {key!r}@{version.uuid} "
                            "with no durable data (torn write)"
                        )
        return violations


class SimTarget:
    """The discrete-event simulator behind the same verdict surface.

    The simulator runs a whole deployment from a declarative spec, so
    instead of the interactive target protocol it replays a schedule by
    mapping its first ``crash`` action onto the simulator's scripted
    failure hook and running the built-in workload; the resulting
    transaction logs feed the same pairwise + cycle checkers.
    """

    name = "sim"
    supported_kinds = ("crash",)

    def __init__(self, num_nodes: int = 4, num_clients: int = 4, requests_per_client: int = 60) -> None:
        self.num_nodes = num_nodes
        self.num_clients = num_clients
        self.requests_per_client = requests_per_client

    def run(self, schedule: Schedule) -> dict:
        """Run the deployment; returns checker verdicts + recovery stats."""
        from repro.consistency import CycleChecker
        from repro.simulation import DeploymentSpec, run_deployment
        from repro.simulation.cluster_sim import FailureScript
        from repro.workloads.spec import WorkloadSpec

        crash = next((a for a in schedule.actions if a.kind == "crash"), None)
        script = None
        if crash is not None:
            script = FailureScript(
                fail_node_index=crash.node_index % self.num_nodes,
                fail_at=crash.at,
                detection_delay=2.0,
                replacement_delay=5.0,
            )
        spec = DeploymentSpec(
            mode="aft",
            backend="dynamodb",
            workload=WorkloadSpec(num_keys=64, zipf_theta=1.0, seed=schedule.seed),
            num_nodes=self.num_nodes,
            standby_nodes=2,
            num_clients=self.num_clients,
            requests_per_client=self.requests_per_client,
            metadata_plane=MetadataPlaneConfig(
                transport="sharded", membership="lease", keyspace="partitioned"
            ),
            seed=schedule.seed,
            failure_script=script,
        )
        result = run_deployment(spec)
        cycles = CycleChecker()
        cycles.adopt(result.client_result.anomalies)
        return {
            "anomalies": result.anomaly_counts.as_dict(),
            "cycles": cycles.summary(),
            "recovery": dict(result.recovery_breakdown),
            "transactions": result.client_result.anomalies.counts().transactions,
        }


class SocketTarget:
    """The real router/node socket cluster, disrupted over the nemesis RPC.

    Runs an asyncio event loop on a background thread and exposes the same
    synchronous target surface as :class:`InprocTarget`; schedule units are
    ``time_scale`` real seconds.  Nemesis messages carry a node's *full*
    fault state (heartbeat pause + frame delay/drop) so composed faults on
    one node never clobber each other.
    """

    name = "sockets"
    supported_kinds = ("crash", "stall_heartbeats", "frame_delay", "frame_drop")

    def __init__(
        self,
        num_nodes: int = 3,
        standbys: int = 2,
        time_scale: float = 0.12,
        lease_duration: float = 0.8,
        heartbeat_interval: float = 0.1,
    ) -> None:
        self.num_nodes = num_nodes
        self.standbys = standbys
        self.time_scale = time_scale
        self.lease_duration = lease_duration
        self.heartbeat_interval = heartbeat_interval
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.router = None
        self.servers: list = []
        self.client = None
        #: node_id -> {"pause": bool, "delay": float, "drop": bool}
        self._fault_state: dict[str, dict] = {}
        self._crashed: set[str] = set()

    # ------------------------------------------------------------------ #
    def _call(self, coro, timeout: float = 30.0):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def start(self) -> None:
        from repro.rpc.client import AsyncRouterClient
        from repro.rpc.node_server import NodeServer
        from repro.rpc.router import RouterServer

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()

        async def boot():
            self.router = RouterServer(
                port=0,
                lease_duration=self.lease_duration,
                heartbeat_interval=self.heartbeat_interval,
            )
            await self.router.start()
            for i in range(self.num_nodes):
                server = NodeServer(f"n{i}", router_port=self.router.port)
                await server.start()
                self.servers.append(server)
            for i in range(self.standbys):
                server = NodeServer(f"s{i}", router_port=self.router.port, kind="standby")
                await server.start()
                self.servers.append(server)
            self.client = await AsyncRouterClient.connect("127.0.0.1", self.router.port)
            await self.client.wait_ready(self.num_nodes)

        self._call(boot())

    def stop(self) -> None:
        if self._loop is None:
            return

        async def teardown():
            if self.client is not None:
                await self.client.close()
            for server in self.servers:
                try:
                    await server.stop()
                except Exception:
                    pass
            if self.router is not None:
                await self.router.stop()

        try:
            self._call(teardown())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._loop.close()
            self._loop = None

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    def now(self) -> float:
        import time

        return time.monotonic()

    def advance(self, dt: float) -> None:
        import time

        time.sleep(dt * self.time_scale)

    # ------------------------------------------------------------------ #
    # Faults
    # ------------------------------------------------------------------ #
    def _serving_ids(self) -> list[str]:
        info = self._call(self.client.info())
        return sorted(node_id for node_id in info.nodes if node_id not in self._crashed)

    def _pick(self, index: int) -> str | None:
        ids = self._serving_ids()
        return ids[index % len(ids)] if ids else None

    def _send_state(self, node_id: str) -> None:
        state = self._fault_state.setdefault(
            node_id, {"pause": False, "delay": 0.0, "drop": False}
        )
        self._call(
            self.client.nemesis(
                node_id,
                pause_heartbeats=state["pause"],
                deliver_delay=state["delay"],
                deliver_drop=state["drop"],
            )
        )

    def apply(self, action: FaultAction) -> bool:
        kind = action.kind
        if kind == "crash":
            node_id = self._pick(action.node_index)
            server = next(
                (s for s in self.servers if s.node_id == node_id and s.kind == "node"), None
            )
            if server is not None:
                self._crashed.add(node_id)
                self._call(server.stop())
            return True
        node_id = self._pick(action.node_index)
        if node_id is None:
            return False
        state = self._fault_state.setdefault(
            node_id, {"pause": False, "delay": 0.0, "drop": False}
        )
        if kind == "stall_heartbeats":
            state["pause"] = True
        elif kind == "resume_heartbeats":
            state["pause"] = False
        elif kind == "frame_delay":
            state["delay"] = float(action.params.get("delay", 0.5)) * self.time_scale
        elif kind == "frame_drop":
            state["drop"] = True
        elif kind == "heal_frames":
            state["delay"] = 0.0
            state["drop"] = False
        else:
            return False
        self._send_state(node_id)
        return kind in DISRUPTIVE_KINDS

    def heal_all(self) -> None:
        for node_id, state in list(self._fault_state.items()):
            if node_id in self._crashed:
                continue
            state.update(pause=False, delay=0.0, drop=False)
            try:
                self._send_state(node_id)
            except AftError:
                pass

    def quiesce(self) -> None:
        import time

        # Let promoted standbys settle and delayed frames drain.
        time.sleep(3 * self.lease_duration)

    # ------------------------------------------------------------------ #
    # Table-1 API
    # ------------------------------------------------------------------ #
    def txn_start(self) -> str:
        return self._call(self.client.start_transaction())

    def txn_read(self, txid: str, key: str) -> bytes | None:
        return self._call(self.client.get(txid, key))

    def txn_write(self, txid: str, key: str, value: bytes) -> None:
        self._call(self.client.put(txid, key, value))

    def txn_commit(self, txid: str) -> TransactionId:
        token = self._call(self.client.commit_transaction(txid))
        if not token:
            raise AftError(f"commit of {txid} returned no token")
        return TransactionId.from_token(token)

    def txn_abort(self, txid: str) -> None:
        self._call(self.client.abort_transaction(txid))

    # ------------------------------------------------------------------ #
    # Convergence
    # ------------------------------------------------------------------ #
    def convergence_violations(self, expected: dict[str, TransactionId]) -> list[str]:
        """Seal every key with a fresh write, then require subsequent reads
        to observe at least the pre-seal acked version.  The socket runtime
        has no anti-entropy, so a *healed* broadcast link proving it can
        deliver the sealing write is the strongest portable guarantee."""
        from repro.consistency import TaggedValue

        sealing: dict[str, str] = {}
        for key in expected:
            txid = self.txn_start()
            tag = TaggedValue(
                payload=b"seal",
                timestamp=self.now(),
                uuid=txid,
                cowritten=frozenset({key}),
            )
            self.txn_write(txid, key, tag.to_bytes())
            self.txn_commit(txid)
            sealing[key] = txid
        self.advance(4.0)  # let the sealing broadcasts land everywhere
        violations: list[str] = []
        for round_idx in range(2 * self.num_nodes):
            txid = self.txn_start()
            for key, want in expected.items():
                raw = self.txn_read(txid, key)
                tag = TaggedValue.try_from_bytes(raw)
                if tag is None:
                    violations.append(f"round {round_idx}: NULL read of {key!r}")
                elif tag.uuid != sealing[key] and tag.version < want:
                    violations.append(
                        f"round {round_idx}: stale {key!r}: have {tag.uuid}, want {want.uuid}"
                    )
            self.txn_abort(txid)
        return violations
