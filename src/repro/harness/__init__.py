"""Experiment harness.

One module per concern:

* :mod:`repro.harness.paper_data` — the numbers the paper reports for every
  figure and table, kept next to our measurements so reports can show
  paper-vs-measured side by side.
* :mod:`repro.harness.experiments` — a function per figure/table that builds
  the deployment specs, runs them, and returns structured rows.
* :mod:`repro.harness.report` — plain-text table formatting shared by the
  benchmarks and EXPERIMENTS.md.
"""

from repro.harness.experiments import (
    run_caching_skew_experiment,
    run_distributed_scalability_experiment,
    run_end_to_end_experiment,
    run_fault_tolerance_experiment,
    run_gc_overhead_experiment,
    run_io_latency_experiment,
    run_read_write_ratio_experiment,
    run_single_node_scalability_experiment,
    run_transaction_length_experiment,
)
from repro.harness.report import format_table

__all__ = [
    "run_io_latency_experiment",
    "run_end_to_end_experiment",
    "run_caching_skew_experiment",
    "run_read_write_ratio_experiment",
    "run_transaction_length_experiment",
    "run_single_node_scalability_experiment",
    "run_distributed_scalability_experiment",
    "run_gc_overhead_experiment",
    "run_fault_tolerance_experiment",
    "format_table",
]
