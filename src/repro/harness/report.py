"""Plain-text reporting helpers shared by the benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Render rows as a fixed-width text table (also valid Markdown)."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(header) for header in headers]))
    lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def format_rows(rows: Iterable[Mapping[str, object]], columns: Sequence[str], title: str | None = None) -> str:
    """Render dict rows, selecting and ordering ``columns``."""
    table_rows = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(columns, table_rows, title=title)


def ratio(measured: float, reference: float) -> float:
    """measured / reference, guarding against a zero reference."""
    if reference == 0:
        return float("inf") if measured else 1.0
    return measured / reference
