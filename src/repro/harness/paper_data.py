"""Numbers reported by the paper, figure by figure.

These constants exist so that every benchmark can print "paper vs. measured"
side by side and so EXPERIMENTS.md can be regenerated mechanically.  Values
were transcribed from the figures and tables of the arXiv version
(arXiv:2003.06007); latencies are in milliseconds, throughput in transactions
per second.
"""

from __future__ import annotations

# --------------------------------------------------------------------------- #
# Figure 2 — IO latency for 1, 5, 10 writes (median ms, p99 ms)
# --------------------------------------------------------------------------- #
FIGURE2_IO_LATENCY = {
    # (configuration, number of writes): (median_ms, p99_ms)
    ("aft_sequential", 1): (10.2, 17.6),
    ("aft_sequential", 5): (13.4, 28.6),
    ("aft_sequential", 10): (17.2, 35.6),
    ("aft_batch", 1): (9.9, 12.3),
    ("aft_batch", 5): (10.9, 18.3),
    ("aft_batch", 10): (15.3, 25.5),
    ("dynamodb_sequential", 1): (3.03, 5.45),
    ("dynamodb_sequential", 5): (14.9, 580.0),
    ("dynamodb_sequential", 10): (28.6, 696.0),
    ("dynamodb_batch", 1): (3.08, 7.49),
    ("dynamodb_batch", 5): (4.65, 11.7),
    ("dynamodb_batch", 10): (6.82, 15.2),
}

# --------------------------------------------------------------------------- #
# Figure 3 — end-to-end latency (median ms, p99 ms), 2-function 6-IO txns
# --------------------------------------------------------------------------- #
FIGURE3_END_TO_END = {
    ("s3", "plain"): (199.0, 649.0),
    ("s3", "aft"): (245.0, 742.0),
    ("dynamodb", "plain"): (69.1, 351.0),
    ("dynamodb", "transactional"): (81.1, 351.0),
    ("dynamodb", "aft"): (68.8, 137.0),
    ("redis", "plain"): (33.6, 72.5),
    ("redis", "aft"): (39.8, 87.8),
}

# --------------------------------------------------------------------------- #
# Table 2 — anomalies over 10,000 transactions
# --------------------------------------------------------------------------- #
TABLE2_ANOMALIES = {
    # system: (ryw_anomalies, fractured_read_anomalies)
    "aft": (0, 0),
    "s3": (595, 836),
    "dynamodb": (537, 779),
    "dynamodb_txn": (0, 115),
    "redis": (215, 383),
}
TABLE2_TRANSACTIONS = 10_000

# --------------------------------------------------------------------------- #
# Figure 4 — latency vs skew with/without caching (median ms)
# --------------------------------------------------------------------------- #
FIGURE4_CACHING_SKEW = {
    # (configuration, zipf): median_ms
    ("dynamodb_txn", 1.0): (78.1, 158.0),
    ("dynamodb_txn", 1.5): (98.7, 723.0),
    ("dynamodb_txn", 2.0): (116.0, 1140.0),
    ("aft_dynamo_nocache", 1.0): (69.9, 147.0),
    ("aft_dynamo_nocache", 1.5): (68.6, 145.0),
    ("aft_dynamo_nocache", 2.0): (67.6, 149.0),
    ("aft_dynamo_cache", 1.0): (63.6, 139.0),
    ("aft_dynamo_cache", 1.5): (60.3, 132.0),
    ("aft_dynamo_cache", 2.0): (57.8, 132.0),
    ("aft_redis_nocache", 1.0): (44.9, 99.5),
    ("aft_redis_nocache", 1.5): (45.0, 98.5),
    ("aft_redis_nocache", 2.0): (45.7, 99.9),
    ("aft_redis_cache", 1.0): (42.7, 92.0),
    ("aft_redis_cache", 1.5): (42.7, 97.5),
    ("aft_redis_cache", 2.0): (44.4, 92.5),
}

# --------------------------------------------------------------------------- #
# Figure 5 — latency vs read fraction for 10-IO transactions (median, p99 ms)
# --------------------------------------------------------------------------- #
FIGURE5_READ_WRITE_RATIO = {
    ("dynamodb", 0.0): (56.5, 130.0),
    ("dynamodb", 0.2): (58.1, 135.0),
    ("dynamodb", 0.4): (59.3, 122.0),
    ("dynamodb", 0.6): (60.8, 123.0),
    ("dynamodb", 0.8): (61.0, 123.0),
    ("dynamodb", 1.0): (58.1, 124.0),
    ("redis", 0.0): (40.4, 94.3),
    ("redis", 0.2): (42.6, 100.0),
    ("redis", 0.4): (42.2, 100.0),
    ("redis", 0.6): (42.1, 94.2),
    ("redis", 0.8): (43.1, 96.7),
    ("redis", 1.0): (42.2, 94.1),
}

# --------------------------------------------------------------------------- #
# Figure 6 — latency vs transaction length in functions (median, p99 ms)
# --------------------------------------------------------------------------- #
FIGURE6_TXN_LENGTH = {
    ("dynamodb", 1): (43.0, 101.0),
    ("dynamodb", 2): (70.3, 141.0),
    ("dynamodb", 4): (123.0, 216.0),
    ("dynamodb", 6): (175.0, 280.0),
    ("dynamodb", 8): (221.0, 334.0),
    ("dynamodb", 10): (270.0, 403.0),
    ("redis", 1): (27.0, 69.6),
    ("redis", 2): (49.8, 115.0),
    ("redis", 4): (96.6, 176.0),
    ("redis", 6): (144.0, 238.0),
    ("redis", 8): (191.0, 291.0),
    ("redis", 10): (239.0, 352.0),
}

# --------------------------------------------------------------------------- #
# Figure 7 — single-node throughput (txn/s) vs number of clients
# --------------------------------------------------------------------------- #
FIGURE7_SINGLE_NODE = {
    # backend: {clients: throughput}
    "dynamodb": {1: 15, 5: 75, 10: 150, 20: 300, 30: 440, 40: 570, 45: 590, 50: 600},
    "redis": {1: 22, 5: 110, 10: 220, 20: 440, 30: 650, 40: 850, 45: 900, 50: 900},
}
FIGURE7_PLATEAU = {"dynamodb": 600.0, "redis": 900.0}
FIGURE7_LINEAR_UNTIL = {"dynamodb": 40, "redis": 45}

# --------------------------------------------------------------------------- #
# Figure 8 — distributed throughput (txn/s) at 40 clients per node
# --------------------------------------------------------------------------- #
FIGURE8_DISTRIBUTED = {
    "dynamodb": {40: 570, 160: 2200, 320: 4300, 480: 6300, 640: 8000},
    "redis": {40: 850, 160: 3300, 320: 6500, 480: 9600, 640: 12500},
}
FIGURE8_IDEAL_FRACTION = 0.90  # the paper reports scaling within 90% of ideal

# --------------------------------------------------------------------------- #
# Figure 9 — GC overhead (single node, 40 clients, Zipf 1.5)
# --------------------------------------------------------------------------- #
FIGURE9_GC = {
    "throughput_with_gc": 570.0,
    "throughput_without_gc": 570.0,
    # Deletion keeps pace with the commit rate under a contended workload.
    "deletions_match_commit_rate": True,
}

# --------------------------------------------------------------------------- #
# Figure 10 — fault tolerance timeline (4 nodes, 200 clients)
# --------------------------------------------------------------------------- #
FIGURE10_FAULT_TOLERANCE = {
    "pre_failure_throughput": 2500.0,
    "failure_time": 10.0,
    "immediate_drop_fraction": 0.16,
    "detection_seconds": 5.0,
    "rejoin_time": 60.0,
    "recovered_within_seconds": 10.0,
}
